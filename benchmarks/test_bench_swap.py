"""Section 2 benchmark: repairing ``rev_app_distr`` across the list swap.

Paper claims regenerated:

* the repair succeeds and updates all four dependencies automatically;
* the proof term transformation considers **1** candidate, against the
  ``6! = 720`` permutations a script-level approach would face;
* whole-module repair (the ``Repair module`` command) completes within
  the same order of magnitude as the single-lemma repair.
"""

import math

import pytest

from repro.cases.quickstart import setup_environment
from repro.core.repair import RepairSession
from repro.core.search.swap import find_constructor_mappings, swap_configuration


@pytest.fixture()
def env():
    return setup_environment()


def test_repair_rev_app_distr(benchmark, env, rows):
    config = swap_configuration(env, "list", "New.list")

    def run():
        session = RepairSession(
            env,
            config,
            old_globals=["list"],
            rename=lambda n: f"Bench{run.counter}.{n}",
        )
        run.counter += 1
        return session.repair_constant("rev_app_distr")

    run.counter = 0
    result = benchmark(run)
    rows(
        "Fig 1-2 / Section 2: Repair Old.list New.list in rev_app_distr",
        "succeeds; rev, ++, app_assoc, app_nil_r updated automatically",
        f"succeeded as {result.new_name}; dependencies repaired",
    )


def test_candidates_1_vs_720(benchmark, env, rows):
    mappings = benchmark(
        lambda: list(find_constructor_mappings(env, "list", "New.list"))
    )
    script_permutations = math.factorial(6)
    rows(
        "Section 2: candidate count",
        "1 proof-term candidate vs 720 tactic-script permutations",
        f"{len(mappings)} type-correct mapping(s) vs {script_permutations} "
        "script permutations",
    )
    assert len(mappings) == 1


def test_repair_whole_module(benchmark, rows):
    def run():
        env = setup_environment()
        config = swap_configuration(env, "list", "New.list")
        session = RepairSession(
            env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
        )
        results = session.repair_module()
        session.remove_old()
        return results

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    rows(
        "Section 2: Repair module on the whole list development",
        "the entire list module repaired at once; Old.list then removed",
        f"{len(results)} constants repaired, old type removed",
    )
    assert len(results) >= 9
