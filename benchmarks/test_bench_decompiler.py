"""Section 5 benchmark: decompilation and replay of suggested scripts.

Paper claims regenerated:

* the repaired ``rev_app_distr`` decompiles to the Figure 2 script
  (induction / simpl / rewrite / reflexivity, with bullets);
* the suggested script is good enough to use — here, strictly stronger:
  it replays against the repaired statement and kernel-checks.
"""

import pytest

from repro.cases.quickstart import setup_environment
from repro.core.repair import RepairSession
from repro.core.search.swap import swap_configuration
from repro.decompile.decompiler import decompile_to_script, print_script
from repro.decompile.run import run_script


@pytest.fixture(scope="module")
def repaired():
    env = setup_environment()
    config = swap_configuration(env, "list", "New.list")
    session = RepairSession(
        env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
    )
    result = session.repair_constant("rev_app_distr")
    return env, result


def test_decompile_figure2(benchmark, rows, repaired):
    env, result = repaired

    def run():
        return decompile_to_script(env, result.term)

    script = benchmark(run)
    text = print_script(script)
    rows(
        "Figure 2: the suggested script for the repaired rev_app_distr",
        "induction with as-pattern, simpl, rewrites, reflexivity, bullets",
        "same shape: " + text.splitlines()[1].strip(),
    )
    assert "induction x as [a l IHl|]." in text


def test_replay_suggested_script(benchmark, rows, repaired):
    env, result = repaired
    script = decompile_to_script(env, result.term)

    def run():
        return run_script(env, result.type, script)

    proof = benchmark(run)
    rows(
        "Section 5: usability of the suggested script",
        "the proof engineer can step through and maintain the script",
        "the script replays mechanically and the result kernel-checks",
    )
    assert proof is not None
