"""Ablation: one pass with multiple equivalences vs sequential passes.

The paper's Section 8 lists "Multiple Equivalences" as future work; our
Transformer accepts several configurations at once.  This ablation
compares porting ``cork`` across the Handshake and Connection
equivalences in a single pass against the two sequential passes the case
study uses.
"""


from repro.cases.galois import setup_environment
from repro.core.config import Configuration
from repro.core.search.tuples_records import (
    RecordSide,
    TupleSide,
    tuples_records_configuration,
)
from repro.core.repair import RepairSession
from repro.core.transform import Transformer
from repro.kernel import Const, Context, check, mentions_global


def _single_pass_transformer(env):
    handshake = tuples_records_configuration(
        env, "Record.Handshake", tuple_alias="Galois.Handshake", prove=False
    )
    record_side = RecordSide(env, "Record.Connection")
    raw_fields = list(record_side.field_types)
    raw_fields[3] = Const("Galois.Handshake")
    tuple_side = TupleSide(env, raw_fields, alias="Galois.Connection")
    connection = Configuration(a=tuple_side, b=record_side)
    return Transformer(env, [connection, handshake])


def test_single_pass(benchmark, rows):
    env = setup_environment()
    transformer = _single_pass_transformer(env)
    cork = env.constant("cork")

    def run():
        return transformer(cork.type), transformer(cork.body)

    new_type, new_body = benchmark(run)
    check(env, Context.empty(), new_body, new_type)
    rows(
        "Section 8 extension: multiple equivalences, one pass",
        "future work: decide among multiple matching equivalences",
        "cork ported across Handshake+Connection in a single traversal",
    )
    assert not mentions_global(new_body, "Galois.Handshake")


def test_two_sequential_passes(benchmark, rows):
    def run():
        env = setup_environment()
        handshake = tuples_records_configuration(
            env, "Record.Handshake", tuple_alias="Galois.Handshake",
            prove=False,
        )
        session1 = RepairSession(
            env, handshake, old_globals=["Galois.Handshake"],
            rename=lambda n: f"{n}'",
        )
        session1.repair_module()
        connection = tuples_records_configuration(
            env, "Record.Connection", tuple_alias="Galois.Connection'",
            prove=False,
        )
        session2 = RepairSession(
            env, connection, old_globals=["Galois.Connection'"],
            rename=lambda n: n.replace("'", "") + ".record",
        )
        return session2.repair_constant("cork'", new_name="Record.cork")

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    rows(
        "Baseline: the case study's sequential passes",
        "one configuration per Repair invocation",
        "same final cork, two environment-rewriting passes",
    )
    assert result.new_name == "Record.cork"
