"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's evaluation claims and
prints a paper-vs-measured row.  Absolute numbers differ (the paper ran
an OCaml plugin inside Coq 8.8; we run a Python kernel), so the rows
compare *shape*: what succeeds, what is fast relative to what, and where
caching wins.
"""

from __future__ import annotations

import pytest


def report(label: str, paper: str, measured: str) -> None:
    """Print one paper-vs-measured row (shown with -s or on failure)."""
    print(f"\n[{label}]")
    print(f"  paper    : {paper}")
    print(f"  measured : {measured}")


@pytest.fixture
def rows():
    return report
