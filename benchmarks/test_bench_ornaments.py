"""Section 6.2 benchmark: vectors from lists (Example.v).

Paper claims regenerated:

* the Devoid step ports ``zip``/``zip_with``/``zip_with_is_zip`` to
  packed vectors automatically;
* the previously-manual unpacking to vectors *at a particular length* is
  automated end to end (the expanded Example.v);
* the full pipeline completes (shape: both steps succeed and check).
"""


from repro.cases.ornaments_example import run_scenario
from repro.core.repair import RepairSession
from repro.core.search.ornaments import ornament_configuration
from repro.stdlib import make_env


def test_devoid_step(benchmark, rows):
    """Configure + repair the zip development to packed vectors."""

    def run():
        env = make_env(lists=True, vectors=True)
        config = ornament_configuration(env)
        session = RepairSession(
            env,
            config,
            old_globals=["list"],
            rename=lambda n: f"Packed.{n}",
            skip=[
                "ornament.eta",
                "ornament.dep_constr_0",
                "ornament.dep_constr_1",
                "ornament.promote",
                "ornament.forget",
                "ornament.forget_vec",
            ],
        )
        return session.repair_module(["zip", "zip_with", "zip_with_is_zip"])

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    rows(
        "Section 6.2 step 1 (Devoid): port the zip development",
        "zip, zip_with, zip_with_is_zip ported to Sigma-packed vectors",
        f"{len(results)} constants ported and kernel-checked",
    )
    assert {r.old_name for r in results} == {"zip", "zip_with", "zip_with_is_zip"}


def test_full_pipeline_to_vectors_at_index(benchmark, rows):
    """The full Example.v: packed repair plus unpacking at an index."""

    scenario = benchmark.pedantic(run_scenario, rounds=1, iterations=1)
    rows(
        "Section 6.2 step 2: vectors at a particular length",
        "Devoid left this step manual; Pumpkin Pi automates it "
        "(zip_with_is_zip over vector _ n)",
        "zip_with_is_zip_vect proved via the generated coherence "
        "eliminator; functions compute at fixed lengths",
    )
    assert scenario.env.has_constant("zip_with_is_zip_vect")
