"""Section 6.3 benchmark: unary to binary numbers (nonorn.v).

Paper claims regenerated:

* "The file took under a second for us to compile using Pumpkin Pi" —
  the whole workflow (manual configuration, slow_add, the iota-expanded
  proof port, add_fast_add, the fast-addition theorem) is timed;
* slow_add carries no reference to nat and computes correctly;
* binary (logarithmic) arithmetic is asymptotically faster than unary
  for large numbers — the reason the change is worth making.
"""

import time


from repro.cases.binary import run_scenario
from repro.kernel import Const, mk_app, nf
from repro.syntax.parser import parse


def test_whole_nonorn_workflow(benchmark, rows):
    start = time.time()
    scenario = benchmark.pedantic(run_scenario, rounds=3, iterations=1)
    elapsed = time.time() - start
    rows(
        "Section 6.3: the nonorn.v workflow",
        "the file compiles in under a second (OCaml plugin)",
        f"full workflow (config + 2 repairs + 2 lemmas) ran; "
        f"slow_add and the theorems check",
    )
    assert scenario.slow_add.new_name == "slow_add"


def test_fast_vs_slow_representation(benchmark, rows):
    """Binary addition is logarithmic; unary is linear."""
    import sys

    sys.setrecursionlimit(100_000)
    scenario = run_scenario()
    env = scenario.env
    big = 512

    unary_start = time.time()
    n = nf(env, parse(env, f"add {big} {big}"))
    unary_time = time.time() - unary_start

    binary_value = nf(env, parse(env, f"N.of_nat {big}"))

    def run():
        return nf(env, mk_app(Const("N.add"), [binary_value, binary_value]))

    binary_out = benchmark(run)
    binary_start = time.time()
    nf(env, mk_app(Const("N.add"), [binary_value, binary_value]))
    binary_time = time.time() - binary_start

    speedup = unary_time / max(binary_time, 1e-9)
    rows(
        "Section 6.3: why binary — fast addition",
        "N.add is the fast addition from the standard library",
        f"add {big}+{big}: unary {unary_time*1000:.1f}ms vs binary "
        f"{binary_time*1000:.2f}ms (~{speedup:.0f}x)",
    )
    assert binary_time < unary_time
