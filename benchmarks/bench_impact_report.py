"""Write BENCH_impact.json: impact-pruned vs unpruned batch wall time.

Runs the synthetic wide batch (:func:`repro.service.synth.wide_jobs`:
a 48-link ``nat`` chain that never touches ``list`` plus three genuinely
affected quickstart targets, all repaired against the quickstart
``list`` -> ``New.list`` configuration) through the service scheduler
twice at ``--jobs 1`` with the in-process runner and no result store:
once unpruned (the ``--no-impact`` shape) and once with the
change-impact plan attached (the ``--impact`` shape).  Both runs pay
identical per-job cost, so the wall-time ratio measures exactly what
the planner prunes.

Phases (shared schema, :mod:`report_schema`)::

    impact/plan        # build the change-impact plan (cold plan store)
    impact/unpruned    # full batch, every job dispatched
    impact/pruned      # same batch, plan-certified jobs skipped

plus a ``pruning`` extra with the pruned/unpruned wall-time ratio and
the skip counts.  The bench is also the soundness gate — it fails hard
when:

* any job in either batch fails;
* :func:`repro.service.planner.verify_impact` reports a violation on
  the unpruned run (a job the plan would have skipped was *not*
  byte-identical when force-run — the differential byte-identity
  check);
* the pruned run's skipped set is not exactly the plan's
  ``unaffected`` verdicts;
* a non-skipped pruned job's ``result_digest`` differs from its
  unpruned twin (pruning must never change surviving outputs);
* the pruned batch is not at most ``--max-pruned-ratio`` (default 0.6)
  of the unpruned wall time — pruning must actually buy wall time.

Usage::

    PYTHONPATH=src python benchmarks/bench_impact_report.py \
        [OUTPUT.json] [--max-pruned-ratio 0.6]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from typing import Any, Dict, List, Tuple

from report_schema import make_report, write_report

from repro.analysis.impact import VERDICT_UNAFFECTED, PlanStore
from repro.service import BatchOptions, run_batch, verify_impact
from repro.service.job import result_digest
from repro.service.planner import BatchImpact, build_batch_impact
from repro.service.synth import wide_jobs


def _run(jobs: List[Any], label: str, impact: Any = None) -> Any:
    report = run_batch(
        jobs,
        BatchOptions(jobs=1, timeout_s=600, backoff_s=0.0, impact=impact),
        batch=f"wide/{label}",
    )
    bad = [o for o in report.outcomes if not o.ok]
    if bad:
        raise RuntimeError(
            "%s batch failed: %s"
            % (label, ", ".join(f"{o.job.name}={o.status}" for o in bad))
        )
    return report


def _phase(report: Any, **extra: Any) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "wall_time_s": round(report.wall_time_s, 6),
        "count": len(report.outcomes),
        "jobs": 1,
        "workers": 1,
    }
    entry.update(extra)
    return entry


def _check_soundness(
    jobs: List[Any], impact: BatchImpact, unpruned: Any, pruned: Any
) -> Tuple[int, int]:
    """Hard gates; returns (skipped, dispatched) counts of the pruned run."""
    violations = verify_impact(unpruned, impact)
    if violations:
        raise RuntimeError(
            "differential byte-identity check failed:\n  "
            + "\n  ".join(violations)
        )

    certified = set()
    for job in jobs:
        entry = impact.entry_for(job)
        if entry is not None and entry.verdict == VERDICT_UNAFFECTED:
            certified.add(job.name)
    skipped = {
        o.job.name
        for o in pruned.outcomes
        if o.status == "skipped-unaffected"
    }
    if skipped != certified:
        raise RuntimeError(
            "pruned skip set does not match the plan: "
            f"skipped-but-uncertified={sorted(skipped - certified)}, "
            f"certified-but-dispatched={sorted(certified - skipped)}"
        )

    unpruned_digests = {
        o.job.name: result_digest(o.result) for o in unpruned.outcomes
    }
    for outcome in pruned.outcomes:
        if outcome.job.name in skipped:
            continue
        if result_digest(outcome.result) != unpruned_digests[outcome.job.name]:
            raise RuntimeError(
                f"pruning changed the repair output of {outcome.job.name} "
                "— pruned and unpruned digests differ"
            )
    return len(skipped), len(pruned.outcomes) - len(skipped)


def build_report() -> Tuple[dict, dict]:
    jobs = wide_jobs()
    phases: Dict[str, Dict[str, Any]] = {}
    with tempfile.TemporaryDirectory(prefix="bench_impact_") as tmp:
        store = PlanStore(f"{tmp}/plans")
        t0 = time.perf_counter()
        impact = build_batch_impact(jobs, store=store)
        plan_wall = time.perf_counter() - t0
        total = store.hits + store.misses
        phases["impact/plan"] = {
            "wall_time_s": round(plan_wall, 6),
            "count": len(impact.plans),
            "jobs": 1,
            "workers": 1,
            "cache_hit_rates": {
                "plans": round(store.hits / total, 4) if total else 0.0
            },
        }
        unpruned = _run(jobs, "unpruned")
        pruned = _run(jobs, "pruned", impact=impact)
        skipped, dispatched = _check_soundness(jobs, impact, unpruned, pruned)
    phases["impact/unpruned"] = _phase(unpruned)
    phases["impact/pruned"] = _phase(pruned, skipped=skipped)
    pruning = {
        "pruned_vs_unpruned": round(
            pruned.wall_time_s / max(unpruned.wall_time_s, 1e-9), 4
        ),
        "skipped": skipped,
        "dispatched": dispatched,
    }
    report = make_report("impact", phases, pruning=pruning)
    return report, pruning


def print_summary(report: dict, pruning: dict) -> None:
    for name in sorted(report["phases"]):
        entry = report["phases"][name]
        print(
            f"{name:<16} {entry['wall_time_s']:8.4f}s  x{entry['count']}"
        )
    print(
        f"pruning: ratio {pruning['pruned_vs_unpruned']}, "
        f"{pruning['skipped']} skipped, {pruning['dispatched']} dispatched"
    )


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="BENCH_impact.json")
    parser.add_argument(
        "--max-pruned-ratio",
        type=float,
        default=0.6,
        help="fail when impact/pruned exceeds this fraction of "
        "impact/unpruned (0 disables the check; default: 0.6)",
    )
    args = parser.parse_args(argv[1:])

    try:
        report, pruning = build_report()
        write_report(args.output, report)
    except Exception as exc:
        # A soundness violation or malformed report must fail the job
        # instead of leaving a partial report behind.
        print(f"bench_impact_report: {exc}", file=sys.stderr)
        return 1
    print_summary(report, pruning)
    print(f"wrote {args.output}")
    ratio = pruning["pruned_vs_unpruned"]
    if args.max_pruned_ratio and ratio > args.max_pruned_ratio:
        print(
            f"bench_impact_report: impact/pruned is {ratio}x of "
            f"impact/unpruned (limit {args.max_pruned_ratio}) — the plan "
            "is not pruning enough",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
