"""The one JSON schema every BENCH_*.json report shares.

Both report scripts (``bench_kernel_report.py`` and
``bench_pipeline_report.py``) emit the same envelope so the CI
regression gate (``check_regression.py``) can diff any pair of reports
without per-script knowledge::

    {
      "schema_version": 1,
      "benchmark": "<name>",
      "timestamp": "<ISO-8601 UTC>",
      "git_sha": "<HEAD sha or 'unknown'>",
      "phases": {
        "<phase>": {
          "wall_time_s": <float >= 0>,
          "count": <int, optional>,
          "jobs": <int >= 1, optional>,     # requested pool width
          "workers": <int >= 1, optional>,  # pool width actually used
          "cache_hit_rates": {"<table>": <float in [0, 1]>, ...},
          ...            # extra keys allowed
        },
        ...
      },
      "history": [       # perf trend, newest last (see write_report)
        {"timestamp": ..., "git_sha": ...,
         "phases": {"<phase>": <wall_time_s>, ...}},
        ...
      ],
      ...                # benchmark-specific extras allowed
    }

:func:`write_report` appends each run to the existing file's
``history`` list (timestamp + git sha + per-phase wall time, capped at
:data:`HISTORY_LIMIT` entries) instead of overwriting it, so a
BENCH_*.json tracked in git shows the perf trend across PRs.

:func:`write_report` validates before touching the filesystem and
writes atomically (tempfile + rename), so a malformed result can never
leave a partial report on disk — the failure mode the old kernel report
script had.
"""

from __future__ import annotations

import json
import os
import subprocess
import tempfile
from datetime import datetime, timezone
from typing import Any, Dict, List

SCHEMA_VERSION = 1

#: Most history entries kept in a report (newest last; oldest dropped).
HISTORY_LIMIT = 50

_ENVELOPE_KEYS = ("schema_version", "benchmark", "timestamp", "git_sha", "phases")


class ReportError(Exception):
    """Raised when a report does not conform to the shared schema."""


def git_sha() -> str:
    """The current HEAD sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def utc_timestamp() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def make_report(
    benchmark: str, phases: Dict[str, Dict[str, Any]], **extra: Any
) -> Dict[str, Any]:
    """A report dict in the shared envelope (validate before writing)."""
    report: Dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": benchmark,
        "timestamp": utc_timestamp(),
        "git_sha": git_sha(),
        "phases": phases,
    }
    report.update(extra)
    return report


def validate_report(report: Any) -> List[str]:
    """Every way ``report`` violates the schema; empty means valid."""
    errors: List[str] = []
    if not isinstance(report, dict):
        return [f"report must be an object, got {type(report).__name__}"]
    for key in _ENVELOPE_KEYS:
        if key not in report:
            errors.append(f"missing envelope key {key!r}")
    if report.get("schema_version") not in (None, SCHEMA_VERSION):
        errors.append(
            f"schema_version {report['schema_version']!r} != {SCHEMA_VERSION}"
        )
    for key in ("benchmark", "timestamp", "git_sha"):
        value = report.get(key)
        if key in report and (not isinstance(value, str) or not value):
            errors.append(f"{key!r} must be a non-empty string, got {value!r}")
    history = report.get("history")
    if history is not None:
        if not isinstance(history, list):
            errors.append(
                f"'history' must be a list, got {type(history).__name__}"
            )
        else:
            for i, entry in enumerate(history):
                if not (
                    isinstance(entry, dict)
                    and isinstance(entry.get("timestamp"), str)
                    and isinstance(entry.get("git_sha"), str)
                    and isinstance(entry.get("phases"), dict)
                ):
                    errors.append(
                        f"history[{i}] must have timestamp/git_sha/phases"
                    )
    phases = report.get("phases")
    if phases is None:
        return errors
    if not isinstance(phases, dict):
        return errors + [
            f"'phases' must be an object, got {type(phases).__name__}"
        ]
    if not phases:
        errors.append("'phases' is empty — nothing was measured")
    for name, entry in phases.items():
        where = f"phases[{name!r}]"
        if not isinstance(entry, dict):
            errors.append(f"{where} must be an object")
            continue
        wall = entry.get("wall_time_s")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            errors.append(f"{where}.wall_time_s must be a number, got {wall!r}")
        elif wall < 0:
            errors.append(f"{where}.wall_time_s is negative: {wall!r}")
        count = entry.get("count")
        if count is not None and (not isinstance(count, int) or count < 0):
            errors.append(f"{where}.count must be a non-negative int")
        # Service-batch phases record their pool width: `jobs` is the
        # requested --jobs value, `workers` the pool actually used.
        for pool_key in ("jobs", "workers"):
            width = entry.get(pool_key)
            if width is not None and (
                not isinstance(width, int)
                or isinstance(width, bool)
                or width < 1
            ):
                errors.append(
                    f"{where}.{pool_key} must be a positive int, got {width!r}"
                )
        rates = entry.get("cache_hit_rates", {})
        if not isinstance(rates, dict):
            errors.append(f"{where}.cache_hit_rates must be an object")
            continue
        for table, rate in rates.items():
            if (
                not isinstance(rate, (int, float))
                or isinstance(rate, bool)
                or not 0.0 <= rate <= 1.0
            ):
                errors.append(
                    f"{where}.cache_hit_rates[{table!r}] must be in [0, 1], "
                    f"got {rate!r}"
                )
    return errors


def history_entry(report: Dict[str, Any]) -> Dict[str, Any]:
    """The compact trend record for one run of ``report``."""
    return {
        "timestamp": report["timestamp"],
        "git_sha": report["git_sha"],
        "phases": {
            name: entry.get("wall_time_s")
            for name, entry in report["phases"].items()
        },
    }


def _carry_history(path: str, report: Dict[str, Any]) -> None:
    """Extend ``report`` with the prior file's history plus this run.

    A missing, unreadable, or malformed prior report contributes nothing
    (first run, or a by-hand file) — the trend restarts rather than the
    write failing.
    """
    previous: List[Any] = []
    try:
        with open(path) as handle:
            old = json.load(handle)
        if isinstance(old, dict) and isinstance(old.get("history"), list):
            previous = [e for e in old["history"] if isinstance(e, dict)]
    except (OSError, json.JSONDecodeError):
        pass
    report["history"] = (previous + [history_entry(report)])[-HISTORY_LIMIT:]


def write_report(path: str, report: Dict[str, Any]) -> str:
    """Validate and atomically write ``report`` to ``path``.

    Appends this run to the prior file's ``history`` trend (unless the
    caller already set one).  Raises :class:`ReportError` (listing every
    violation) *before* creating or truncating the output file.
    """
    if "history" not in report:
        _carry_history(path, report)
    errors = validate_report(report)
    if errors:
        raise ReportError(
            "refusing to write malformed report:\n  " + "\n  ".join(errors)
        )
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".tmp_", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise
    return path


def load_report(path: str) -> Dict[str, Any]:
    """Read and validate a report; raises :class:`ReportError`."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReportError(f"cannot read report {path}: {exc}") from exc
    errors = validate_report(report)
    if errors:
        raise ReportError(
            f"malformed report {path}:\n  " + "\n  ".join(errors)
        )
    return report
