"""Section 6.4 benchmark: the Galois tuples/records workflow.

Paper claims regenerated:

* the full industrial workflow (port cork to records, prove corkLemma,
  port it back to tuples) succeeds with both equivalences proved;
* "the proof engineer typically waited only about ten seconds at most
  for Pumpkin Pi to return" — each individual repair operation is timed
  (the per-operation latency is what the proof engineer experiences).
"""

import time


from repro.cases.galois import run_scenario, setup_environment
from repro.core.repair import RepairSession
from repro.core.search.tuples_records import tuples_records_configuration


def test_full_workflow(benchmark, rows):
    scenario = benchmark.pedantic(run_scenario, rounds=1, iterations=1)
    rows(
        "Section 6.4: the Galois workflow (Figure 17)",
        "cork ported to records; corkLemma written against records and "
        "ported back to the original tuples",
        "both directions succeeded; all proofs kernel-checked",
    )
    assert scenario.cork_result.new_name == "Record.cork"
    assert scenario.cork_lemma_tuple.new_name == "corkLemma"


def test_single_repair_latency(benchmark, rows):
    """One repair operation: what the proof engineer waits for."""
    env = setup_environment()
    handshake_config = tuples_records_configuration(
        env, "Record.Handshake", tuple_alias="Galois.Handshake"
    )

    def run():
        session = RepairSession(
            env,
            handshake_config,
            old_globals=["Galois.Handshake"],
            rename=lambda n: f"L{run.counter}.{n}",
        )
        run.counter += 1
        return session.repair_constant("Galois.Connection")

    run.counter = 0
    start = time.time()
    result = benchmark(run)
    elapsed = time.time() - start
    rows(
        "Section 6.4: per-operation latency",
        "the proof engineer waits at most ~10 s per repair",
        "single constant repair measured (see benchmark stats)",
    )
    assert result is not None
