"""Section 6.1 benchmark: the REPLICA variants and the 30-ctor Enum.

Paper claims regenerated:

* "Each variant of the REPLICA benchmark took Pumpkin Pi less than 5
  seconds" — each variant (configure + prove equivalence + repair the
  development) is timed individually;
* "The entire Swap.v file ... took Pumpkin Pi less than 90 seconds
  total" — all variants together stay within the same envelope relative
  to a single variant (about 5x here, as there);
* "testing a large and ambiguous permutation of a 30 constructor Enum" —
  the first of 30! mappings is produced lazily;
* 24 type-correct mappings are discovered for the Figure 16 change.
"""

import time

import pytest

from repro.cases.replica import (
    VARIANTS,
    VARIANT_MAPPINGS,
    declare_enum,
    declare_term_language,
    run_variant,
    setup_environment,
)
from repro.core.search.swap import find_constructor_mappings
from repro.stdlib import make_env


@pytest.mark.parametrize("index", range(len(VARIANTS)))
def test_single_variant(benchmark, rows, index):
    label, order, renames = VARIANTS[index]

    def run():
        env = setup_environment()
        return run_variant(
            env, label, order, renames, index,
            mapping=VARIANT_MAPPINGS.get(label),
        )

    variant = benchmark.pedantic(run, rounds=3, iterations=1)
    rows(
        f"Section 6.1 variant: {label}",
        "repairs in < 5 s (OCaml plugin)",
        f"repaired {len(variant.results)} constants "
        f"(mapping {variant.mapping})",
    )
    assert len(variant.results) == 2


def test_all_variants_like_swap_v(benchmark, rows):
    """The whole benchmark file, like Swap.v."""

    def run():
        from repro.cases.replica import run_scenario

        return run_scenario()

    start = time.time()
    variants = benchmark.pedantic(run, rounds=1, iterations=1)
    total = time.time() - start
    rows(
        "Section 6.1: the whole Swap.v analogue",
        "< 90 s total for the file, < 5 s per variant (ratio <= ~18x)",
        f"{total:.2f}s for {len(variants)} variants "
        f"(~{total / len(variants):.2f}s each)",
    )
    assert len(variants) == 5


def test_figure16_mapping_count(benchmark, rows):
    env = setup_environment()
    declare_term_language(
        env,
        "Probe.Term",
        order=["Var", "Eq", "Int", "Plus", "Times", "Minus", "Choose"],
    )

    def run():
        return list(find_constructor_mappings(env, "Old.Term", "Probe.Term"))

    mappings = benchmark(run)
    rows(
        "Section 6.1: type-correct permutations of the Figure 16 change",
        "the desired mapping plus 23 other type-correct permutations",
        f"{len(mappings)} mappings, desired first: {mappings[0]}",
    )
    assert len(mappings) == 24


def test_enum_30_lazy_first_mapping(benchmark, rows):
    env = make_env(lists=False, vectors=False)
    declare_enum(env, "Enum", size=30)
    declare_enum(env, "Enum2", size=30)

    def run():
        return next(iter(find_constructor_mappings(env, "Enum", "Enum2")))

    first = benchmark(run)
    rows(
        "Section 6.1: 30-constructor Enum permutation",
        "handled despite a 30!-sized mapping space (ambiguous permutation)",
        "first candidate produced lazily without enumerating 30!",
    )
    assert first == tuple(range(30))
