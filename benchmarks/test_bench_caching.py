"""Section 4.4 ablation: aggressive caching of transformed subterms.

The paper: "we implemented aggressive caching (with an option to disable
the cache), even caching intermediate subterms that we encounter in the
course of running our proof term transformation", in response to the
industrial proof engineer's ~10 second patience.  This ablation measures
the transformation with the cache enabled vs disabled across a session
that re-transforms shared dependencies.
"""

import time


from repro.cases.quickstart import setup_environment
from repro.core.caching import TransformCache
from repro.core.search.swap import swap_configuration
from repro.core.transform import Transformer


NAMES = ["app", "rev", "app_nil_r", "app_assoc", "rev_app_distr",
         "zip", "zip_with", "zip_with_is_zip"]


def _transform_all(env, config, cache):
    transformer = Transformer(env, config, cache=cache)
    for name in NAMES:
        decl = env.constant(name)
        transformer(decl.type)
        transformer(decl.body)
        # A second pass over the same terms models re-running Repair on a
        # file whose dependencies repeat (the industrial workflow).
        transformer(decl.body)
    return cache


def test_transform_with_cache(benchmark, rows):
    env = setup_environment()
    config = swap_configuration(env, "list", "New.list", prove=False)

    def run():
        return _transform_all(env, config, TransformCache(enabled=True))

    cache = benchmark(run)
    hit_rate = cache.hits / max(1, cache.hits + cache.misses)
    rows(
        "Section 4.4 ablation: cache enabled",
        "aggressive caching keeps repair within the ~10 s patience window",
        f"hits={cache.hits}, misses={cache.misses} "
        f"(hit rate {hit_rate:.0%})",
    )
    assert cache.hits > 0


def test_transform_without_cache(benchmark, rows):
    env = setup_environment()
    config = swap_configuration(env, "list", "New.list", prove=False)

    def run():
        return _transform_all(env, config, TransformCache(enabled=False))

    cache = benchmark(run)
    rows(
        "Section 4.4 ablation: cache disabled",
        "the tool exposes an option to disable the cache",
        "every subterm re-transformed (compare mean time with the "
        "cache-enabled benchmark)",
    )
    assert cache.hits == 0


def test_cache_speedup_summary(benchmark, rows):
    """Direct A/B comparison outside the benchmark fixture."""
    env = setup_environment()
    config = swap_configuration(env, "list", "New.list", prove=False)

    def cached_run():
        return _transform_all(env, config, TransformCache(enabled=True))

    benchmark.pedantic(cached_run, rounds=1, iterations=1)
    start = time.time()
    for _ in range(3):
        _transform_all(env, config, TransformCache(enabled=True))
    with_cache = time.time() - start

    start = time.time()
    for _ in range(3):
        _transform_all(env, config, TransformCache(enabled=False))
    without_cache = time.time() - start

    rows(
        "Section 4.4 ablation: speedup",
        "caching was required for acceptable latency",
        f"with cache {with_cache*1000:.0f}ms vs without "
        f"{without_cache*1000:.0f}ms "
        f"({without_cache / max(with_cache, 1e-9):.1f}x)",
    )
    assert with_cache <= without_cache * 1.5


def test_kernel_layer_ablation_grid(rows):
    """Hash-consing/memoization x reduction-cache grid on end-to-end repair.

    Runs the binary case study (parsers, proofs, repair, re-check) under
    all four combinations of the kernel performance layers and reports
    one row per cell, plus the all-on vs all-off speedup.  The term-op
    memo tables ride on the interning axis: both belong to the
    "hash-consed arena" half of the design.
    """
    from repro.cases.binary import run_scenario
    from repro.kernel.env import set_reduction_cache_default
    from repro.kernel.stats import KERNEL_STATS
    from repro.kernel.term import (
        clear_term_caches,
        set_hash_consing,
        set_term_memo,
    )

    timings = {}
    prev_intern = set_hash_consing(True)
    prev_memo = set_term_memo(True)
    prev_cache = set_reduction_cache_default(True)
    try:
        for intern_on in (True, False):
            for cache_on in (True, False):
                set_hash_consing(intern_on)
                set_term_memo(intern_on)
                set_reduction_cache_default(cache_on)
                clear_term_caches()
                KERNEL_STATS.reset()
                start = time.perf_counter()
                run_scenario()
                elapsed = time.perf_counter() - start
                timings[(intern_on, cache_on)] = elapsed
                whnf = KERNEL_STATS.counter("whnf")
                rows(
                    "kernel layers: interning "
                    f"{'on' if intern_on else 'off'}, reduction cache "
                    f"{'on' if cache_on else 'off'}",
                    "hash-consed arena + kernel-wide reduction cache "
                    "(Section 4.4 engineering)",
                    f"binary repair {elapsed * 1000:.0f}ms, "
                    f"intern hits {KERNEL_STATS.intern_hits}, "
                    f"whnf hit rate {whnf.hit_rate:.0%}",
                )
    finally:
        set_hash_consing(prev_intern)
        set_term_memo(prev_memo)
        set_reduction_cache_default(prev_cache)
        clear_term_caches()
        KERNEL_STATS.reset()

    both_on = timings[(True, True)]
    both_off = timings[(False, False)]
    rows(
        "kernel layers: combined speedup",
        "aggressive caching keeps repair within the patience window",
        f"all layers on {both_on * 1000:.0f}ms vs all off "
        f"{both_off * 1000:.0f}ms "
        f"({both_off / max(both_on, 1e-9):.1f}x)",
    )
    # The layers must never make repair slower; the CI smoke job tracks
    # the actual multiplier in BENCH_kernel.json.
    assert both_on < both_off
