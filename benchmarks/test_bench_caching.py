"""Section 4.4 ablation: aggressive caching of transformed subterms.

The paper: "we implemented aggressive caching (with an option to disable
the cache), even caching intermediate subterms that we encounter in the
course of running our proof term transformation", in response to the
industrial proof engineer's ~10 second patience.  This ablation measures
the transformation with the cache enabled vs disabled across a session
that re-transforms shared dependencies.
"""

import time

import pytest

from repro.cases.quickstart import setup_environment
from repro.core.caching import TransformCache
from repro.core.search.swap import swap_configuration
from repro.core.transform import Transformer


NAMES = ["app", "rev", "app_nil_r", "app_assoc", "rev_app_distr",
         "zip", "zip_with", "zip_with_is_zip"]


def _transform_all(env, config, cache):
    transformer = Transformer(env, config, cache=cache)
    for name in NAMES:
        decl = env.constant(name)
        transformer(decl.type)
        transformer(decl.body)
        # A second pass over the same terms models re-running Repair on a
        # file whose dependencies repeat (the industrial workflow).
        transformer(decl.body)
    return cache


def test_transform_with_cache(benchmark, rows):
    env = setup_environment()
    config = swap_configuration(env, "list", "New.list", prove=False)

    def run():
        return _transform_all(env, config, TransformCache(enabled=True))

    cache = benchmark(run)
    hit_rate = cache.hits / max(1, cache.hits + cache.misses)
    rows(
        "Section 4.4 ablation: cache enabled",
        "aggressive caching keeps repair within the ~10 s patience window",
        f"hits={cache.hits}, misses={cache.misses} "
        f"(hit rate {hit_rate:.0%})",
    )
    assert cache.hits > 0


def test_transform_without_cache(benchmark, rows):
    env = setup_environment()
    config = swap_configuration(env, "list", "New.list", prove=False)

    def run():
        return _transform_all(env, config, TransformCache(enabled=False))

    cache = benchmark(run)
    rows(
        "Section 4.4 ablation: cache disabled",
        "the tool exposes an option to disable the cache",
        "every subterm re-transformed (compare mean time with the "
        "cache-enabled benchmark)",
    )
    assert cache.hits == 0


def test_cache_speedup_summary(benchmark, rows):
    """Direct A/B comparison outside the benchmark fixture."""
    env = setup_environment()
    config = swap_configuration(env, "list", "New.list", prove=False)

    def cached_run():
        return _transform_all(env, config, TransformCache(enabled=True))

    benchmark.pedantic(cached_run, rounds=1, iterations=1)
    start = time.time()
    for _ in range(3):
        _transform_all(env, config, TransformCache(enabled=True))
    with_cache = time.time() - start

    start = time.time()
    for _ in range(3):
        _transform_all(env, config, TransformCache(enabled=False))
    without_cache = time.time() - start

    rows(
        "Section 4.4 ablation: speedup",
        "caching was required for acceptable latency",
        f"with cache {with_cache*1000:.0f}ms vs without "
        f"{without_cache*1000:.0f}ms "
        f"({without_cache / max(with_cache, 1e-9):.1f}x)",
    )
    assert with_cache <= without_cache * 1.5
