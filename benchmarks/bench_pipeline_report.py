"""Write BENCH_pipeline.json: per-phase wall time and cache hit rates.

Runs the replica, binary, and ornaments case studies with tracing
forced on and aggregates the recorded spans into flat per-phase entries
(``<case>/<phase>``) in the shared report schema
(:mod:`report_schema`), so the CI regression gate can compare runs.
The default ``<case>/*`` phases run with the NbE machine engine (the
default); an ablation re-runs every case with ``REPRO_DISABLE_NBE``
semantics (:func:`repro.kernel.machine.set_nbe`) under ``nbe_off/*``
phases, and an ``nbe`` extra summarizes the repair-phase wall-time and
``subst``-lookup ratios between the engines.  A second ablation does
the same for the transformer fast path (``REPRO_DISABLE_TRANSFORM_FAST``
semantics via :func:`repro.kernel.fastpath.set_transform_fast`) under
``transform_fast_off/*`` phases with a ``transform_fast`` extra, so the
in-run ratios carry machine-independent evidence for both engine
switches.  Optionally also writes the full Chrome trace-event JSON
(``chrome://tracing`` / Perfetto) for interactive inspection.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline_report.py \
        [OUTPUT.json] [--trace TRACE.json]
"""

from __future__ import annotations

import sys

from report_schema import make_report, write_report

from repro.kernel.stats import KERNEL_STATS
from repro.obs import (
    get_tracer,
    reset_tracer,
    set_tracing,
    span,
    summarize_spans,
    write_chrome_trace,
)

CASES = ("replica", "binary", "ornaments")


def _analysis_phases(phases: dict) -> None:
    """Run the static-analysis sweep traced; add ``analysis/*`` phases.

    The sweep re-runs each case through :mod:`repro.analysis.cli`, so the
    existing ``<case>/...`` phases stay comparable across report versions;
    analysis shows up only under its own ``analysis/<case>`` keys:
    ``total`` (sweep wall time, scenario setup included) plus one
    sub-phase per ``analyze_*`` span (the four passes proper).
    """
    from repro.analysis.cli import run_target

    for case in CASES:
        with span("analyze", category="analysis", target=case) as a_span:
            report = run_target(case)
        if report.has_errors:
            raise RuntimeError(
                f"analysis sweep of {case!r} reported errors:\n"
                + report.render()
            )
        phases[f"analysis/{case}/total"] = {
            "count": 1,
            "wall_time_s": round(a_span.duration_s, 6),
        }
        descendants = [s for s in a_span.walk() if s is not a_span]
        for phase, entry in summarize_spans(descendants).items():
            # The sweep re-runs the scenario to get artifacts; only the
            # analyze_* spans are analysis cost proper.
            if phase.startswith("analyze"):
                phases[f"analysis/{case}/{phase}"] = entry


def _repair_outputs() -> list:
    from repro.core.repair import RepairSession
    from repro.core.search.swap import swap_configuration
    from repro.kernel import pretty
    from repro.stdlib import declare_list_type, make_env

    env = make_env(lists=True, vectors=False)
    declare_list_type(env, "New.list", swapped=True)
    config = swap_configuration(env, "list", "New.list")
    session = RepairSession(
        env, config, old_globals=["list"], rename=lambda n: f"New.{n}"
    )
    results = session.repair_module(["app", "rev", "length", "map"])
    return [(pretty(r.term), pretty(r.type)) for r in results]


def check_transparency() -> None:
    """The analysis gate must not change repair output, byte for byte."""
    from repro.analysis import set_analysis

    previous = set_analysis(True)
    try:
        gated = _repair_outputs()
    finally:
        set_analysis(previous)
    previous = set_analysis(False)
    try:
        plain = _repair_outputs()
    finally:
        set_analysis(previous)
    if gated != plain:
        raise RuntimeError(
            "repair output differs with REPRO_ANALYZE on — the analysis "
            "gate is supposed to be read-only"
        )


def check_nbe_transparency() -> None:
    """Both reduction engines must repair to byte-identical output."""
    from repro.kernel.machine import set_nbe

    previous = set_nbe(True)
    try:
        with_machine = _repair_outputs()
    finally:
        set_nbe(previous)
    previous = set_nbe(False)
    try:
        without = _repair_outputs()
    finally:
        set_nbe(previous)
    if with_machine != without:
        raise RuntimeError(
            "repair output differs between the NbE machine and the "
            "substitution engine — the engines must be observationally "
            "identical"
        )


def check_transform_fast_transparency() -> None:
    """Both transformer drivers must repair to byte-identical output."""
    from repro.kernel.fastpath import set_transform_fast

    previous = set_transform_fast(True)
    try:
        fast = _repair_outputs()
    finally:
        set_transform_fast(previous)
    previous = set_transform_fast(False)
    try:
        legacy = _repair_outputs()
    finally:
        set_transform_fast(previous)
    if fast != legacy:
        raise RuntimeError(
            "repair output differs between the stack-driver fast path and "
            "the legacy recursive transformer — the drivers must be "
            "observationally identical"
        )


def _run_case(name: str) -> None:
    if name == "replica":
        from repro.cases.replica import run_scenario
    elif name == "binary":
        from repro.cases.binary import run_scenario
    elif name == "ornaments":
        from repro.cases.ornaments_example import run_scenario
    else:
        raise ValueError(f"unknown case {name!r}")
    run_scenario()


def _traced_case_phases(phases: dict, case: str, prefix: str) -> None:
    """Run one case traced; record its spans under ``prefix + case``.

    Term-level global caches are cleared first so every case starts
    cold: the NbE ablation re-runs the same cases later in the process,
    and warm ``lift``/``subst``/intern tables would otherwise hand the
    second engine a head start the first one paid for.
    """
    from repro.kernel.term import clear_term_caches

    clear_term_caches()
    KERNEL_STATS.reset()
    with span(case, category="case") as case_span:
        _run_case(case)
    phases[f"{prefix}{case}/total"] = {
        "count": 1,
        "wall_time_s": round(case_span.duration_s, 6),
        "cache_hit_rates": {
            table: delta["hit_rate"]
            for table, delta in case_span.kernel["tables"].items()
        },
    }
    descendants = [s for s in case_span.walk() if s is not case_span]
    for phase, entry in summarize_spans(descendants).items():
        phases[f"{prefix}{case}/{phase}"] = entry


def _nbe_summary(phases: dict) -> dict:
    """Engine on/off ratios for the repair phases, per case."""
    from repro.kernel.machine import set_nbe  # noqa: F401 (doc pointer)

    summary: dict = {}
    for case in CASES:
        on = phases.get(f"{case}/repair")
        off = phases.get(f"nbe_off/{case}/repair")
        if not on or not off:
            continue
        on_subst = on.get("cache_lookups", {}).get("subst", 0)
        off_subst = off.get("cache_lookups", {}).get("subst", 0)
        summary[case] = {
            "repair_wall_on_s": on["wall_time_s"],
            "repair_wall_off_s": off["wall_time_s"],
            "repair_speedup": round(
                off["wall_time_s"] / max(on["wall_time_s"], 1e-9), 2
            ),
            "repair_subst_lookups_on": on_subst,
            "repair_subst_lookups_off": off_subst,
            "repair_subst_drop": round(
                off_subst / max(on_subst, 1), 2
            ),
        }
    return summary


def _transform_fast_summary(phases: dict) -> dict:
    """Fast-path on/off ratios for transform and repair, per case."""
    from repro.kernel.fastpath import set_transform_fast  # noqa: F401

    summary: dict = {}
    for case in CASES:
        on = phases.get(f"{case}/repair")
        off = phases.get(f"transform_fast_off/{case}/repair")
        if not on or not off:
            continue
        entry = {
            "repair_wall_on_s": on["wall_time_s"],
            "repair_wall_off_s": off["wall_time_s"],
            "repair_speedup": round(
                off["wall_time_s"] / max(on["wall_time_s"], 1e-9), 2
            ),
        }
        t_on = phases.get(f"{case}/transform")
        t_off = phases.get(f"transform_fast_off/{case}/transform")
        if t_on and t_off:
            entry["transform_wall_on_s"] = t_on["wall_time_s"]
            entry["transform_wall_off_s"] = t_off["wall_time_s"]
            entry["transform_speedup"] = round(
                t_off["wall_time_s"] / max(t_on["wall_time_s"], 1e-9), 2
            )
        summary[case] = entry
    return summary


def build_report() -> dict:
    """Run every case traced; return the shared-schema report dict."""
    from repro.kernel.fastpath import set_transform_fast
    from repro.kernel.machine import set_nbe

    previous = set_tracing(True)
    reset_tracer()
    phases: dict = {}
    try:
        for case in CASES:
            _traced_case_phases(phases, case, "")
        # NbE ablation: the same cases on the substitution engine.
        nbe_previous = set_nbe(False)
        try:
            for case in CASES:
                _traced_case_phases(phases, case, "nbe_off/")
        finally:
            set_nbe(nbe_previous)
        # Transformer ablation: same cases on the legacy recursive driver.
        fast_previous = set_transform_fast(False)
        try:
            for case in CASES:
                _traced_case_phases(phases, case, "transform_fast_off/")
        finally:
            set_transform_fast(fast_previous)
        _analysis_phases(phases)
    finally:
        set_tracing(previous)
    return make_report(
        "pipeline",
        phases,
        nbe=_nbe_summary(phases),
        transform_fast=_transform_fast_summary(phases),
    )


def print_summary(report: dict) -> None:
    phases = report["phases"]
    for case, entry in sorted(report.get("nbe", {}).items()):
        print(
            f"nbe {case}: repair {entry['repair_wall_on_s']:.4f}s on / "
            f"{entry['repair_wall_off_s']:.4f}s off "
            f"({entry['repair_speedup']}x), subst lookups "
            f"{entry['repair_subst_lookups_on']} / "
            f"{entry['repair_subst_lookups_off']} "
            f"({entry['repair_subst_drop']}x fewer)"
        )
    for case, entry in sorted(report.get("transform_fast", {}).items()):
        line = (
            f"transform_fast {case}: repair "
            f"{entry['repair_wall_on_s']:.4f}s on / "
            f"{entry['repair_wall_off_s']:.4f}s off "
            f"({entry['repair_speedup']}x)"
        )
        if "transform_speedup" in entry:
            line += (
                f", transform {entry['transform_wall_on_s']:.4f}s / "
                f"{entry['transform_wall_off_s']:.4f}s "
                f"({entry['transform_speedup']}x)"
            )
        print(line)
    for case in CASES + tuple(f"analysis/{case}" for case in CASES):
        print(f"{case}:")
        names = sorted(
            (name for name in phases if name.startswith(f"{case}/")),
            key=lambda name: -phases[name]["wall_time_s"],
        )
        for name in names:
            entry = phases[name]
            rates = ", ".join(
                f"{table}={rate:.0%}"
                for table, rate in sorted(
                    entry.get("cache_hit_rates", {}).items()
                )
            )
            print(
                f"  {name.split('/', 1)[1]:<14} "
                f"{entry['wall_time_s']:8.4f}s  "
                f"x{entry.get('count', 1):<5} "
                f"[{rates}]"
            )


def main(argv) -> int:
    args = list(argv[1:])
    trace_path = None
    if "--trace" in args:
        at = args.index("--trace")
        try:
            trace_path = args[at + 1]
        except IndexError:
            print("--trace needs a path", file=sys.stderr)
            return 2
        del args[at : at + 2]
    out_path = args[0] if args else "BENCH_pipeline.json"

    try:
        check_transparency()
        print("analysis transparency: repair output identical with gate on")
        check_nbe_transparency()
        print("engine transparency: repair output identical across engines")
        check_transform_fast_transparency()
        print(
            "transformer transparency: repair output identical across "
            "drivers"
        )
        report = build_report()
        write_report(out_path, report)
    except Exception as exc:
        # A failed case or malformed results must fail the job instead of
        # leaving a partial report behind (write_report is atomic).
        print(f"bench_pipeline_report: {exc}", file=sys.stderr)
        return 1
    if trace_path is not None:
        write_chrome_trace(trace_path, get_tracer())
        print(f"wrote {trace_path}")
    print_summary(report)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
