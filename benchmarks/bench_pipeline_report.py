"""Write BENCH_pipeline.json: per-phase wall time and cache hit rates.

Runs the replica, binary, and ornaments case studies with tracing
forced on and aggregates the recorded spans into flat per-phase entries
(``<case>/<phase>``) in the shared report schema
(:mod:`report_schema`), so the CI regression gate can compare runs.
Optionally also writes the full Chrome trace-event JSON
(``chrome://tracing`` / Perfetto) for interactive inspection.

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline_report.py \
        [OUTPUT.json] [--trace TRACE.json]
"""

from __future__ import annotations

import sys

from report_schema import make_report, write_report

from repro.kernel.stats import KERNEL_STATS
from repro.obs import (
    get_tracer,
    reset_tracer,
    set_tracing,
    span,
    summarize_spans,
    write_chrome_trace,
)

CASES = ("replica", "binary", "ornaments")


def _run_case(name: str) -> None:
    if name == "replica":
        from repro.cases.replica import run_scenario
    elif name == "binary":
        from repro.cases.binary import run_scenario
    elif name == "ornaments":
        from repro.cases.ornaments_example import run_scenario
    else:
        raise ValueError(f"unknown case {name!r}")
    run_scenario()


def build_report() -> dict:
    """Run every case traced; return the shared-schema report dict."""
    previous = set_tracing(True)
    reset_tracer()
    phases: dict = {}
    try:
        for case in CASES:
            KERNEL_STATS.reset()
            with span(case, category="case") as case_span:
                _run_case(case)
            phases[f"{case}/total"] = {
                "count": 1,
                "wall_time_s": round(case_span.duration_s, 6),
                "cache_hit_rates": {
                    table: delta["hit_rate"]
                    for table, delta in case_span.kernel["tables"].items()
                },
            }
            descendants = [s for s in case_span.walk() if s is not case_span]
            for phase, entry in summarize_spans(descendants).items():
                phases[f"{case}/{phase}"] = entry
    finally:
        set_tracing(previous)
    return make_report("pipeline", phases)


def print_summary(report: dict) -> None:
    phases = report["phases"]
    for case in CASES:
        print(f"{case}:")
        names = sorted(
            (name for name in phases if name.startswith(f"{case}/")),
            key=lambda name: -phases[name]["wall_time_s"],
        )
        for name in names:
            entry = phases[name]
            rates = ", ".join(
                f"{table}={rate:.0%}"
                for table, rate in sorted(
                    entry.get("cache_hit_rates", {}).items()
                )
            )
            print(
                f"  {name.split('/', 1)[1]:<14} "
                f"{entry['wall_time_s']:8.4f}s  "
                f"x{entry.get('count', 1):<5} "
                f"[{rates}]"
            )


def main(argv) -> int:
    args = list(argv[1:])
    trace_path = None
    if "--trace" in args:
        at = args.index("--trace")
        try:
            trace_path = args[at + 1]
        except IndexError:
            print("--trace needs a path", file=sys.stderr)
            return 2
        del args[at : at + 2]
    out_path = args[0] if args else "BENCH_pipeline.json"

    try:
        report = build_report()
        write_report(out_path, report)
    except Exception as exc:
        # A failed case or malformed results must fail the job instead of
        # leaving a partial report behind (write_report is atomic).
        print(f"bench_pipeline_report: {exc}", file=sys.stderr)
        return 1
    if trace_path is not None:
        write_chrome_trace(trace_path, get_tracer())
        print(f"wrote {trace_path}")
    print_summary(report)
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
