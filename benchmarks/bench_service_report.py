"""Write BENCH_service.json: batch wall-time scaling across pool widths.

Runs the eight-job six-case batch (:func:`repro.service.cases.six_case_jobs`)
through the service scheduler at ``--jobs 1``, ``2``, and ``4`` with a cold
store each time, then replays the ``jobs=1`` batch against its warm store.
Every cold width uses the *subprocess* runner — including ``jobs=1`` —
so the scaling ratios compare identical per-job cost and measure only
the pool, not in-process vs subprocess dispatch overhead.

Phases (shared schema, :mod:`report_schema`)::

    cold/jobs1, cold/jobs2, cold/jobs4   # fresh store, subprocess workers
    warm/jobs1                           # same store as cold/jobs1 => cached
    cold_start/scratch                   # storeless batch, scratch boots
    cold_start/snapshot                  # same batch, snapshot-pack boots
    warm_pool/cold                       # persistent pool, first (boot) pass
    warm_pool/jobs1, /jobs2, /jobs4      # same pool, every env resident

plus a ``scaling`` extra with the ``jobsN / jobs1`` wall-time ratios.
The ``warm_pool`` family runs the batch twice per width on one
persistent :class:`~repro.service.pool.WorkerPool` — the first pass
pays interpreter + import + boot once per worker, the second measures
the steady state the pool exists for.  The width-1 warm pass is gated
hard: every job must report ``env_boot == "warm"``, every
``result_digest`` must be byte-identical to its scratch-boot subprocess
twin, and its wall time must be at most ``--max-warm-pool-ratio``
(default 0.5) of ``cold_start/scratch`` — both sides serial, so this
gate holds on single-core boxes too.
The ``cold_start`` pair measures worker environment boots in isolation:
both run the identical eight-job batch through subprocess workers with
no result store, differing only in whether a snapshot pack (see
:mod:`repro.kernel.snapshot`) is on offer.  The snapshot run fails hard
unless every job actually booted from the pack *and* produced the same
``result_digest`` as its scratch twin — the bench is also the
byte-identity gate — and unless the snapshot batch beat the scratch one
(``--max-snapshot-ratio``, default 1.0: at minimum, never slower).
The run fails when ``cold/jobs4`` is not at least ``--max-ratio`` (default
0.8) of ``cold/jobs1`` — parallel dispatch must actually buy wall time —
or when a single service job's repair output is not byte-identical to the
``Repair`` vernacular (the service must be a scheduler, not a semantics).
The scaling gate needs parallel hardware: on a box with fewer than two
usable CPUs (single-core CI containers), the ratios are still recorded
but the hard check is skipped — CPU-bound workers cannot beat serial on
one core, and failing the bench there would measure the machine, not
the pool.

Usage::

    PYTHONPATH=src python benchmarks/bench_service_report.py \
        [OUTPUT.json] [--max-ratio 0.8]
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from typing import Any, Dict, List, Tuple

from report_schema import make_report, write_report

from repro.service import (
    BatchOptions,
    ResultStore,
    run_batch,
    subprocess_runner,
)
from repro.service.cases import six_case_jobs

WIDTHS = (1, 2, 4)


def _run_width(jobs: List[Any], width: int, store_dir: str) -> Any:
    report = run_batch(
        jobs,
        BatchOptions(
            jobs=width,
            store=ResultStore(store_dir),
            timeout_s=600,
            backoff_s=0.0,
        ),
        runner=subprocess_runner(),
        batch=f"six-cases/jobs{width}",
    )
    bad = [o for o in report.outcomes if not o.ok]
    if bad:
        raise RuntimeError(
            "batch failed at jobs=%d: %s"
            % (width, ", ".join(f"{o.job.name}={o.status}" for o in bad))
        )
    return report


def _phase(report: Any, width: int) -> Dict[str, Any]:
    return {
        "wall_time_s": round(report.wall_time_s, 6),
        "count": len(report.outcomes),
        "jobs": width,
        "workers": min(width, len(report.outcomes)),
        "cache_hit_rates": {"store": round(report.cache_hit_rate, 4)},
    }


def _require_ok(report: Any, what: str) -> None:
    bad = [o for o in report.outcomes if not o.ok]
    if bad:
        raise RuntimeError(
            "%s batch failed: %s"
            % (what, ", ".join(f"{o.job.name}={o.status}" for o in bad))
        )


def _run_cold_start(
    jobs: List[Any], tmp: str
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, str]]:
    """The ``cold_start/*`` phases: scratch vs snapshot worker boots.

    Also returns the per-job scratch ``result_digest`` table — the
    reference the ``warm_pool`` parity gate compares against.
    """
    from repro.service.job import result_digest
    from repro.service.warmup import ensure_batch_snapshot

    snap = f"{tmp}/six_cases.snap"
    ensure_batch_snapshot(jobs, snap)
    runs: Dict[str, Any] = {}
    for mode, snapshot in (("scratch", None), ("snapshot", snap)):
        report = run_batch(
            jobs,
            BatchOptions(
                jobs=1, timeout_s=600, backoff_s=0.0, snapshot=snapshot
            ),
            runner=subprocess_runner(snapshot=snapshot),
            batch=f"six-cases/cold_start-{mode}",
        )
        _require_ok(report, f"cold_start/{mode}")
        runs[mode] = report
    boots = {
        o.job.name: o.result.get("env_boot")
        for o in runs["snapshot"].outcomes
    }
    not_warm = sorted(n for n, b in boots.items() if b != "snapshot")
    if not_warm:
        raise RuntimeError(
            "cold_start/snapshot jobs booted from scratch despite the "
            "pack: " + ", ".join(not_warm)
        )
    for cold, hot in zip(runs["scratch"].outcomes, runs["snapshot"].outcomes):
        if result_digest(cold.result) != result_digest(hot.result):
            raise RuntimeError(
                f"snapshot boot changed the repair output of "
                f"{cold.job.name} — scratch and snapshot digests differ"
            )
    phases = {
        f"cold_start/{mode}": _phase(report, 1)
        for mode, report in runs.items()
    }
    digests = {
        o.job.name: result_digest(o.result)
        for o in runs["scratch"].outcomes
    }
    return phases, digests


def _run_warm_pool(
    jobs: List[Any], scratch_digests: Dict[str, str]
) -> Tuple[Dict[str, Dict[str, Any]], Dict[str, Any]]:
    """The ``warm_pool/*`` phases: persistent workers, cold then warm.

    Per width, one :class:`WorkerPool` serves the batch twice: the
    first pass boots (interpreter + imports + env, amortized), the
    second measures steady-state warm serving.  The width-1 warm pass
    is the gated one — serial on both sides of the comparison, every
    environment resident, so it must be all-``warm`` and byte-identical
    to the scratch subprocess run.  Wider warm passes are recorded for
    scaling but not gated: which worker a job lands on is not
    deterministic, so some may still boot.
    """
    from repro.service import WorkerPool
    from repro.service.job import result_digest

    phases: Dict[str, Dict[str, Any]] = {}
    pool_stats: Dict[str, Any] = {}
    for width in WIDTHS:
        with WorkerPool(width) as pool:
            cold = run_batch(
                jobs,
                BatchOptions(jobs=width, timeout_s=600, backoff_s=0.0),
                runner=pool.runner(),
                batch=f"six-cases/warm_pool-cold-jobs{width}",
            )
            _require_ok(cold, f"warm_pool cold jobs={width}")
            warm = run_batch(
                jobs,
                BatchOptions(jobs=width, timeout_s=600, backoff_s=0.0),
                runner=pool.runner(),
                batch=f"six-cases/warm_pool-jobs{width}",
            )
            _require_ok(warm, f"warm_pool warm jobs={width}")
            if width == 1:
                phases["warm_pool/cold"] = _phase(cold, width)
                not_warm = sorted(
                    o.job.name
                    for o in warm.outcomes
                    if o.result.get("env_boot") != "warm"
                )
                if not_warm:
                    raise RuntimeError(
                        "warm_pool/jobs1 jobs re-booted despite a warmed "
                        "pool: " + ", ".join(not_warm)
                    )
                mismatched = sorted(
                    o.job.name
                    for o in warm.outcomes
                    if result_digest(o.result)
                    != scratch_digests[o.job.name]
                )
                if mismatched:
                    raise RuntimeError(
                        "warm pool changed repair output (digest differs "
                        "from the scratch subprocess run): "
                        + ", ".join(mismatched)
                    )
                pool_stats = pool.stats()
            phases[f"warm_pool/jobs{width}"] = _phase(warm, width)
    return phases, pool_stats


def check_transparency() -> None:
    """A service job must repair to the byte-identical vernacular output."""
    from repro.cases.quickstart import setup_environment
    from repro.commands import CommandSession
    from repro.kernel.pretty import pretty
    from repro.service import RepairJob
    from repro.service.job import fingerprint_source

    setup = "repro.service.cases:quickstart_env"
    job = RepairJob(
        name="transparency",
        setup=setup,
        target="rev_app_distr",
        config={"kind": "auto", "a": "list", "b": "New.list"},
        old=("list",),
        rename={"kind": "suffix", "value": "'"},
        env_fingerprint=fingerprint_source(setup),
    )
    record = run_batch([job], BatchOptions(jobs=1)).outcomes[0].result
    session = CommandSession(setup_environment())
    vernacular = session.execute("Repair list New.list in rev_app_distr").results[0]
    if (
        record["new_name"] != vernacular.new_name
        or record["term"] != pretty(vernacular.term)
        or record["type"] != pretty(vernacular.type)
    ):
        raise RuntimeError(
            "service job output differs from the Repair vernacular — the "
            "service layer must not change repair semantics"
        )


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_report() -> Tuple[dict, dict]:
    jobs = six_case_jobs()
    phases: Dict[str, Dict[str, Any]] = {}
    walls: Dict[int, float] = {}
    utilization: Dict[str, float] = {}
    warm_store: str = ""
    with tempfile.TemporaryDirectory(prefix="bench_service_") as tmp:
        for width in WIDTHS:
            store_dir = f"{tmp}/store{width}"
            report = _run_width(jobs, width, store_dir)
            phases[f"cold/jobs{width}"] = _phase(report, width)
            walls[width] = report.wall_time_s
            utilization[f"jobs{width}"] = round(report.worker_utilization, 4)
            if width == 1:
                warm_store = store_dir
        warm = run_batch(
            jobs,
            BatchOptions(jobs=1, store=ResultStore(warm_store)),
            batch="six-cases/warm",
        )
        cached = sum(1 for o in warm.outcomes if o.status == "cached")
        if cached != len(warm.outcomes):
            raise RuntimeError(
                f"warm rerun expected all cached, got {warm.counts}"
            )
        entry = _phase(warm, 1)
        phases["warm/jobs1"] = entry
        cold_start_phases, scratch_digests = _run_cold_start(jobs, tmp)
        phases.update(cold_start_phases)
        warm_pool_phases, pool_stats = _run_warm_pool(jobs, scratch_digests)
        phases.update(warm_pool_phases)
    scaling = {
        f"jobs{width}_vs_jobs1": round(walls[width] / max(walls[1], 1e-9), 4)
        for width in WIDTHS
        if width != 1
    }
    scaling["warm_vs_cold_jobs1"] = round(
        phases["warm/jobs1"]["wall_time_s"] / max(walls[1], 1e-9), 4
    )
    scaling["snapshot_vs_scratch"] = round(
        phases["cold_start/snapshot"]["wall_time_s"]
        / max(phases["cold_start/scratch"]["wall_time_s"], 1e-9),
        4,
    )
    # Warm pool vs the per-attempt subprocess mode, both serial and
    # storeless — the amortization the pool exists to buy.
    scratch_wall = max(phases["cold_start/scratch"]["wall_time_s"], 1e-9)
    scaling["warm_pool_vs_subprocess"] = round(
        phases["warm_pool/jobs1"]["wall_time_s"] / scratch_wall, 4
    )
    scaling["warm_pool_cold_vs_subprocess"] = round(
        phases["warm_pool/cold"]["wall_time_s"] / scratch_wall, 4
    )
    report = make_report(
        "service",
        phases,
        scaling=scaling,
        worker_utilization=utilization,
        cpus=usable_cpus(),
        pool=pool_stats,
    )
    return report, scaling


def print_summary(report: dict, scaling: dict) -> None:
    for name in sorted(report["phases"]):
        entry = report["phases"][name]
        print(
            f"{name:<12} {entry['wall_time_s']:8.4f}s  "
            f"x{entry['count']}  jobs={entry['jobs']}  "
            f"store={entry['cache_hit_rates']['store']:.0%}"
        )
    for name, ratio in sorted(scaling.items()):
        print(f"scaling {name}: {ratio}")


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="BENCH_service.json")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=0.8,
        help="fail when cold/jobs4 exceeds this fraction of cold/jobs1 "
        "(0 disables the check; default: 0.8)",
    )
    parser.add_argument(
        "--max-snapshot-ratio",
        type=float,
        default=1.0,
        help="fail when cold_start/snapshot exceeds this fraction of "
        "cold_start/scratch (0 disables the check; default: 1.0 — a "
        "snapshot boot must never lose to a scratch boot)",
    )
    parser.add_argument(
        "--max-warm-pool-ratio",
        type=float,
        default=0.5,
        help="fail when warm_pool/jobs1 exceeds this fraction of "
        "cold_start/scratch (0 disables the check; default: 0.5 — warm "
        "per-job wall must be at most half the per-attempt subprocess "
        "mode; both sides serial, so no CPU-count escape hatch)",
    )
    args = parser.parse_args(argv[1:])

    try:
        check_transparency()
        print("service transparency: repair output identical to vernacular")
        report, scaling = build_report()
        write_report(args.output, report)
    except Exception as exc:
        # A failed batch or malformed report must fail the job instead of
        # leaving a partial report behind (write_report is atomic).
        print(f"bench_service_report: {exc}", file=sys.stderr)
        return 1
    print_summary(report, scaling)
    print(f"wrote {args.output}")
    ratio = scaling["jobs4_vs_jobs1"]
    cpus = report["cpus"]
    if args.max_ratio and cpus < 2:
        print(
            f"note: {cpus} usable CPU(s) — recording scaling ratios but "
            "skipping the pool-scaling gate (parallel workers cannot beat "
            "serial on one core)"
        )
    elif args.max_ratio and ratio > args.max_ratio:
        print(
            f"bench_service_report: cold/jobs4 is {ratio}x of cold/jobs1 "
            f"(limit {args.max_ratio}) — the pool is not scaling",
            file=sys.stderr,
        )
        return 1
    snap_ratio = scaling["snapshot_vs_scratch"]
    if args.max_snapshot_ratio and snap_ratio > args.max_snapshot_ratio:
        print(
            f"bench_service_report: cold_start/snapshot is {snap_ratio}x "
            f"of cold_start/scratch (limit {args.max_snapshot_ratio}) — "
            "snapshot boots are not paying for themselves",
            file=sys.stderr,
        )
        return 1
    pool_ratio = scaling["warm_pool_vs_subprocess"]
    if args.max_warm_pool_ratio and pool_ratio > args.max_warm_pool_ratio:
        print(
            f"bench_service_report: warm_pool/jobs1 is {pool_ratio}x of "
            f"cold_start/scratch (limit {args.max_warm_pool_ratio}) — "
            "warm workers are not amortizing boot cost",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
