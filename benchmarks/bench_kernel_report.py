"""Write BENCH_kernel.json: end-to-end repair timings and cache hit rates.

Runs the replica and binary case studies with all kernel performance
layers enabled and disabled, recording wall time per configuration and
the :data:`~repro.kernel.stats.KERNEL_STATS` snapshot of the enabled
run (intern hits, per-table memo hit rates, reduction-cache hit rates).
A second ablation toggles the NbE machine engine
(:func:`repro.kernel.machine.set_nbe`, the ``REPRO_DISABLE_NBE``
switch) with every cache layer left on, recording the machine's event
counters (steps, closures, readbacks, delta unfolds avoided) for the
engine-on run.  CI uploads the resulting JSON as an artifact and diffs
it against the committed baseline with ``check_regression.py``, so
regressions in the caching layers fail the job instead of silently
dropping the speedup multiplier.

The output uses the shared report envelope of :mod:`report_schema`
(timestamp, git sha, flat per-phase entries); a failed case or
malformed results exit non-zero without writing anything — the write
is validated first and atomic.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_report.py [OUTPUT.json]
"""

from __future__ import annotations

import sys
import time

from report_schema import make_report, write_report

from repro.kernel.env import set_reduction_cache_default
from repro.kernel.machine import set_nbe
from repro.kernel.stats import KERNEL_STATS
from repro.kernel.term import (
    clear_term_caches,
    set_hash_consing,
    set_term_memo,
)

CASES = ("replica", "binary")


def _run_case(name: str) -> None:
    if name == "replica":
        from repro.cases.replica import run_scenario
    elif name == "binary":
        from repro.cases.binary import run_scenario
    else:
        raise ValueError(f"unknown case {name!r}")
    run_scenario()


def _set_layers(enabled: bool) -> None:
    set_hash_consing(enabled)
    set_term_memo(enabled)
    set_reduction_cache_default(enabled)
    clear_term_caches()
    KERNEL_STATS.reset()


def _measure(case: str, enabled: bool) -> dict:
    _set_layers(enabled)
    start = time.perf_counter()
    _run_case(case)
    elapsed = time.perf_counter() - start
    entry = {
        "count": 1,
        "wall_time_s": round(elapsed, 4),
        "layers_enabled": enabled,
    }
    if enabled:
        snapshot = KERNEL_STATS.snapshot()
        entry["kernel_stats"] = snapshot
        entry["cache_hit_rates"] = {
            name: table["hit_rate"]
            for name, table in snapshot["tables"].items()
        }
    return entry


def _measure_nbe(case: str, enabled: bool) -> dict:
    """Wall time for one case with the NbE engine on/off (caches on)."""
    _set_layers(True)
    previous = set_nbe(enabled)
    try:
        start = time.perf_counter()
        _run_case(case)
        elapsed = time.perf_counter() - start
    finally:
        set_nbe(previous)
    entry = {
        "count": 1,
        "wall_time_s": round(elapsed, 4),
        "nbe_enabled": enabled,
    }
    if enabled:
        entry["machine_events"] = KERNEL_STATS.snapshot()["events"]
    return entry


def build_report() -> dict:
    phases: dict = {}
    speedups: dict = {}
    nbe_speedups: dict = {}
    try:
        for case in CASES:
            on = _measure(case, True)
            off = _measure(case, False)
            speedups[case] = round(
                off["wall_time_s"] / max(on["wall_time_s"], 1e-9), 2
            )
            phases[f"{case}/layers_on"] = on
            phases[f"{case}/layers_off"] = off
        for case in CASES:
            nbe_on = _measure_nbe(case, True)
            nbe_off = _measure_nbe(case, False)
            nbe_speedups[case] = round(
                nbe_off["wall_time_s"] / max(nbe_on["wall_time_s"], 1e-9), 2
            )
            phases[f"{case}/nbe_on"] = nbe_on
            phases[f"{case}/nbe_off"] = nbe_off
    finally:
        _set_layers(True)
    return make_report(
        "kernel performance layers",
        phases,
        speedups=speedups,
        nbe_speedups=nbe_speedups,
    )


def main(argv) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_kernel.json"
    try:
        report = build_report()
        write_report(out_path, report)
    except Exception as exc:
        # A failed case or malformed results must fail the job instead of
        # leaving a partial report behind (write_report is atomic).
        print(f"bench_kernel_report: {exc}", file=sys.stderr)
        return 1
    for case in CASES:
        print(
            f"{case}: on {report['phases'][f'{case}/layers_on']['wall_time_s']}s, "
            f"off {report['phases'][f'{case}/layers_off']['wall_time_s']}s, "
            f"speedup {report['speedups'][case]}x"
        )
        print(
            f"{case}: nbe on "
            f"{report['phases'][f'{case}/nbe_on']['wall_time_s']}s, "
            f"off {report['phases'][f'{case}/nbe_off']['wall_time_s']}s, "
            f"speedup {report['nbe_speedups'][case]}x"
        )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
