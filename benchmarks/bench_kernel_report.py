"""Write BENCH_kernel.json: end-to-end repair timings and cache hit rates.

Runs the replica and binary case studies with all kernel performance
layers enabled and disabled, recording wall time per configuration and
the :data:`~repro.kernel.stats.KERNEL_STATS` snapshot of the enabled
run (intern hits, per-table memo hit rates, reduction-cache hit rates).
CI uploads the resulting JSON as an artifact so regressions in the
caching layers show up as a dropping speedup multiplier.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_report.py [OUTPUT.json]
"""

from __future__ import annotations

import json
import sys
import time

from repro.kernel.env import set_reduction_cache_default
from repro.kernel.stats import KERNEL_STATS
from repro.kernel.term import (
    clear_term_caches,
    set_hash_consing,
    set_term_memo,
)


CASES = ("replica", "binary")


def _run_case(name: str) -> None:
    if name == "replica":
        from repro.cases.replica import run_scenario
    elif name == "binary":
        from repro.cases.binary import run_scenario
    else:
        raise ValueError(f"unknown case {name!r}")
    run_scenario()


def _set_layers(enabled: bool) -> None:
    set_hash_consing(enabled)
    set_term_memo(enabled)
    set_reduction_cache_default(enabled)
    clear_term_caches()
    KERNEL_STATS.reset()


def _measure(case: str, enabled: bool) -> dict:
    _set_layers(enabled)
    start = time.perf_counter()
    _run_case(case)
    elapsed = time.perf_counter() - start
    entry = {"wall_time_s": round(elapsed, 4), "layers_enabled": enabled}
    if enabled:
        entry["kernel_stats"] = KERNEL_STATS.snapshot()
    return entry


def build_report() -> dict:
    report = {"benchmark": "kernel performance layers", "cases": {}}
    try:
        for case in CASES:
            on = _measure(case, True)
            off = _measure(case, False)
            speedup = off["wall_time_s"] / max(on["wall_time_s"], 1e-9)
            report["cases"][case] = {
                "layers_on": on,
                "layers_off": off,
                "speedup": round(speedup, 2),
            }
    finally:
        _set_layers(True)
    return report


def main(argv) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_kernel.json"
    report = build_report()
    with open(out_path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for case, data in report["cases"].items():
        print(
            f"{case}: on {data['layers_on']['wall_time_s']}s, "
            f"off {data['layers_off']['wall_time_s']}s, "
            f"speedup {data['speedup']}x"
        )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
