"""CI bench-regression gate: diff a fresh report against a baseline.

Compares two shared-schema reports (see :mod:`report_schema`) phase by
phase and exits non-zero when the fresh run regressed:

* **wall time** — fail when a phase is slower than
  ``baseline * (1 + tolerance)`` *and* slower by at least
  ``--min-seconds`` (absolute floor, so microsecond phases cannot trip
  the gate on scheduler noise); ``*/transform`` phases use the tighter
  ``--transform-min-seconds`` floor so the transformer hot path — a few
  milliseconds per case by design — is actually guarded rather than
  hidden under the general noise floor;
* **cache hit rates** — fail when any table's hit rate dropped by more
  than ``--hit-rate-drop`` percentage points (machine-independent, so
  this catches cache-layer regressions even across different runners);
* **missing phases** — fail when a phase present in the baseline
  disappeared (an instrumentation or pipeline regression).  New phases
  only warn;
* **required phases** — ``--require-phase NAME`` (repeatable) fails
  when the *current* report lacks ``NAME`` even if the baseline never
  carried it, so a brand-new phase family (e.g. ``cold_start/snapshot``)
  is pinned into existence the moment its gate lands in CI.  ``NAME``
  may be a shell-style glob (``impact/*``): the gate then requires at
  least one matching phase.

Usage::

    python benchmarks/check_regression.py CURRENT.json BASELINE.json \
        [--tolerance 0.25] [--hit-rate-drop 0.10] [--min-seconds 0.05] \
        [--require-phase cold_start/snapshot]
"""

from __future__ import annotations

import argparse
import fnmatch
import sys
from typing import List

from report_schema import ReportError, load_report


def _is_transform_phase(name: str) -> bool:
    """Whether ``name`` is a transformer hot-path wall-time entry."""
    return name.rsplit("/", 1)[-1] == "transform"


def compare(
    current: dict,
    baseline: dict,
    tolerance: float,
    hit_rate_drop: float,
    min_seconds: float,
    transform_min_seconds: float = 0.005,
) -> List[str]:
    """Human-readable regression descriptions; empty means the gate passes."""
    regressions: List[str] = []
    current_phases = current["phases"]
    baseline_phases = baseline["phases"]

    for name in sorted(baseline_phases):
        base = baseline_phases[name]
        cur = current_phases.get(name)
        if cur is None:
            regressions.append(
                f"{name}: present in baseline but missing from current report"
            )
            continue

        base_wall = base["wall_time_s"]
        cur_wall = cur["wall_time_s"]
        limit = base_wall * (1.0 + tolerance)
        floor = (
            transform_min_seconds
            if _is_transform_phase(name)
            else min_seconds
        )
        if cur_wall > limit and cur_wall - base_wall > floor:
            regressions.append(
                f"{name}: wall time {cur_wall:.4f}s exceeds baseline "
                f"{base_wall:.4f}s by more than {tolerance:.0%} "
                f"(limit {limit:.4f}s)"
            )

        base_rates = base.get("cache_hit_rates", {})
        cur_rates = cur.get("cache_hit_rates", {})
        for table, base_rate in sorted(base_rates.items()):
            cur_rate = cur_rates.get(table)
            if cur_rate is None:
                # Table not exercised this run (e.g. counts below the
                # reporting threshold); wall time still guards it.
                continue
            if base_rate - cur_rate > hit_rate_drop:
                regressions.append(
                    f"{name}: {table} hit rate dropped "
                    f"{base_rate:.1%} -> {cur_rate:.1%} "
                    f"(more than {hit_rate_drop:.0%} points)"
                )
    return regressions


def missing_required(current: dict, required: List[str]) -> List[str]:
    """Required phases/globs unmatched by ``current`` (order preserved).

    A plain name must be present verbatim; a glob pattern (``*?[``)
    must match at least one phase.
    """
    phases = current["phases"]
    missing: List[str] = []
    for name in required:
        if any(ch in name for ch in "*?["):
            if not any(
                fnmatch.fnmatchcase(phase, name) for phase in phases
            ):
                missing.append(name)
        elif name not in phases:
            missing.append(name)
    return missing


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated report")
    parser.add_argument("baseline", help="committed baseline report")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="relative wall-time tolerance (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--hit-rate-drop",
        type=float,
        default=0.10,
        help="max tolerated cache hit-rate drop in points (default: 0.10)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="absolute wall-time floor below which slowdowns are noise",
    )
    parser.add_argument(
        "--transform-min-seconds",
        type=float,
        default=0.005,
        help=(
            "absolute wall-time floor for */transform phases "
            "(default: 0.005, tighter than --min-seconds so the "
            "transformer hot path is guarded)"
        ),
    )
    parser.add_argument(
        "--require-phase",
        action="append",
        default=[],
        metavar="NAME",
        help=(
            "fail when the current report lacks this phase, even if the "
            "baseline never carried it (repeatable; shell globs like "
            "'impact/*' require at least one match)"
        ),
    )
    args = parser.parse_args(argv[1:])

    try:
        current = load_report(args.current)
        baseline = load_report(args.baseline)
    except ReportError as exc:
        print(f"check_regression: {exc}", file=sys.stderr)
        return 2

    new_phases = sorted(
        set(current["phases"]) - set(baseline["phases"])
    )
    if new_phases:
        print(
            "note: phases not in baseline (unchecked): "
            + ", ".join(new_phases)
        )

    regressions = [
        f"{name}: required phase missing from current report"
        for name in missing_required(current, args.require_phase)
    ]
    regressions += compare(
        current,
        baseline,
        tolerance=args.tolerance,
        hit_rate_drop=args.hit_rate_drop,
        min_seconds=args.min_seconds,
        transform_min_seconds=args.transform_min_seconds,
    )
    checked = len(set(baseline["phases"]) & set(current["phases"]))
    if regressions:
        print(
            f"REGRESSION: {len(regressions)} problem(s) vs baseline "
            f"{args.baseline} (git {baseline.get('git_sha', '?')[:12]}):",
            file=sys.stderr,
        )
        for line in regressions:
            print(f"  - {line}", file=sys.stderr)
        return 1
    print(
        f"ok: {checked} phase(s) within tolerance "
        f"(wall {args.tolerance:.0%}, hit-rate {args.hit_rate_drop:.0%} pts)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
