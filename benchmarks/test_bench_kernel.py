"""Substrate micro-benchmarks: the kernel costs underlying every repair.

Not a paper table; included so regressions in the substrate (reduction,
conversion, type checking) are visible independently of the end-to-end
case studies.
"""

import pytest

from repro.kernel import Context, check, nf
from repro.stdlib import make_env
from repro.syntax.parser import parse


@pytest.fixture(scope="module")
def env():
    return make_env(lists=True, vectors=True)


def test_normalize_arithmetic(benchmark, env):
    term = parse(env, "mul 7 9")

    def run():
        return nf(env, term)

    benchmark(run)


def test_normalize_list_pipeline(benchmark, env):
    term = parse(
        env,
        "rev nat (app nat (cons nat 1 (cons nat 2 (nil nat))) "
        "(cons nat 3 (cons nat 4 (nil nat))))",
    )

    def run():
        return nf(env, term)

    benchmark(run)


def test_typecheck_rev_app_distr(benchmark, env):
    decl = env.constant("rev_app_distr")

    def run():
        check(env, Context.empty(), decl.body, decl.type)

    benchmark(run)


def test_build_full_stdlib(benchmark):
    def run():
        return make_env(lists=True, vectors=True, binary=True, bitvectors=True)

    benchmark.pedantic(run, rounds=3, iterations=1)
