"""Write BENCH_server.json: the HTTP front end under concurrent load.

Boots one ``python -m repro.server`` subprocess (4 warm workers, rate
limiting off, a fresh result store) and drives it over real sockets:

Phases (shared schema, :mod:`report_schema`)::

    server/cold       # first repair request: pays the actual repair
    server/load       # >= 200 concurrent clients of cached repair
    server/sessions   # concurrent named-session command round trips
    server/async      # 202 + poll round trip through the job queue

``server/load`` is the tentpole measurement: ``--clients`` (default
200) threads each issue ``--requests-per-client`` (default 3) repair
POSTs against the 4-worker pool; per-request latencies feed a
:class:`repro.obs.Histogram` whose interpolated p50/p95/p99 land in the
phase entry, alongside throughput.  Three gates fail the bench outright
rather than writing a report:

* **zero dropped-without-429** — every request must receive an HTTP
  response; transport errors (connection refused/reset, short reads)
  are drops, and the only non-200 statuses tolerated are 429/503 with
  the structured JSON error body and a ``Retry-After`` header;
* **digest parity** — the ``result_digest`` served over HTTP must be
  byte-identical to a direct in-process scheduler run of the same
  manifest (the service suite ties that to the ``Repair`` vernacular,
  so the chain reaches the semantics);
* **cache coherence** — under load every repair must be served from
  the store (``cached``), proving the shared pool + store tier behind
  the server is doing the work, not per-request recomputation.

Wall-time regressions are caught by CI diffing this report against
``baselines/BENCH_server.json`` with ``check_regression.py
--require-phase 'server/*'``.

Usage::

    PYTHONPATH=src python benchmarks/bench_server_report.py \
        [OUTPUT.json] [--clients 200] [--requests-per-client 3]
"""

from __future__ import annotations

import argparse
import json
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from report_schema import make_report, write_report

from repro.obs import Histogram

QUICKSTART_SPEC = {
    "name": "quickstart/rev_app_distr",
    "setup": "repro.service.cases:quickstart_env",
    "target": "rev_app_distr",
    "config": {"kind": "auto", "a": "list", "b": "New.list"},
    "old": ["list"],
    "rename": {"kind": "prefix", "value": "New."},
}

REPAIR_MANIFEST = {"batch": "bench-server", "jobs": [QUICKSTART_SPEC]}

#: Statuses that count as *served* under load; anything else (or a
#: transport error) is a dropped request and fails the bench.
SHED_STATUSES = (429, 503)


class Dropped(Exception):
    """A request the server failed to answer with an HTTP response."""


def _call(
    port: int,
    method: str,
    path: str,
    body: Optional[Dict[str, Any]] = None,
    timeout: float = 120.0,
) -> Tuple[int, Dict[str, Any], Dict[str, str]]:
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read()), dict(err.headers)
    except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
        raise Dropped(f"{method} {path}: {exc}") from exc


def _spawn_server(store_dir: str, workers: int) -> Tuple[Any, int]:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server",
            "--port",
            "0",
            "--workers",
            str(workers),
            "--store",
            store_dir,
            "--rate",
            "0",
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        start_new_session=True,
    )
    assert process.stdout is not None
    line = process.stdout.readline()
    try:
        info = json.loads(line)
        assert info["event"] == "listening"
    except Exception:
        process.kill()
        raise RuntimeError(f"server did not come up, got {line!r}")
    return process, int(info["port"])


def _percentile_entry(
    hist: Histogram, wall: float, count: int, workers: int
) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "wall_time_s": round(wall, 6),
        "count": count,
        "workers": workers,
        "throughput_rps": round(count / max(wall, 1e-9), 2),
    }
    for name, value in hist.percentiles().items():
        entry[f"latency_{name}_s"] = value
    return entry


def _drive_load(
    port: int, clients: int, per_client: int
) -> Tuple[Histogram, float, Dict[int, int], List[str]]:
    """``clients`` threads, ``per_client`` repair POSTs each.

    Returns the latency histogram, the total wall time, a status-code
    tally, and every drop/shed protocol violation seen.
    """
    hist = Histogram()
    statuses: Dict[int, int] = {}
    problems: List[str] = []
    lock = threading.Lock()
    start_gate = threading.Event()

    def client(index: int) -> None:
        start_gate.wait()
        for _ in range(per_client):
            began = time.monotonic()
            try:
                status, payload, headers = _call(
                    port, "POST", "/v1/repair", REPAIR_MANIFEST
                )
            except Dropped as exc:
                with lock:
                    problems.append(str(exc))
                continue
            hist.observe(time.monotonic() - began)
            with lock:
                statuses[status] = statuses.get(status, 0) + 1
                if status in SHED_STATUSES:
                    lowered = {k.lower() for k in headers}
                    if "retry-after" not in lowered:
                        problems.append(
                            f"shed response {status} without Retry-After"
                        )
                elif status != 200:
                    problems.append(f"unexpected status {status}: {payload}")
                elif payload["counts"] != {"cached": 1}:
                    problems.append(
                        f"load request recomputed instead of cache hit: "
                        f"{payload['counts']}"
                    )

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    began = time.monotonic()
    start_gate.set()
    for thread in threads:
        thread.join(timeout=600)
    wall = time.monotonic() - began
    return hist, wall, statuses, problems


def _drive_sessions(port: int, sessions: int) -> Tuple[Histogram, float]:
    """Concurrent named sessions: create, one Repair command, close."""
    hist = Histogram()
    errors: List[str] = []
    lock = threading.Lock()

    def client(index: int) -> None:
        name = f"bench-{index}"
        began = time.monotonic()
        try:
            status, _, _ = _call(
                port, "POST", "/v1/sessions", {"name": name}
            )
            assert status == 201, f"create {name}: {status}"
            status, payload, _ = _call(
                port,
                "POST",
                f"/v1/sessions/{name}/command",
                {"script": "Repair list New.list in rev_app_distr."},
            )
            assert status == 200, f"command {name}: {status}"
            assert payload["results"][0]["new_names"] == ["rev_app_distr'"]
            status, _, _ = _call(port, "DELETE", f"/v1/sessions/{name}")
            assert status == 200, f"close {name}: {status}"
        except (Dropped, AssertionError) as exc:
            with lock:
                errors.append(str(exc))
            return
        hist.observe(time.monotonic() - began)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(sessions)
    ]
    began = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=600)
    wall = time.monotonic() - began
    if errors:
        raise RuntimeError(
            "session round trips failed: " + "; ".join(errors[:5])
        )
    return hist, wall


def _expected_digest() -> str:
    """The in-process scheduler's digest for the bench manifest."""
    from repro.service import BatchOptions, run_batch
    from repro.service.job import result_digest
    from repro.service.manifest import jobs_from_manifest
    from repro.service.scheduler import inprocess_runner

    jobs = jobs_from_manifest(REPAIR_MANIFEST, where="bench-server")
    report = run_batch(
        jobs, BatchOptions(jobs=1), runner=inprocess_runner()
    )
    outcome = report.outcomes[0]
    if outcome.status != "ok":
        raise RuntimeError(
            f"reference in-process repair failed: {outcome.status}"
        )
    return result_digest(outcome.result)


def build_report(
    clients: int, per_client: int, sessions: int, workers: int
) -> Tuple[dict, Dict[str, Any]]:
    phases: Dict[str, Dict[str, Any]] = {}
    extras: Dict[str, Any] = {}
    expected = _expected_digest()
    with tempfile.TemporaryDirectory(prefix="bench_server_") as tmp:
        process, port = _spawn_server(f"{tmp}/store", workers)
        try:
            # -- server/cold: the one request that pays a real repair.
            began = time.monotonic()
            status, payload, _ = _call(
                port, "POST", "/v1/repair", REPAIR_MANIFEST
            )
            cold_wall = time.monotonic() - began
            if status != 200 or payload["counts"] != {"ok": 1}:
                raise RuntimeError(
                    f"cold repair failed: {status} {payload.get('counts')}"
                )
            served = payload["outcomes"][0]["result_digest"]
            if served != expected:
                raise RuntimeError(
                    "HTTP digest differs from the in-process scheduler "
                    f"run: {served} != {expected}"
                )
            phases["server/cold"] = {
                "wall_time_s": round(cold_wall, 6),
                "count": 1,
                "workers": workers,
            }

            # -- server/load: the concurrent-clients tentpole.
            hist, wall, statuses, problems = _drive_load(
                port, clients, per_client
            )
            if problems:
                raise RuntimeError(
                    f"{len(problems)} dropped/malformed responses under "
                    "load: " + "; ".join(problems[:5])
                )
            total = clients * per_client
            if hist.count != total:
                raise RuntimeError(
                    f"only {hist.count}/{total} requests completed"
                )
            entry = _percentile_entry(hist, wall, total, workers)
            entry["clients"] = clients
            entry["cache_hit_rates"] = {"store": 1.0}
            phases["server/load"] = entry
            extras["load_statuses"] = {
                str(code): count for code, count in sorted(statuses.items())
            }

            # -- server/sessions: concurrent persistent-session traffic.
            shist, swall = _drive_sessions(port, sessions)
            sentry = _percentile_entry(shist, swall, sessions, workers)
            phases["server/sessions"] = sentry

            # -- server/async: the 202 + poll path through the queue.
            began = time.monotonic()
            status, payload, _ = _call(
                port,
                "POST",
                "/v1/repair",
                dict(REPAIR_MANIFEST, **{"async": True}),
            )
            if status != 202:
                raise RuntimeError(f"async submit got {status}")
            poll = payload["poll"]
            deadline = time.monotonic() + 120
            state: Dict[str, Any] = {}
            while time.monotonic() < deadline:
                status, state, _ = _call(port, "GET", poll)
                if state["state"] in ("done", "failed", "cancelled"):
                    break
                time.sleep(0.05)
            if state.get("state") != "done":
                raise RuntimeError(f"async job did not finish: {state}")
            phases["server/async"] = {
                "wall_time_s": round(time.monotonic() - began, 6),
                "count": 1,
                "workers": workers,
            }

            # -- pool stats from the live server, for the report extras.
            status, status_body, _ = _call(port, "GET", "/v1/status")
            if status == 200:
                extras["pool"] = status_body.get("pool", {})
                extras["server"] = {
                    key: status_body.get(key)
                    for key in ("requests_total", "sessions", "queue")
                    if key in status_body
                }
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=45)
            except subprocess.TimeoutExpired:
                process.kill()
    extras["digest"] = expected
    report = make_report("server", phases, **extras)
    return report, extras


def print_summary(report: dict) -> None:
    for name in sorted(report["phases"]):
        entry = report["phases"][name]
        line = f"{name:<16} {entry['wall_time_s']:8.4f}s  x{entry['count']}"
        if "throughput_rps" in entry:
            line += (
                f"  {entry['throughput_rps']:8.1f} req/s"
                f"  p50={entry['latency_p50_s'] * 1000:.1f}ms"
                f"  p95={entry['latency_p95_s'] * 1000:.1f}ms"
                f"  p99={entry['latency_p99_s'] * 1000:.1f}ms"
            )
        print(line)
    statuses = report.get("load_statuses")
    if statuses:
        print(
            "load statuses: "
            + ", ".join(f"{code}={n}" for code, n in statuses.items())
        )


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("output", nargs="?", default="BENCH_server.json")
    parser.add_argument(
        "--clients",
        type=int,
        default=200,
        help="concurrent load clients (default: 200)",
    )
    parser.add_argument(
        "--requests-per-client",
        type=int,
        default=3,
        help="repair POSTs per client (default: 3)",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=16,
        help="concurrent named-session round trips (default: 16)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=4,
        help="server warm-worker pool width (default: 4)",
    )
    args = parser.parse_args(argv[1:])
    try:
        report, _ = build_report(
            args.clients, args.requests_per_client, args.sessions, args.workers
        )
        write_report(args.output, report)
    except Exception as exc:
        print(f"bench_server_report: {exc}", file=sys.stderr)
        return 1
    print_summary(report)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
