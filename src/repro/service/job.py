"""The job model: content-addressed repair jobs.

A :class:`RepairJob` names everything a worker needs to redo one repair
from scratch — how to rebuild the environment (a dotted reference to a
builder, the "serialized module script"), which configuration to use,
which constant to repair, and how to name the results.  Its
:attr:`~RepairJob.key` is a content address: a SHA-256 over the job's
identity fields *including the environment fingerprint*, so editing the
development (or retargeting the job) changes the key and invalidates
exactly the affected cone of the persistent store, while re-running an
unchanged batch is pure cache hits.

Two fingerprint flavours cover the two ways the engine is driven:

* :func:`fingerprint_source` — for manifest jobs, a hash of the dotted
  reference plus the source file of the module it lives in.  The worker
  rebuilds the environment by importing that module, so its source is
  the job's environment "script"; editing it invalidates the jobs that
  use it.  (Edits to modules it imports are *not* tracked — pass
  ``refresh`` to the scheduler to force recomputation.)
* :func:`fingerprint_env` — for live batches (the ``Repair Batch``
  vernacular command), a structural hash of the environment contents in
  declaration order.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..kernel.env import Environment
from ..kernel.inductive import InductiveDecl
from ..kernel.pretty import pretty

#: Version of the job-identity and store-record layout.  Bumping it
#: invalidates every persisted result at once.
SCHEMA_VERSION = 1

#: Setup sentinel for jobs over a live in-session environment (these are
#: never executed by subprocess workers).
LIVE_SETUP = "<live>"

# -- Per-job outcome taxonomy ------------------------------------------------

STATUS_OK = "ok"
STATUS_CACHED = "cached"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
STATUS_SKIPPED = "skipped-dependency"
STATUS_SKIPPED_UNAFFECTED = "skipped-unaffected"

#: Every status :func:`repro.service.scheduler.run_batch` can report.
STATUSES = (
    STATUS_OK,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_TIMEOUT,
    STATUS_SKIPPED,
    STATUS_SKIPPED_UNAFFECTED,
)


class JobError(Exception):
    """Raised for malformed job specifications."""


#: Result-record fields that legitimately vary between runs of the same
#: job: timings, cache-counter movements, and which boot path built the
#: environment.  Everything else — the repaired term, its type, the
#: replayed definitions, the script, the analysis — must be identical
#: run to run, which :func:`result_digest` makes checkable.
VOLATILE_RESULT_KEYS = (
    "wall_time_s",
    "kernel_delta",
    "env_boot",
    "schema_version",
)


def result_digest(result: Dict[str, Any]) -> str:
    """SHA-256 over a result record's *stable* fields (canonical JSON).

    Two runs of one job must produce the same digest regardless of
    wall time, cache weather, or whether the worker booted from a
    snapshot — the scratch-vs-snapshot byte-identity gate compares
    these.
    """
    stable = {
        key: value
        for key, value in result.items()
        if key not in VOLATILE_RESULT_KEYS
    }
    canonical = json.dumps(
        stable, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Config-spec kinds understood by :func:`repro.service.worker.build_config`.
CONFIG_KINDS = ("auto", "dotted", "live")

#: Rename-spec kinds understood by :func:`repro.service.worker.make_rename`.
RENAME_KINDS = ("prefix", "suffix", "map", "dotted")


def _validate_config(spec: Dict[str, Any], where: str) -> None:
    kind = spec.get("kind")
    if kind not in CONFIG_KINDS:
        raise JobError(f"{where}: unknown config kind {kind!r}")
    if kind == "auto" and not (spec.get("a") and spec.get("b")):
        raise JobError(f"{where}: auto config needs 'a' and 'b' type names")
    if kind == "dotted" and not spec.get("ref"):
        raise JobError(f"{where}: dotted config needs a 'ref'")


def _validate_rename(spec: Optional[Dict[str, Any]], where: str) -> None:
    if spec is None:
        return
    kind = spec.get("kind")
    if kind not in RENAME_KINDS:
        raise JobError(f"{where}: unknown rename kind {kind!r}")
    if kind in ("prefix", "suffix") and not isinstance(
        spec.get("value"), str
    ):
        raise JobError(f"{where}: rename {kind} needs a string 'value'")
    if kind == "map" and not isinstance(spec.get("map"), dict):
        raise JobError(f"{where}: rename map needs a 'map' object")
    if kind == "dotted" and not spec.get("ref"):
        raise JobError(f"{where}: rename dotted needs a 'ref'")


@dataclass(frozen=True, eq=False)
class RepairJob:
    """One content-addressed repair: rebuild, configure, repair, name.

    ``eq=False``: jobs hold dict specs, so identity (not structure) is
    the comparison — schedulers track jobs by ``name`` and ``key``.
    """

    #: Unique (per batch) human-readable name, e.g. ``quickstart/rev``.
    name: str
    #: Dotted reference ``pkg.mod:fn`` to a zero-argument environment
    #: builder, or :data:`LIVE_SETUP` for in-session batches.
    setup: str
    #: The constant to repair.
    target: str
    #: Configuration spec: ``{"kind": "auto", "a": .., "b": ..}``,
    #: ``{"kind": "dotted", "ref": "pkg.mod:fn"}``, or ``{"kind": "live"}``.
    config: Dict[str, Any]
    #: The old globals the repair must eliminate.
    old: Tuple[str, ...]
    #: Explicit name for the repaired target (otherwise ``rename``).
    new_name: Optional[str] = None
    #: Rename spec for dependencies (and the target when ``new_name`` is
    #: unset): ``{"kind": "prefix"|"suffix", "value": ..}``,
    #: ``{"kind": "map", "map": {..}, "prefix": ..}``, or
    #: ``{"kind": "dotted", "ref": ..}``.
    rename: Optional[Dict[str, Any]] = None
    #: Constants the repair session must leave alone (``skip`` set).
    skip: Tuple[str, ...] = ()
    #: Names of jobs (same batch) that must complete first.
    after: Tuple[str, ...] = ()
    #: Content hash of the environment this job runs in.
    env_fingerprint: str = ""
    #: Cached job key (computed on first access).
    _key: Optional[str] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise JobError("job needs a non-empty name")
        if not self.target:
            raise JobError(f"job {self.name!r}: missing target")
        if not self.setup:
            raise JobError(f"job {self.name!r}: missing setup reference")
        if not self.old:
            raise JobError(f"job {self.name!r}: missing old globals")
        _validate_config(self.config, f"job {self.name!r}")
        _validate_rename(self.rename, f"job {self.name!r}")

    # -- Content addressing ------------------------------------------------

    def identity(self) -> Dict[str, Any]:
        """The fields that determine this job's output (key inputs).

        ``name`` and ``after`` are batch bookkeeping, not identity: the
        same repair scheduled under a different batch layout must hit
        the same store entry.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "setup": self.setup,
            "target": self.target,
            "config": self.config,
            "old": list(self.old),
            "new_name": self.new_name,
            "rename": self.rename,
            "skip": list(self.skip),
            "env_fingerprint": self.env_fingerprint,
        }

    @property
    def key(self) -> str:
        """SHA-256 content address over :meth:`identity` (canonical JSON)."""
        cached = self._key
        if cached is None:
            canonical = json.dumps(
                self.identity(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_key", cached)
        return cached

    def payload(self) -> Dict[str, Any]:
        """The JSON-serializable worker input for this job."""
        out = self.identity()
        out["name"] = self.name
        out["key"] = self.key
        return out

    @staticmethod
    def from_dict(raw: Dict[str, Any], where: str = "job") -> "RepairJob":
        """Build a job from a manifest entry, with helpful errors."""
        if not isinstance(raw, dict):
            raise JobError(f"{where}: job entry must be an object")
        unknown = set(raw) - {
            "name",
            "setup",
            "target",
            "config",
            "old",
            "new_name",
            "rename",
            "skip",
            "after",
            "env_fingerprint",
        }
        if unknown:
            raise JobError(
                f"{where}: unknown job field(s) {sorted(unknown)!r}"
            )
        old = raw.get("old")
        if not isinstance(old, (list, tuple)) or not all(
            isinstance(n, str) for n in old or ()
        ):
            raise JobError(f"{where}: 'old' must be a list of names")
        after = raw.get("after", ())
        if not isinstance(after, (list, tuple)):
            raise JobError(f"{where}: 'after' must be a list of job names")
        skip = raw.get("skip", ())
        if not isinstance(skip, (list, tuple)) or not all(
            isinstance(n, str) for n in skip
        ):
            raise JobError(f"{where}: 'skip' must be a list of names")
        config = raw.get("config")
        if not isinstance(config, dict):
            raise JobError(f"{where}: 'config' must be an object")
        return RepairJob(
            name=str(raw.get("name", "")),
            setup=str(raw.get("setup", "")),
            target=str(raw.get("target", "")),
            config=config,
            old=tuple(old),
            new_name=raw.get("new_name"),
            rename=raw.get("rename"),
            skip=tuple(skip),
            after=tuple(after),
            env_fingerprint=str(raw.get("env_fingerprint", "")),
        )


# -- Environment fingerprints -------------------------------------------------


def fingerprint_source(ref: str) -> str:
    """Hash of a dotted setup reference plus its module's source bytes.

    The module named on the left of ``pkg.mod:fn`` is the job's
    environment script; its file contents (plus the reference itself)
    are the fingerprint, so editing the module invalidates every job
    that builds its environment through it.
    """
    module_name = ref.split(":", 1)[0]
    digest = hashlib.sha256()
    digest.update(ref.encode("utf-8"))
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError) as exc:
        raise JobError(f"setup module {module_name!r} not found: {exc}")
    if spec is None or spec.origin is None:
        raise JobError(f"setup module {module_name!r} has no source file")
    with open(spec.origin, "rb") as handle:
        digest.update(handle.read())
    return digest.hexdigest()


def _inductive_lines(decl: InductiveDecl) -> str:
    parts = [f"inductive {decl.name} sort={decl.sort!r}"]
    for name, ty in tuple(decl.params) + tuple(decl.indices):
        parts.append(f"  tele {name} : {pretty(ty)}")
    for ctor in decl.constructors:
        args = " ".join(
            f"({name} : {pretty(ty)})" for name, ty in ctor.args
        )
        indices = " ".join(pretty(t) for t in ctor.result_indices)
        parts.append(f"  ctor {ctor.name} {args} -> {indices}")
    return "\n".join(parts)


def fingerprint_env(env: Environment) -> str:
    """Structural hash of an environment's contents, declaration order
    included — the content address for live (in-session) batches."""
    digest = hashlib.sha256()
    for name in env.declaration_order():
        if env.has_inductive(name):
            digest.update(_inductive_lines(env.inductive(name)).encode())
        elif env.has_constant(name):
            decl = env.constant(name)
            body = pretty(decl.body) if decl.body is not None else "<none>"
            line = (
                f"constant {name} : {pretty(decl.type)} := {body} "
                f"opaque={decl.opaque}"
            )
            digest.update(line.encode())
        digest.update(b"\n")
    return digest.hexdigest()
