"""The dependency-aware batch scheduler and worker pool.

:func:`run_batch` turns a list of :class:`~repro.service.job.RepairJob`
into per-job outcomes:

1. jobs are validated and topologically ordered over their ``after``
   edges (cycles and dangling references are rejected up front);
2. when a job becomes ready, the persistent store is consulted — a hit
   completes it as ``cached`` without any repair work;
3. misses are dispatched to the worker pool — a
   :class:`concurrent.futures.ThreadPoolExecutor` whose threads drive
   either the persistent warm-worker pool
   (:class:`~repro.service.pool.WorkerPool`, the default for
   ``--jobs N`` / ``$REPRO_JOBS`` above 1: long-lived workers that boot
   once and keep their environments resident) or, under ``--no-pool``,
   one hermetic worker *subprocess* per attempt; either way a crashing
   worker takes down only its own job, never the pool (the reason this
   is not a ``ProcessPoolExecutor``: one abrupt child death there
   poisons every pending future with ``BrokenProcessPool``);
   ``--jobs 1`` uses a deterministic in-process executor instead;
4. crashes and injected errors are retried with bounded backoff;
   timeouts are reported as ``timeout``; deterministic repair failures
   as ``failed``; and every job downstream of a non-ok job is marked
   ``skipped-dependency`` without being dispatched.

The batch is traced as a ``service_batch`` span carrying queue-depth,
worker-utilization, and store hit-rate gauges; the in-process executor
additionally nests a ``service_job`` span per attempt.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..obs import span
from .faults import CRASH_EXIT_CODE, FaultPlan, JobTimeout, WorkerCrash
from .job import (
    SCHEMA_VERSION,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_SKIPPED_UNAFFECTED,
    STATUS_TIMEOUT,
    JobError,
    RepairJob,
    result_digest,
)
from .pool import (
    WorkerPool,
    default_pool,
    kill_process_group,
    register_solo_worker,
    worker_environ,
)
from .proto import last_frame
from .store import ResultStore
from .graph import toposort

if TYPE_CHECKING:  # pragma: no cover — type-only import (avoids a cycle)
    from .planner import BatchImpact

#: Environment variable giving the default worker-pool width.
JOBS_ENV_VAR = "REPRO_JOBS"

#: A runner executes one attempt: (payload, attempt, timeout_s) -> record.
Runner = Callable[[Dict[str, Any], int, Optional[float]], Dict[str, Any]]


def default_jobs() -> int:
    """``$REPRO_JOBS`` when set to a positive int, else 1."""
    raw = os.environ.get(JOBS_ENV_VAR, "")
    try:
        jobs = int(raw)
    except ValueError:
        return 1
    return jobs if jobs >= 1 else 1


@dataclass
class BatchOptions:
    """Knobs for one batch run."""

    jobs: int = 0  # 0 -> default_jobs()
    timeout_s: Optional[float] = None
    retries: int = 2
    backoff_s: float = 0.05
    refresh: bool = False
    store: Optional[ResultStore] = None
    fault_plan: Optional[FaultPlan] = None
    #: Snapshot pack for warm-starting workers (see
    #: :mod:`repro.kernel.snapshot`); None disables snapshot boots.
    snapshot: Optional[str] = None
    #: Change-impact plans for the batch (see
    #: :mod:`repro.service.planner`); when set, jobs whose targets the
    #: plan certifies ``unaffected`` complete as ``skipped-unaffected``
    #: without dispatching a worker.
    impact: Optional["BatchImpact"] = None
    #: Serve parallel batches from the persistent warm-worker pool
    #: (:mod:`repro.service.pool`) instead of one subprocess per
    #: attempt.  None resolves from ``$REPRO_POOL`` (default on); only
    #: consulted when ``jobs > 1`` and no explicit runner is passed.
    pool: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.jobs <= 0:
            self.jobs = default_jobs()
        if self.pool is None:
            self.pool = default_pool()


@dataclass
class JobOutcome:
    """What happened to one job."""

    job: RepairJob
    status: str
    attempts: int = 0
    wall_time_s: float = 0.0
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Evidence for an impact skip: verdict, RA code, evidence digest,
    #: and the digest of the plan that licensed it.
    impact: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status in (
            STATUS_OK,
            STATUS_CACHED,
            STATUS_SKIPPED_UNAFFECTED,
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.job.name,
            "key": self.job.key,
            "target": self.job.target,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_s": round(self.wall_time_s, 6),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.impact is not None:
            out["impact"] = self.impact
        if self.result is not None:
            out["new_name"] = self.result.get("new_name")
            out["result_digest"] = result_digest(self.result)
            boot = self.result.get("env_boot")
            if boot is not None:
                out["env_boot"] = boot
        return out


@dataclass
class BatchReport:
    """Per-job outcomes plus batch-level accounting."""

    batch: str
    jobs: int
    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_time_s: float = 0.0
    store_hits: int = 0
    store_misses: int = 0
    max_queue_depth: int = 0
    worker_utilization: float = 0.0
    #: Warm-pool lifecycle counters (:meth:`WorkerPool.stats`), present
    #: only when the batch ran on the pool.
    pool: Optional[Dict[str, Any]] = None

    @property
    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    @property
    def cache_hit_rate(self) -> float:
        total = self.store_hits + self.store_misses
        return self.store_hits / total if total else 0.0

    def outcome(self, name: str) -> JobOutcome:
        for outcome in self.outcomes:
            if outcome.job.name == name:
                return outcome
        raise KeyError(name)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "batch": self.batch,
            "jobs": self.jobs,
            "wall_time_s": round(self.wall_time_s, 6),
            "counts": self.counts,
            "store": {
                "hits": self.store_hits,
                "misses": self.store_misses,
                "hit_rate": round(self.cache_hit_rate, 4),
            },
            "max_queue_depth": self.max_queue_depth,
            "worker_utilization": round(self.worker_utilization, 4),
            "outcomes": [outcome.to_dict() for outcome in self.outcomes],
        }
        if self.pool is not None:
            out["pool"] = self.pool
        return out

    def render_table(self) -> str:
        """The human-readable per-job summary the CLI prints."""
        width = max([len(o.job.name) for o in self.outcomes] + [4])
        lines = [
            f"{'job':<{width}}  {'status':<18} {'tries':>5} {'wall(s)':>8}"
        ]
        for o in self.outcomes:
            lines.append(
                f"{o.job.name:<{width}}  {o.status:<18} "
                f"{o.attempts:>5} {o.wall_time_s:>8.3f}"
            )
        counts = ", ".join(
            f"{n} {status}" for status, n in sorted(self.counts.items())
        )
        lines.append(
            f"batch {self.batch!r}: {len(self.outcomes)} job(s) — {counts}; "
            f"wall {self.wall_time_s:.3f}s, workers={self.jobs}, "
            f"store {self.store_hits} hit(s) / {self.store_misses} miss(es)"
        )
        if self.pool is not None:
            lines.append(
                f"pool: {self.pool.get('spawned', 0)} worker(s) spawned, "
                f"{self.pool.get('warm_jobs', 0)}/{self.pool.get('jobs', 0)} "
                f"job(s) warm (reuse {self.pool.get('reuse_rate', 0.0):.0%})"
            )
        return "\n".join(lines)


# -- Executors ----------------------------------------------------------------


@contextmanager
def _job_alarm(timeout_s: Optional[float]) -> Iterator[None]:
    """Raise :class:`JobTimeout` after ``timeout_s`` (POSIX, main thread).

    ``SIGALRM`` can only be armed on the main thread of a Unix process.
    When a timeout is requested somewhere it cannot be honoured (a
    non-main thread, or a platform without ``SIGALRM``), the job runs
    without one — with a :class:`RuntimeWarning`, because a silently
    ignored timeout is how hung jobs stall whole batches.
    """
    import signal
    import threading

    wanted = timeout_s is not None and timeout_s > 0
    usable = (
        wanted
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        if wanted:
            warnings.warn(
                "per-job timeout requested but SIGALRM is unavailable "
                "here (non-main thread or non-POSIX); running without "
                "a timeout",
                RuntimeWarning,
                stacklevel=3,
            )
        yield
        return

    def _on_alarm(signum: int, frame: Any) -> None:
        raise JobTimeout(f"job exceeded {timeout_s}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s or 0))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def inprocess_runner(
    fault_plan: Optional[FaultPlan] = None,
    snapshot: Optional[str] = None,
) -> Runner:
    """The deterministic in-process executor (``--jobs 1`` and tests)."""
    from .worker import run_job

    def run(
        payload: Dict[str, Any], attempt: int, timeout_s: Optional[float]
    ) -> Dict[str, Any]:
        with span(
            "service_job",
            category="service",
            job=payload.get("name", payload["target"]),
            attempt=attempt,
        ):
            with _job_alarm(timeout_s):
                return run_job(
                    payload,
                    attempt,
                    fault_plan,
                    in_process=True,
                    snapshot=snapshot,
                )

    return run


def subprocess_runner(
    fault_plan: Optional[FaultPlan] = None,
    snapshot: Optional[str] = None,
) -> Runner:
    """One hermetic worker subprocess per attempt.

    Crash isolation is the point: a worker that dies (injected crash,
    OOM kill, segfault) yields :class:`WorkerCrash` for *its* job only.
    A worker that outlives the per-job timeout has its whole process
    group killed (workers run ``start_new_session``, so children they
    spawned die with them) and is reported as :class:`JobTimeout`.

    The record comes back as the last frame of the worker's stdout (see
    :mod:`repro.service.proto`); stray prints — even ``{``-prefixed
    ones — are protocol noise, never mistaken for the result.
    """
    environ = worker_environ(fault_plan, snapshot)

    def run(
        payload: Dict[str, Any], attempt: int, timeout_s: Optional[float]
    ) -> Dict[str, Any]:
        envelope: Dict[str, Any] = {"payload": payload, "attempt": attempt}
        if snapshot is not None:
            envelope["snapshot"] = snapshot
        request = json.dumps(envelope)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.service.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=environ,
            start_new_session=True,
        )
        register_solo_worker(process)
        try:
            stdout, stderr = process.communicate(
                request, timeout=timeout_s
            )
        except subprocess.TimeoutExpired:
            kill_process_group(process)
            process.communicate()
            raise JobTimeout(
                f"worker for {payload['target']!r} exceeded {timeout_s}s"
            ) from None
        if process.returncode != 0:
            tail = (stderr or "").strip().splitlines()[-3:]
            detail = "; ".join(tail) if tail else "no stderr"
            kind = (
                "crashed"
                if process.returncode == CRASH_EXIT_CODE
                else f"exited {process.returncode}"
            )
            raise WorkerCrash(
                f"worker for {payload['target']!r} {kind}: {detail}"
            )
        record = last_frame(stdout or "")
        if record is not None:
            return record
        raise WorkerCrash(
            f"worker for {payload['target']!r} produced no result record"
        )

    return run


# -- The scheduler ------------------------------------------------------------


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class _BatchState:
    """Mutable bookkeeping for one run: readiness, outcomes, cascades."""

    def __init__(self, jobs: List[RepairJob]) -> None:
        names = [job.name for job in jobs]
        if len(set(names)) != len(names):
            dupes = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise JobError(f"duplicate job name(s): {dupes}")
        edges = {job.name: tuple(job.after) for job in jobs}
        try:
            toposort(names, edges)
        except ValueError as exc:
            raise JobError(str(exc)) from exc
        self.jobs = {job.name: job for job in jobs}
        self.order = names
        self.pending: Dict[str, set] = {
            job.name: set(job.after) for job in jobs
        }
        self.dependents: Dict[str, List[str]] = {name: [] for name in names}
        for job in jobs:
            for dep in job.after:
                self.dependents[dep].append(job.name)
        self.outcomes: Dict[str, JobOutcome] = {}
        self.ready: Deque[RepairJob] = deque(
            job for job in jobs if not job.after
        )

    def complete(self, outcome: JobOutcome) -> None:
        """Record an outcome; unblock or cascade-skip the dependents."""
        name = outcome.job.name
        self.outcomes[name] = outcome
        if outcome.ok:
            for dependent in self.dependents[name]:
                waiting = self.pending[dependent]
                waiting.discard(name)
                if not waiting and dependent not in self.outcomes:
                    self.ready.append(self.jobs[dependent])
        else:
            self._skip_dependents(name)

    def _skip_dependents(self, name: str) -> None:
        for dependent in self.dependents[name]:
            if dependent in self.outcomes:
                continue
            self.outcomes[dependent] = JobOutcome(
                job=self.jobs[dependent],
                status=STATUS_SKIPPED,
                error=f"dependency {name!r} did not complete",
            )
            self._skip_dependents(dependent)

    @property
    def done(self) -> bool:
        return len(self.outcomes) == len(self.jobs)

    def ordered_outcomes(self) -> List[JobOutcome]:
        return [self.outcomes[name] for name in self.order]


@contextmanager
def _pool_guard(pool: Optional[WorkerPool]) -> Iterator[None]:
    """Drain a batch-owned worker pool however the batch exits."""
    try:
        yield
    finally:
        if pool is not None:
            pool.shutdown()


def _store_record(job: RepairJob, result: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "key": job.key,
        "job": job.payload(),
        "result": result,
        "created_at": _utc_now(),
    }


def run_batch(
    jobs: List[RepairJob],
    options: Optional[BatchOptions] = None,
    runner: Optional[Runner] = None,
    batch: str = "batch",
    on_cached: Optional[Callable[[RepairJob, Dict[str, Any]], None]] = None,
) -> BatchReport:
    """Schedule ``jobs`` over the worker pool; return per-job outcomes.

    ``runner`` defaults, when ``options.jobs > 1``, to the persistent
    warm-worker pool (``options.pool``, i.e. ``--pool`` / ``$REPRO_POOL``)
    or the per-attempt subprocess runner (``--no-pool``); serial batches
    use the deterministic in-process executor.  A pool created here is
    owned here: it is drained before the report is returned, and its
    lifecycle counters land in ``report.pool``.  ``on_cached`` is
    invoked for every store hit (live batches use it to replay the
    cached definitions into the session environment).
    """
    options = options or BatchOptions()
    worker_pool: Optional[WorkerPool] = None
    if runner is None:
        if options.jobs > 1 and options.pool:
            worker_pool = WorkerPool(
                options.jobs, options.fault_plan, options.snapshot
            )
            runner = worker_pool.runner()
        elif options.jobs > 1:
            runner = subprocess_runner(options.fault_plan, options.snapshot)
        else:
            runner = inprocess_runner(options.fault_plan, options.snapshot)
    state = _BatchState(list(jobs))
    store = options.store
    report = BatchReport(batch=batch, jobs=options.jobs)
    busy_s = 0.0
    started = time.perf_counter()

    def resolve_impact(job: RepairJob) -> bool:
        """Skip a job the plan certifies ``unaffected`` (with evidence)."""
        if options.impact is None:
            return False
        evidence = options.impact.skippable(job)
        if evidence is None:
            return False
        state.complete(
            JobOutcome(
                job=job,
                status=STATUS_SKIPPED_UNAFFECTED,
                attempts=0,
                impact=evidence,
            )
        )
        return True

    def resolve_from_store(job: RepairJob) -> bool:
        if store is None or options.refresh:
            return False
        record = store.get(job.key)
        if record is None:
            return False
        result = record["result"]
        if on_cached is not None:
            try:
                on_cached(job, result)
            except Exception:  # noqa: BLE001 — replay failed: recompute
                return False
        state.complete(
            JobOutcome(
                job=job,
                status=STATUS_CACHED,
                attempts=0,
                result=result,
            )
        )
        return True

    def finish_attempt(
        job: RepairJob,
        attempt: int,
        wall: float,
        record: Optional[Dict[str, Any]],
        error: Optional[BaseException],
    ) -> Optional[int]:
        """Complete the job or return the next attempt number."""
        nonlocal busy_s
        busy_s += wall
        if error is not None:
            if isinstance(error, JobTimeout):
                state.complete(
                    JobOutcome(
                        job=job,
                        status=STATUS_TIMEOUT,
                        attempts=attempt + 1,
                        wall_time_s=wall,
                        error=str(error),
                    )
                )
                return None
            retryable = isinstance(error, WorkerCrash)
            if retryable and attempt < options.retries:
                return attempt + 1
            state.complete(
                JobOutcome(
                    job=job,
                    status=STATUS_FAILED,
                    attempts=attempt + 1,
                    wall_time_s=wall,
                    error=f"{type(error).__name__}: {error}",
                )
            )
            return None
        assert record is not None
        if record.get("status") == STATUS_OK:
            if store is not None:
                store.put(job.key, _store_record(job, record))
            state.complete(
                JobOutcome(
                    job=job,
                    status=STATUS_OK,
                    attempts=attempt + 1,
                    wall_time_s=wall,
                    result=record,
                )
            )
            return None
        if record.get("retryable") and attempt < options.retries:
            return attempt + 1
        state.complete(
            JobOutcome(
                job=job,
                status=STATUS_FAILED,
                attempts=attempt + 1,
                wall_time_s=wall,
                error=record.get("error", "worker reported failure"),
            )
        )
        return None

    def backoff(attempt: int) -> None:
        if options.backoff_s > 0 and attempt > 0:
            time.sleep(options.backoff_s * attempt)

    # Pin every key this batch may read or write: a bounded store being
    # pruned by a concurrent batch must never evict a record between
    # this batch's cache probe and its use of the result.
    pin_guard = (
        store.pin([job.key for job in state.jobs.values()])
        if store is not None
        else nullcontext()
    )
    with _pool_guard(worker_pool), pin_guard, span(
        "service_batch", category="service", batch=batch, jobs=options.jobs
    ) as batch_span:
        if options.jobs <= 1:
            # Deterministic serial loop: ready order is completion order.
            while state.ready:
                job = state.ready.popleft()
                report.max_queue_depth = max(
                    report.max_queue_depth, len(state.ready) + 1
                )
                if resolve_impact(job):
                    continue
                if resolve_from_store(job):
                    continue
                attempt = 0
                while True:
                    backoff(attempt)
                    t0 = time.perf_counter()
                    record: Optional[Dict[str, Any]] = None
                    error: Optional[BaseException] = None
                    try:
                        record = runner(
                            job.payload(), attempt, options.timeout_s
                        )
                    except (JobTimeout, WorkerCrash) as exc:
                        error = exc
                    except Exception as exc:  # noqa: BLE001
                        error = exc
                    next_attempt = finish_attempt(
                        job, attempt, time.perf_counter() - t0, record, error
                    )
                    if next_attempt is None:
                        break
                    attempt = next_attempt
        else:
            in_flight: Dict[Future, Tuple[RepairJob, int, float]] = {}
            retry_queue: Deque[Tuple[RepairJob, int]] = deque()
            with ThreadPoolExecutor(max_workers=options.jobs) as pool:
                while not state.done:
                    # Fill the pool from retries first, then fresh jobs.
                    while (
                        retry_queue or state.ready
                    ) and len(in_flight) < options.jobs:
                        if retry_queue:
                            job, attempt = retry_queue.popleft()
                        else:
                            job = state.ready.popleft()
                            attempt = 0
                            if resolve_impact(job):
                                continue
                            if resolve_from_store(job):
                                continue
                        report.max_queue_depth = max(
                            report.max_queue_depth,
                            len(state.ready)
                            + len(retry_queue)
                            + len(in_flight)
                            + 1,
                        )
                        backoff(attempt)
                        future = pool.submit(
                            runner, job.payload(), attempt, options.timeout_s
                        )
                        in_flight[future] = (
                            job,
                            attempt,
                            time.perf_counter(),
                        )
                    if not in_flight:
                        if state.done:
                            break
                        # Every remaining job resolved via cache/skip.
                        continue
                    done, _ = wait(
                        set(in_flight), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        job, attempt, t0 = in_flight.pop(future)
                        record = None
                        error = None
                        try:
                            record = future.result()
                        except (JobTimeout, WorkerCrash) as exc:
                            error = exc
                        except Exception as exc:  # noqa: BLE001
                            error = exc
                        next_attempt = finish_attempt(
                            job,
                            attempt,
                            time.perf_counter() - t0,
                            record,
                            error,
                        )
                        if next_attempt is not None:
                            retry_queue.append((job, next_attempt))
        if worker_pool is not None:
            # Drain before reading the counters so they are final; the
            # guard's later shutdown is an idempotent no-op.
            worker_pool.shutdown()
            report.pool = worker_pool.stats()
        report.wall_time_s = time.perf_counter() - started
        report.outcomes = state.ordered_outcomes()
        if store is not None:
            report.store_hits = store.hits
            report.store_misses = store.misses
        if report.wall_time_s > 0:
            report.worker_utilization = min(
                busy_s / (options.jobs * report.wall_time_s), 1.0
            )
        batch_span.gauge("jobs_total", float(len(report.outcomes)))
        batch_span.gauge("queue_depth_max", float(report.max_queue_depth))
        batch_span.gauge("worker_utilization", report.worker_utilization)
        batch_span.gauge("store_hit_rate", report.cache_hit_rate)
        if report.pool is not None:
            batch_span.gauge(
                "worker_reuse_rate",
                float(report.pool.get("reuse_rate", 0.0)),
            )
            pool_jobs = int(report.pool.get("jobs", 0))
            if pool_jobs:
                batch_span.gauge(
                    "pool_boots_per_job",
                    float(report.pool.get("env_boots", 0)) / pool_jobs,
                )
    return report
