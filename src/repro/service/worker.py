"""The worker side of the batch engine: one job, hermetically.

A worker rebuilds its environment from the job's serialized module
script (a dotted ``pkg.mod:fn`` reference to an environment builder),
builds the configuration, repairs the target through a fresh
:class:`~repro.core.repair.RepairSession`, and returns a JSON-ready
record: the repaired term and type (pretty-printed), every constant the
session defined along the way (dependencies first — the replay order),
the decompiled tactic script, a static-analysis report over the result,
and the :class:`~repro.kernel.stats.KernelStats` delta the repair cost.

Two entry points share the same implementation:

* :func:`run_job` — called in-process by the deterministic serial
  executor (``--jobs 1`` and tests);
* ``python -m repro.service.worker`` — the one-shot subprocess body,
  reading one JSON payload on stdin and writing one framed JSON record
  (see :mod:`repro.service.proto`) on stdout.  A crash-injected worker
  exits with :data:`~repro.service.faults.CRASH_EXIT_CODE` and no
  record;
* ``python -m repro.service.worker --serve`` — the persistent body the
  warm pool (:mod:`repro.service.pool`) launches: it boots once, then
  serves framed requests off stdin until a ``shutdown`` request or EOF.
  Booted environments stay resident between jobs (see
  :func:`execute_warm`), which is the whole point of the pool.
"""

from __future__ import annotations

import importlib
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.config import ConfigError, Configuration
from ..core.repair import RepairError, RepairSession
from ..kernel.env import EnvError, Environment
from ..kernel.pretty import pretty
from ..kernel.stats import KERNEL_STATS
from ..kernel.term import TermError
from . import faults
from .job import LIVE_SETUP, SCHEMA_VERSION, JobError
from .proto import read_frames, write_frame

#: Environment variable naming a snapshot pack to boot from.
SNAPSHOT_ENV_VAR = "REPRO_SNAPSHOT"

#: Test hook: when set, the worker prints this string to stdout (once
#: before and once after its record) to simulate a noisy worker whose
#: diagnostics interleave with the protocol stream.
NOISE_ENV_VAR = "REPRO_WORKER_NOISE"


def default_snapshot() -> Optional[str]:
    """``$REPRO_SNAPSHOT`` when set and non-empty, else None."""
    return os.environ.get(SNAPSHOT_ENV_VAR) or None


def resolve_ref(ref: str) -> Any:
    """Import a ``pkg.mod:attr`` dotted reference."""
    if ":" not in ref:
        raise JobError(
            f"bad dotted reference {ref!r}: expected 'pkg.mod:attr'"
        )
    module_name, attr = ref.split(":", 1)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise JobError(f"cannot import {module_name!r}: {exc}") from exc
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise JobError(
            f"module {module_name!r} has no attribute {attr!r}"
        ) from exc


def build_environment(setup: str) -> Environment:
    """Rebuild a job's environment from its setup reference."""
    if setup == LIVE_SETUP:
        raise JobError(
            "live jobs carry no environment script; they must be run "
            "through their session's runner, not a worker"
        )
    env = resolve_ref(setup)()
    if not isinstance(env, Environment):
        raise JobError(
            f"setup {setup!r} returned {type(env).__name__}, "
            "not an Environment"
        )
    return env


def boot_environment(
    setup: str, snapshot: Optional[str] = None
) -> Tuple[Environment, str]:
    """Build a job's environment, from a snapshot pack when possible.

    Returns ``(env, boot)`` where ``boot`` is ``"snapshot"`` or
    ``"scratch"``.  The snapshot path is honoured only when the pack
    loads cleanly, carries an entry for ``setup``, *and* that entry's
    fingerprint matches the setup module's current source — any
    mismatch, corruption, or missing file falls back to a scratch boot
    (refuse-don't-crash: a stale or damaged snapshot can cost time,
    never correctness).
    """
    path = snapshot if snapshot is not None else default_snapshot()
    if path:
        from ..kernel.snapshot import SnapshotError, load_snapshot_cached

        try:
            entry = load_snapshot_cached(path).get(setup)
            if entry is not None:
                from .job import fingerprint_source

                if entry.fingerprint == fingerprint_source(setup):
                    return entry.build_env(), "snapshot"
        except (SnapshotError, JobError):
            pass
    return build_environment(setup), "scratch"


def build_config(env: Environment, spec: Dict[str, Any]) -> Configuration:
    """Build the job's configuration from its spec."""
    kind = spec.get("kind")
    if kind == "auto":
        from ..core.search import configure

        mapping = spec.get("mapping")
        return configure(
            env,
            spec["a"],
            spec["b"],
            mapping=tuple(mapping) if mapping else None,
        )
    if kind == "dotted":
        config = resolve_ref(spec["ref"])(env)
        if not isinstance(config, Configuration):
            raise JobError(
                f"config ref {spec['ref']!r} returned "
                f"{type(config).__name__}, not a Configuration"
            )
        return config
    raise JobError(f"cannot build config of kind {kind!r} in a worker")


def make_rename(
    spec: Optional[Dict[str, Any]]
) -> Optional[Callable[[str], str]]:
    """The rename callable for a job's serializable rename spec."""
    if spec is None:
        return None
    kind = spec.get("kind")
    if kind == "prefix":
        prefix = spec["value"]
        return lambda name: f"{prefix}{name}"
    if kind == "suffix":
        suffix = spec["value"]
        return lambda name: f"{name}{suffix}"
    if kind == "map":
        table: Dict[str, str] = dict(spec["map"])
        fallback = spec.get("prefix", "")
        suffix = spec.get("suffix", "'" if not fallback else "")
        return lambda name: table.get(
            name, f"{fallback}{name}{suffix}"
        )
    if kind == "dotted":
        fn = resolve_ref(spec["ref"])
        if not callable(fn):
            raise JobError(f"rename ref {spec['ref']!r} is not callable")
        return fn  # type: ignore[no-any-return]
    raise JobError(f"unknown rename kind {kind!r}")


def _stats_snapshot() -> Dict[str, Any]:
    return KERNEL_STATS.snapshot()

def _stats_delta(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """The JSON-ready counter movement between two snapshots."""
    tables: Dict[str, Dict[str, int]] = {}
    after_tables: Dict[str, Dict[str, int]] = after["tables"]
    before_tables: Dict[str, Dict[str, int]] = before["tables"]
    for name, counts in after_tables.items():
        base = before_tables.get(name, {"hits": 0, "misses": 0})
        hits = counts["hits"] - base["hits"]
        misses = counts["misses"] - base["misses"]
        if hits or misses:
            tables[name] = {"hits": hits, "misses": misses}
    events: Dict[str, int] = {}
    after_events: Dict[str, int] = after["events"]
    before_events: Dict[str, int] = before["events"]
    for name, count in after_events.items():
        delta = count - before_events.get(name, 0)
        if delta:
            events[name] = delta
    return {
        "constructions": after["constructions"] - before["constructions"],
        "intern_hits": after["intern_hits"] - before["intern_hits"],
        "tables": tables,
        "events": events,
    }


def _analysis_report(env: Environment, name: str) -> List[Dict[str, Any]]:
    from ..analysis.scope import check_constant

    return [
        d.to_dict() for d in check_constant(env, env.constant(name))
    ]


def _decompiled(env: Environment, result_name: str, term: Any) -> Optional[str]:
    from ..decompile.decompiler import decompile_to_script, print_script

    try:
        script = decompile_to_script(env, term)
        return print_script(script, name=result_name)
    except Exception:  # noqa: BLE001 — the script is best-effort extra
        return None


def build_record(
    env: Environment,
    session: RepairSession,
    result: Any,
    before: Dict[str, Any],
    started: float,
    exclude: Optional[set] = None,
) -> Dict[str, Any]:
    """The JSON-ready ``ok`` record for one finished repair.

    ``exclude`` filters out old names already accounted for by earlier
    jobs sharing the session (live batches), so ``defined`` lists only
    what *this* job added — dependencies first, the replay order.
    """
    defined = [
        {
            "old": r.old_name,
            "new": r.new_name,
            "term": pretty(r.term),
            "type": pretty(r.type),
        }
        for r in session.results.values()
        if not exclude or r.old_name not in exclude
    ]
    return {
        "status": "ok",
        "new_name": result.new_name,
        "term": pretty(result.term),
        "type": pretty(result.type),
        "script": _decompiled(env, result.new_name, result.term),
        "defined": defined,
        "analysis": _analysis_report(env, result.new_name),
        "kernel_delta": _stats_delta(before, _stats_snapshot()),
        "wall_time_s": round(time.perf_counter() - started, 6),
    }


def execute_job(
    payload: Dict[str, Any], snapshot: Optional[str] = None
) -> Dict[str, Any]:
    """Run one repair job against a freshly built environment."""
    started = time.perf_counter()
    before = _stats_snapshot()
    env, boot = boot_environment(payload["setup"], snapshot)
    config = build_config(env, payload["config"])
    session = RepairSession(
        env,
        config,
        old_globals=tuple(payload["old"]),
        rename=make_rename(payload.get("rename")),
        skip=list(payload.get("skip") or ()) or None,
    )
    result = session.repair_constant(
        payload["target"], new_name=payload.get("new_name")
    )
    record = build_record(env, session, result, before, started)
    record["env_boot"] = boot
    return record


# -- Warm execution (persistent workers) --------------------------------------


@dataclass
class Resident:
    """One booted environment kept alive between jobs of a warm worker."""

    #: The job-claimed source fingerprint this environment was booted
    #: under; a later job claiming a different one means the setup
    #: module changed on disk and this process (whose import graph is
    #: frozen) can no longer rebuild it honestly.
    fingerprint: str
    env: Environment
    #: How the environment was first built (``snapshot``/``scratch``) —
    #: only the boot job reports it; reuse jobs report ``warm``.
    boot: str
    jobs: int = 0


class StaleEnvironment(Exception):
    """A job's env fingerprint no longer matches the resident boot."""


def execute_warm(
    residents: Dict[str, Resident],
    payload: Dict[str, Any],
    snapshot: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one job against a resident environment, booting on first use.

    The environment is checkpointed before the repair and rolled back
    after it (success or failure), so each job observes the pristine
    boot state — byte-identical results to a fresh per-job boot, which
    the digest-parity gates assert.  If the rollback itself refuses
    (the repair performed a destructive mutation the checkpoint cannot
    undo), the resident entry is dropped and the next job re-boots:
    refuse-don't-corrupt.
    """
    setup = payload["setup"]
    claimed = str(payload.get("env_fingerprint", ""))
    entry = residents.get(setup)
    if entry is not None and claimed and entry.fingerprint != claimed:
        raise StaleEnvironment(
            f"setup {setup!r} changed on disk since this worker booted"
        )
    started = time.perf_counter()
    before = _stats_snapshot()
    if entry is None:
        env, boot = boot_environment(setup, snapshot)
        entry = Resident(fingerprint=claimed, env=env, boot=boot)
        residents[setup] = entry
        job_boot = boot
    else:
        job_boot = "warm"
    env = entry.env
    mark = env.checkpoint()
    try:
        config = build_config(env, payload["config"])
        session = RepairSession(
            env,
            config,
            old_globals=tuple(payload["old"]),
            rename=make_rename(payload.get("rename")),
            skip=list(payload.get("skip") or ()) or None,
        )
        result = session.repair_constant(
            payload["target"], new_name=payload.get("new_name")
        )
        record = build_record(env, session, result, before, started)
    finally:
        try:
            env.rollback(mark)
        except EnvError:
            residents.pop(setup, None)
    entry.jobs += 1
    record["env_boot"] = job_boot
    return record


def attempt_job(
    execute: Callable[[], Dict[str, Any]],
    payload: Dict[str, Any],
    attempt: int = 0,
    fault_plan: Optional[faults.FaultPlan] = None,
    in_process: bool = False,
) -> Dict[str, Any]:
    """One attempt at a job: fault hook, then ``execute``, then triage.

    Deterministic repair failures come back ``retryable: false``;
    injected errors come back ``retryable: true`` so the scheduler's
    bounded-retry path is exercised without real nondeterminism.
    Injected crashes kill the process (subprocess workers) or raise
    :class:`~repro.service.faults.WorkerCrash` (in-process executors).
    """
    try:
        faults.inject(payload["target"], attempt, fault_plan, in_process)
        return execute()
    except faults.FaultInjected as exc:
        return {"status": "failed", "error": str(exc), "retryable": True}
    except (faults.WorkerCrash, faults.JobTimeout, StaleEnvironment):
        # Crash/timeout semantics are the scheduler's to handle, and a
        # stale resident environment is the serve loop's (it answers
        # with a ``stale`` frame so the pool retires this worker).
        raise
    except (RepairError, ConfigError, TermError, JobError) as exc:
        return {
            "status": "failed",
            "error": f"{type(exc).__name__}: {exc}",
            "retryable": False,
        }
    except RecursionError:
        raise
    except Exception as exc:  # noqa: BLE001 — a worker never crashes the pool
        return {
            "status": "failed",
            "error": f"unexpected {type(exc).__name__}: {exc}",
            "retryable": False,
        }


def run_job(
    payload: Dict[str, Any],
    attempt: int = 0,
    fault_plan: Optional[faults.FaultPlan] = None,
    in_process: bool = False,
    snapshot: Optional[str] = None,
) -> Dict[str, Any]:
    """One hermetic attempt: rebuild the environment, then repair."""
    return attempt_job(
        lambda: execute_job(payload, snapshot),
        payload,
        attempt,
        fault_plan,
        in_process,
    )


def _emit_noise() -> None:
    """Print the test-hook noise line, if configured (and flush it)."""
    noise = os.environ.get(NOISE_ENV_VAR)
    if noise:
        sys.stdout.write(noise + "\n")
        sys.stdout.flush()


def _emit_record(record: Dict[str, Any]) -> None:
    """Write one framed record to stdout, bracketed by optional noise.

    Noise *after* the frame is the case the old reversed ``{``-line scan
    mis-parsed; the framed protocol shrugs it off.
    """
    _emit_noise()
    sys.stdout.flush()
    write_frame(sys.stdout.buffer, record)
    _emit_noise()


def serve(snapshot: Optional[str] = None) -> int:
    """Persistent worker body: framed requests in, framed replies out.

    Requests (one JSON object per frame on stdin):

    * ``{"op": "job", "payload": .., "attempt": n, "snapshot": ..}`` —
      run one job warm; replies ``{"op": "result", "record": ..}``, or
      ``{"op": "stale", "setup": ..}`` when the payload's env
      fingerprint no longer matches the resident boot (the pool retires
      this worker and redispatches to a fresh one);
    * ``{"op": "ping"}`` — replies ``{"op": "pong", "served": n}``;
    * ``{"op": "shutdown"}`` — replies ``{"op": "bye", "served": n}``
      and exits.  EOF on stdin exits the same way, sans farewell.

    Booted environments stay resident in ``residents`` across jobs (the
    warm path); injected crashes still ``os._exit`` the whole process
    and injected hangs still stall it — the pool's deadline/respawn
    machinery handles both exactly as it would a real fault.
    """
    out = sys.stdout.buffer
    residents: Dict[str, Resident] = {}
    served = 0
    for request in read_frames(sys.stdin.fileno()):
        op = request.get("op")
        if op == "ping":
            write_frame(out, {"op": "pong", "served": served})
            continue
        if op == "shutdown":
            write_frame(out, {"op": "bye", "served": served})
            return 0
        if op != "job":
            write_frame(
                out, {"op": "error", "error": f"unknown op {op!r}"}
            )
            continue
        payload = request.get("payload") or {}
        attempt = int(request.get("attempt", 0))
        job_snapshot = request.get("snapshot") or snapshot
        try:
            record = attempt_job(
                lambda: execute_warm(residents, payload, job_snapshot),
                payload,
                attempt,
                faults.FaultPlan.from_env(),
            )
        except StaleEnvironment:
            write_frame(
                out, {"op": "stale", "setup": payload.get("setup")}
            )
            continue
        record["schema_version"] = SCHEMA_VERSION
        served += 1
        _emit_noise()
        write_frame(out, {"op": "result", "record": record})
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Subprocess body: JSON payload on stdin, framed record on stdout.

    The snapshot to boot from comes from (highest priority first) the
    request envelope's ``snapshot`` field, a ``--snapshot PATH``
    argument, or ``$REPRO_SNAPSHOT``.  With ``--serve``, runs the
    persistent framed loop (:func:`serve`) instead of one job.
    """
    snapshot: Optional[str] = None
    serve_mode = False
    args = list(argv) if argv is not None else sys.argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--snapshot" and args:
            snapshot = args.pop(0)
        elif arg.startswith("--snapshot="):
            snapshot = arg.split("=", 1)[1]
        elif arg == "--serve":
            serve_mode = True
    if serve_mode:
        return serve(snapshot)
    raw = sys.stdin.read()
    try:
        envelope = json.loads(raw)
    except json.JSONDecodeError as exc:
        _emit_record(
            {"status": "failed", "error": f"bad payload: {exc}"}
        )
        return 0
    payload = envelope.get("payload", envelope)
    attempt = int(envelope.get("attempt", 0))
    snapshot = envelope.get("snapshot") or snapshot
    record = run_job(payload, attempt, snapshot=snapshot)
    record["schema_version"] = SCHEMA_VERSION
    _emit_record(record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
