"""The persistent warm-worker pool.

:class:`WorkerPool` keeps up to ``width`` long-lived
``python -m repro.service.worker --serve`` processes.  Each worker pays
interpreter startup, the ``repro`` import graph, and (per setup) one
environment boot exactly once, then serves many jobs over the framed
stdin/stdout protocol of :mod:`repro.service.proto` — warm jobs skip
boot entirely, which is where the per-job wall time goes on small
repairs.

Lifecycle, from the scheduler's point of view:

* **lazy spawn** — workers are created on demand, never ahead of it; a
  batch of three jobs on an eight-wide pool starts three processes;
* **timeout** — a job that misses its deadline gets its worker's whole
  process group SIGKILLed (workers run ``start_new_session``, so
  children they spawned die too) and surfaces as
  :class:`~repro.service.faults.JobTimeout`; only the stuck worker is
  lost, the rest of the pool keeps serving;
* **crash** — a worker that dies mid-job (injected crash, OOM kill,
  segfault) surfaces as :class:`~repro.service.faults.WorkerCrash`,
  which the scheduler retries on a fresh worker; idle workers are
  untouched;
* **stale retire** — a worker whose resident environment no longer
  matches a job's env fingerprint answers ``stale``; the pool retires
  it (a fresh process re-imports the edited setup module; re-importing
  in-process would fight ``importlib`` caching) and re-dispatches,
  bounded by :data:`STALE_BOUNCES`;
* **recycle** — after :func:`default_max_jobs` jobs a worker is
  gracefully replaced, bounding any slow memory growth;
* **drain** — :meth:`WorkerPool.shutdown` sends every idle worker a
  ``shutdown`` frame, waits briefly, and hard-kills stragglers.

The pool is POSIX-only (``select`` on pipes, ``killpg``), like the
fault machinery it extends.  Everything here is thread-safe: the
scheduler drives one pool from many executor threads.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
import weakref
from collections import deque
from typing import IO, Any, Callable, Deque, Dict, List, Optional, Set

from .faults import CRASH_EXIT_CODE, FaultPlan, JobTimeout, WorkerCrash
from .proto import FrameStream, FrameTimeout, ProtocolError, StreamClosed

#: Environment variable toggling the warm pool for parallel batches
#: ("0"/"false"/"no"/"off" disable it; anything else, or unset, enables).
POOL_ENV_VAR = "REPRO_POOL"

#: Environment variable bounding jobs served per worker before recycle.
MAX_JOBS_ENV_VAR = "REPRO_POOL_MAX_JOBS"

#: Default recycle threshold when ``$REPRO_POOL_MAX_JOBS`` is unset.
DEFAULT_MAX_JOBS = 64

#: How many consecutive ``stale`` answers one job may bounce through
#: before the pool gives up and reports a crash (each bounce retires a
#: worker and spawns a fresh one, which sees the current source).
STALE_BOUNCES = 2

#: Grace period for a retiring worker to exit after its shutdown frame.
_DRAIN_GRACE_S = 5.0

_FALSY = ("0", "false", "no", "off")

#: Every live pool, for emergency teardown on SIGTERM/SIGINT.  Weak so
#: an abandoned pool can still be collected; a registered pool whose
#: owner forgot to drain it is exactly what the emergency path is for.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()

#: One-shot worker subprocesses (the ``--no-pool`` runner), same deal.
_LIVE_SOLO: "weakref.WeakSet[subprocess.Popen[Any]]" = weakref.WeakSet()


def register_solo_worker(process: "subprocess.Popen[Any]") -> None:
    """Track a one-shot worker so emergency teardown can reach it."""
    _LIVE_SOLO.add(process)


def emergency_shutdown() -> int:
    """SIGKILL every live worker process group; returns how many died.

    This is the signal-handler path: no graceful shutdown frames, no
    waiting on executor threads — a batch CLI or server hit by SIGTERM
    must not leave worker process groups running (the executor threads
    blocked on those workers' pipes would otherwise keep the normal
    drain from ever finishing).  Safe to call repeatedly.
    """
    killed = 0
    for pool in list(_LIVE_POOLS):
        killed += pool.kill()
    for process in list(_LIVE_SOLO):
        if process.poll() is None:
            kill_process_group(process)
            killed += 1
    return killed


def default_pool() -> bool:
    """Whether parallel batches use the warm pool by default.

    ``$REPRO_POOL`` set to a falsy word disables it; unset or anything
    else enables it.
    """
    raw = os.environ.get(POOL_ENV_VAR)
    if raw is None:
        return True
    return raw.strip().lower() not in _FALSY


def default_max_jobs() -> int:
    """``$REPRO_POOL_MAX_JOBS`` when a positive int, else the default."""
    raw = os.environ.get(MAX_JOBS_ENV_VAR, "")
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MAX_JOBS
    return value if value >= 1 else DEFAULT_MAX_JOBS


def worker_environ(
    fault_plan: Optional[FaultPlan] = None,
    snapshot: Optional[str] = None,
) -> Dict[str, str]:
    """The environment for a worker subprocess: import path + knobs."""
    import repro

    environ = dict(os.environ)
    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    existing = environ.get("PYTHONPATH", "")
    parts = [src_dir] + ([existing] if existing else [])
    environ["PYTHONPATH"] = os.pathsep.join(parts)
    if fault_plan is not None:
        environ["REPRO_FAULT_PLAN"] = fault_plan.to_env()
    if snapshot is not None:
        environ["REPRO_SNAPSHOT"] = snapshot
    return environ


def kill_process_group(process: "subprocess.Popen[Any]") -> None:
    """SIGKILL a worker's whole process group, then reap it.

    Workers are spawned with ``start_new_session=True`` so their pid is
    their pgid — ``killpg`` takes down any children the worker spawned,
    which a bare ``process.kill()`` would leak.  Falls back to
    ``kill()`` when the group is already gone.
    """
    try:
        os.killpg(process.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            process.kill()
        except OSError:
            pass
    try:
        process.wait(timeout=_DRAIN_GRACE_S)
    except subprocess.TimeoutExpired:  # pragma: no cover — SIGKILL stuck
        pass


class PoolWorker:
    """One live ``--serve`` worker process plus its framed streams."""

    def __init__(
        self, environ: Dict[str, str], snapshot: Optional[str] = None
    ) -> None:
        args = [sys.executable, "-m", "repro.service.worker", "--serve"]
        if snapshot is not None:
            args.extend(["--snapshot", snapshot])
        self.process: "subprocess.Popen[bytes]" = subprocess.Popen(
            args,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=environ,
            start_new_session=True,
        )
        assert self.process.stdout is not None
        self.stream = FrameStream(self.process.stdout.fileno())
        # stderr is drained only post-mortem (crash diagnostics); keep
        # it non-blocking so a quiet worker never deadlocks the drain.
        assert self.process.stderr is not None
        os.set_blocking(self.process.stderr.fileno(), False)
        #: Jobs this worker has completed (drives recycling).
        self.jobs = 0

    @property
    def _stdin(self) -> IO[bytes]:
        stdin = self.process.stdin
        assert stdin is not None
        return stdin

    def request(
        self,
        message: Dict[str, Any],
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Send one framed request; return the worker's framed reply.

        ``deadline`` is an absolute ``time.monotonic()`` instant.
        Raises :class:`~repro.service.proto.FrameTimeout`,
        :class:`~repro.service.proto.StreamClosed`, or
        ``BrokenPipeError`` — the caller owns the kill/retire decision.
        """
        from .proto import write_frame

        write_frame(self._stdin, message)
        return self.stream.read_frame(deadline)

    def alive(self) -> bool:
        return self.process.poll() is None

    def stderr_tail(self, lines: int = 3) -> str:
        """The last few stderr lines a dead/dying worker left behind."""
        stderr = self.process.stderr
        if stderr is None:
            return ""
        chunks: List[bytes] = []
        while True:
            try:
                chunk = os.read(stderr.fileno(), 65536)
            except (BlockingIOError, OSError, ValueError):
                break
            if not chunk:
                break
            chunks.append(chunk)
        text = b"".join(chunks).decode("utf-8", "replace").strip()
        return "; ".join(text.splitlines()[-lines:]) if text else ""

    def retire(self) -> None:
        """Graceful exit: shutdown frame, short wait, then hard kill."""
        from .proto import write_frame

        try:
            write_frame(self._stdin, {"op": "shutdown"})
            self._stdin.close()
        except (BrokenPipeError, OSError, ValueError):
            pass
        try:
            self.process.wait(timeout=_DRAIN_GRACE_S)
        except subprocess.TimeoutExpired:
            kill_process_group(self.process)
        self._close_pipes()

    def destroy(self) -> None:
        """Hard kill (process group) and reap; used on timeout/crash."""
        kill_process_group(self.process)
        self._close_pipes()

    def _close_pipes(self) -> None:
        for pipe in (
            self.process.stdin,
            self.process.stdout,
            self.process.stderr,
        ):
            if pipe is not None:
                try:
                    pipe.close()
                except OSError:  # pragma: no cover — close is best-effort
                    pass


class WorkerPool:
    """Up to ``width`` warm workers behind a thread-safe checkout queue."""

    def __init__(
        self,
        width: int,
        fault_plan: Optional[FaultPlan] = None,
        snapshot: Optional[str] = None,
        max_jobs_per_worker: Optional[int] = None,
    ) -> None:
        self.width = max(1, int(width))
        self.max_jobs_per_worker = (
            max_jobs_per_worker
            if max_jobs_per_worker and max_jobs_per_worker >= 1
            else default_max_jobs()
        )
        self._snapshot = snapshot
        self._environ = worker_environ(fault_plan, snapshot)
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._idle: Deque[PoolWorker] = deque()
        #: Every live worker, busy or idle — the emergency kill path
        #: must reach workers currently serving a job, which the idle
        #: queue alone cannot.
        self._members: Set[PoolWorker] = set()
        self._live = 0
        self._closed = False
        _LIVE_POOLS.add(self)
        self._counts: Dict[str, int] = {
            "spawned": 0,
            "recycled": 0,
            "stale_retired": 0,
            "timeout_kills": 0,
            "crashes": 0,
            "jobs": 0,
            "warm_jobs": 0,
            "env_boots": 0,
        }

    # -- Worker lifecycle --------------------------------------------------

    def _checkout(self) -> PoolWorker:
        """An idle worker, a fresh spawn, or a wait for one of those."""
        with self._cond:
            while True:
                if self._closed:
                    raise RuntimeError("worker pool is shut down")
                if self._idle:
                    return self._idle.popleft()
                if self._live < self.width:
                    self._live += 1
                    self._counts["spawned"] += 1
                    break
                self._cond.wait()
        try:
            worker = PoolWorker(self._environ, self._snapshot)
        except BaseException:
            with self._cond:
                self._live -= 1
                self._counts["spawned"] -= 1
                self._cond.notify()
            raise
        with self._cond:
            self._members.add(worker)
        return worker

    def _checkin(self, worker: PoolWorker) -> None:
        """Return a healthy worker to the idle queue (or recycle it)."""
        if worker.jobs >= self.max_jobs_per_worker:
            self._retire(worker, "recycled")
            return
        with self._cond:
            if not self._closed:
                self._idle.append(worker)
                self._cond.notify()
                return
        worker.retire()
        self._release(worker)

    def _retire(self, worker: PoolWorker, count: Optional[str]) -> None:
        """Gracefully drop one worker, freeing its pool slot."""
        if count is not None:
            with self._lock:
                self._counts[count] += 1
        worker.retire()
        self._release(worker)

    def _destroy(self, worker: PoolWorker, count: str) -> None:
        """Hard-kill one worker (process group), freeing its slot."""
        with self._lock:
            self._counts[count] += 1
        worker.destroy()
        self._release(worker)

    def _release(self, worker: PoolWorker) -> None:
        with self._cond:
            self._members.discard(worker)
            self._live = max(0, self._live - 1)
            self._cond.notify()

    def shutdown(self) -> None:
        """Drain the pool: retire every idle worker, refuse new checkouts.

        Workers currently serving a job are retired by their executor
        thread at checkin (the closed flag redirects them here), so a
        shutdown after the batch loop finishes is always complete.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._cond.notify_all()
        for worker in idle:
            worker.retire()
            self._release(worker)

    def kill(self) -> int:
        """Hard-kill every worker, busy or idle; returns how many.

        The emergency (signal-time) counterpart of :meth:`shutdown`:
        no shutdown frames, no grace for in-flight jobs.  Executor
        threads blocked on a killed worker's pipe observe EOF and
        surface :class:`~repro.service.faults.WorkerCrash` as usual —
        but the caller is typically about to ``os._exit`` anyway.
        """
        with self._cond:
            self._closed = True
            self._idle.clear()
            members = list(self._members)
            self._members.clear()
            self._live = 0
            self._cond.notify_all()
        for worker in members:
            kill_process_group(worker.process)
        return len(members)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()

    # -- Job execution -----------------------------------------------------

    def run_job(
        self,
        payload: Dict[str, Any],
        attempt: int,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Run one attempt on a warm worker; scheduler-compatible errors.

        Timeouts kill (and replace) only the worker that missed the
        deadline; crashes surface as retryable
        :class:`~repro.service.faults.WorkerCrash` exactly like the
        per-attempt subprocess runner's.
        """
        target = payload.get("target", "?")
        bounces = 0
        while True:
            worker = self._checkout()
            deadline = (
                time.monotonic() + timeout_s
                if timeout_s is not None and timeout_s > 0
                else None
            )
            request: Dict[str, Any] = {
                "op": "job",
                "payload": payload,
                "attempt": attempt,
            }
            if self._snapshot is not None:
                request["snapshot"] = self._snapshot
            try:
                reply = worker.request(request, deadline)
            except FrameTimeout:
                self._destroy(worker, "timeout_kills")
                raise JobTimeout(
                    f"worker for {target!r} exceeded {timeout_s}s"
                ) from None
            except (StreamClosed, BrokenPipeError, OSError):
                code = worker.process.poll()
                detail = worker.stderr_tail() or "no stderr"
                self._destroy(worker, "crashes")
                kind = (
                    "crashed"
                    if code == CRASH_EXIT_CODE
                    else f"exited {code}"
                )
                raise WorkerCrash(
                    f"warm worker for {target!r} {kind}: {detail}"
                ) from None
            except ProtocolError as exc:
                self._destroy(worker, "crashes")
                raise WorkerCrash(
                    f"warm worker for {target!r} broke protocol: {exc}"
                ) from None
            op = reply.get("op")
            if op == "result":
                record = reply.get("record")
                if not isinstance(record, dict):
                    self._destroy(worker, "crashes")
                    raise WorkerCrash(
                        f"warm worker for {target!r} sent a result "
                        "frame with no record"
                    )
                worker.jobs += 1
                with self._lock:
                    self._counts["jobs"] += 1
                    if record.get("env_boot") == "warm":
                        self._counts["warm_jobs"] += 1
                    elif "env_boot" in record:
                        self._counts["env_boots"] += 1
                self._checkin(worker)
                return record
            if op == "stale":
                # The setup module changed under this worker; only a
                # fresh process (fresh import graph) can serve the job.
                self._retire(worker, "stale_retired")
                bounces += 1
                if bounces > STALE_BOUNCES:
                    raise WorkerCrash(
                        f"job for {target!r} bounced off {bounces} "
                        "stale workers; setup keeps changing"
                    )
                continue
            self._destroy(worker, "crashes")
            raise WorkerCrash(
                f"warm worker for {target!r} sent unexpected op {op!r}"
            )

    def runner(self) -> Callable[
        [Dict[str, Any], int, Optional[float]], Dict[str, Any]
    ]:
        """This pool as a scheduler ``Runner`` (payload, attempt, timeout)."""

        def run(
            payload: Dict[str, Any],
            attempt: int,
            timeout_s: Optional[float],
        ) -> Dict[str, Any]:
            return self.run_job(payload, attempt, timeout_s)

        return run

    # -- Introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """JSON-ready lifecycle counters (plus the warm reuse rate)."""
        with self._lock:
            counts = dict(self._counts)
        jobs = counts["jobs"]
        out: Dict[str, Any] = {"width": self.width}
        out.update(counts)
        out["reuse_rate"] = (
            round(counts["warm_jobs"] / jobs, 4) if jobs else 0.0
        )
        return out
