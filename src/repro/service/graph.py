"""Reverse-dependency analysis for batch scheduling.

The environment is a DAG: a constant references the globals that appear
in its type and body.  Repairing a development walks that DAG in
topological order — :meth:`repro.core.repair.RepairSession.repair_module`
does so implicitly by recursing into dependencies before each target.
This module makes the order explicit so the scheduler can (a) dispatch
independent jobs concurrently, (b) skip the dependents of a failed job,
and (c) be tested against ``Repair module`` with a *shared oracle*:
:func:`repair_order` is specified to emit exactly the sequence a fresh
:class:`~repro.core.repair.RepairSession` defines repaired constants in.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..kernel.env import Environment
from ..kernel.term import collect_globals, mentions_global
from .job import RepairJob


def needs_repair(
    env: Environment, name: str, old_globals: Sequence[str]
) -> bool:
    """True when ``name`` is a constant the repair must rewrite.

    Mirrors ``RepairSession._needs_repair`` for a fresh session: a
    defined constant (not an auto-generated recursor) whose type or body
    mentions one of the old globals.
    """
    if not env.has_constant(name):
        return False
    if name.endswith("_rect") and env.has_inductive(name[: -len("_rect")]):
        return False
    decl = env.constant(name)
    if decl.body is None:
        return False
    for old in old_globals:
        if mentions_global(decl.body, old) or mentions_global(
            decl.type, old
        ):
            return True
    return False


def _declaration_position(env: Environment, name: str) -> int:
    order = env.declaration_order()
    try:
        return order.index(name)
    except ValueError:
        return len(order)


def repair_order(
    env: Environment,
    old_globals: Sequence[str],
    targets: Optional[Iterable[str]] = None,
    skip: Optional[Iterable[str]] = None,
) -> List[str]:
    """The order a fresh ``RepairSession`` would repair constants in.

    With ``targets=None``, this is the ``Repair module`` order: every
    constant needing repair, dependencies first, outer iteration in
    declaration order.  With explicit targets, only their dependency
    closures are visited (the ``repair_constant`` order).
    """
    skip_set: Set[str] = set(skip or ())
    order: List[str] = []
    visited: Set[str] = set(skip_set)

    def visit(name: str) -> None:
        if name in visited:
            return
        visited.add(name)
        decl = env.constant(name)
        deps = collect_globals(decl.body) | collect_globals(decl.type)
        for dep in sorted(deps, key=lambda n: _declaration_position(env, n)):
            if dep != name and needs_repair(env, dep, old_globals):
                visit(dep)
        order.append(name)

    if targets is None:
        roots = [
            name
            for name in env.declaration_order()
            if needs_repair(env, name, old_globals)
        ]
    else:
        roots = list(targets)
    for root in roots:
        visit(root)
    return order


def dependency_closure(
    env: Environment, target: str, old_globals: Sequence[str]
) -> Set[str]:
    """Constants needing repair that ``target`` transitively references
    (the target itself excluded)."""
    closure = set(
        repair_order(env, old_globals, targets=[target])
    )
    closure.discard(target)
    return closure


def infer_edges(
    env: Environment, jobs: Sequence[RepairJob]
) -> Dict[str, Tuple[str, ...]]:
    """Dependency edges among same-environment jobs, by target closure.

    Job B runs after job A when A's target is in the repair closure of
    B's target: B's worker would otherwise redo (or depend on) A's
    repair, and if A fails deterministically, B must fail the same way —
    so the scheduler can order them and cascade skips.
    """
    by_target = {job.target: job.name for job in jobs}
    edges: Dict[str, Tuple[str, ...]] = {}
    for job in jobs:
        closure = dependency_closure(env, job.target, job.old)
        deps = tuple(
            sorted(
                by_target[t]
                for t in closure
                if t in by_target and by_target[t] != job.name
            )
        )
        edges[job.name] = deps
    return edges


def toposort(
    names: Sequence[str], edges: Dict[str, Tuple[str, ...]]
) -> List[str]:
    """Kahn's algorithm over job names, stable in input order.

    Raises :class:`ValueError` naming the cycle members when the edges
    are cyclic; unknown edge targets are reported too.
    """
    known = set(names)
    for name, deps in edges.items():
        for dep in deps:
            if dep not in known:
                raise ValueError(
                    f"job {name!r} depends on unknown job {dep!r}"
                )
    remaining: Dict[str, Set[str]] = {
        name: set(edges.get(name, ())) for name in names
    }
    order: List[str] = []
    while remaining:
        ready = [name for name in names if name in remaining and not remaining[name]]
        if not ready:
            cycle = sorted(remaining)
            raise ValueError(f"dependency cycle among jobs: {cycle}")
        for name in ready:
            order.append(name)
            del remaining[name]
        for deps in remaining.values():
            deps.difference_update(ready)
    return order
