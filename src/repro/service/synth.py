"""Synthetic wide environments for impact benchmarks and soak tests.

A termgen-style generator in spirit, but deterministic and importable
by hermetic subprocess workers (it lives in ``src``, not ``tests``):
the quickstart list development plus a long chain of ``nat``
arithmetic definitions that never touch ``list``.  Against the
quickstart configuration (``list`` → ``New.list``) almost every
definition is provably unaffected — the shape the change-impact
planner exists for, and the shape real developments have (one type
changes; most of the library doesn't care).

``wide.d0 = S O``, ``wide.d{i} = add wide.d{i-1} (S O)`` — a chain, so
the reverse-dependency graph is deep as well as wide and the taint
fixpoint's transitive reasoning is actually exercised.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..kernel.env import Environment
from .job import RepairJob, fingerprint_source

_HERE = "repro.service.synth"

#: Unaffected chain length of the benchmark environment.
WIDE_WIDTH = 48

#: Chain length of the small variant (fast tests).
SMALL_WIDTH = 10

#: Affected targets every wide batch repairs alongside the chain.
AFFECTED_TARGETS = ("rev", "app", "rev_app_distr")


def _build_wide(width: int) -> Environment:
    from ..cases.quickstart import setup_environment
    from ..syntax.parser import parse

    env = setup_environment()
    previous = "(S O)"
    for i in range(width):
        name = f"wide.d{i}"
        env.define(name, parse(env, f"add {previous} (S O)"))
        previous = name
    return env


def wide_env() -> Environment:
    """The benchmark environment: quickstart + a 48-link nat chain."""
    return _build_wide(WIDE_WIDTH)


def wide_env_small() -> Environment:
    """A 10-link variant for fast tests."""
    return _build_wide(SMALL_WIDTH)


def _setup_ref(small: bool) -> str:
    return f"{_HERE}:wide_env_small" if small else f"{_HERE}:wide_env"


def wide_jobs(
    small: bool = False, fingerprint: bool = True
) -> List[RepairJob]:
    """One job per chain definition plus the affected quickstart targets.

    Every job repairs against the quickstart configuration, so a sound
    impact plan certifies exactly the ``wide.d*`` chain unaffected and
    the ``list``-involved targets not.
    """
    setup = _setup_ref(small)
    width = SMALL_WIDTH if small else WIDE_WIDTH
    env_fingerprint = fingerprint_source(setup) if fingerprint else ""
    jobs: List[RepairJob] = []

    def spec(target: str) -> Dict[str, Any]:
        return {
            "name": f"wide/{target}",
            "setup": setup,
            "target": target,
            "config": {"kind": "auto", "a": "list", "b": "New.list"},
            "old": ["list"],
            "rename": {"kind": "prefix", "value": "New."},
            "env_fingerprint": env_fingerprint,
        }

    for i in range(width):
        jobs.append(
            RepairJob.from_dict(spec(f"wide.d{i}"), where=f"wide.d{i}")
        )
    for target in AFFECTED_TARGETS:
        jobs.append(RepairJob.from_dict(spec(target), where=target))
    return jobs
