"""``python -m repro.service`` — run a batch manifest.

Reads a JSON batch manifest (or the built-in six-case batch), schedules
it over the worker pool, prints the per-job summary table, and
optionally writes the full JSON report::

    python -m repro.service examples/service_batch.json --jobs 4
    python -m repro.service --six-cases --store /tmp/repro-store \\
        --report batch_report.json
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from contextlib import contextmanager
from typing import Any, Iterator, List, Optional

from .faults import FaultPlan
from .job import JobError
from .manifest import load_manifest
from .scheduler import BatchOptions, default_jobs, run_batch
from .store import ResultStore, default_store_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a batch of proof-repair jobs.",
    )
    parser.add_argument(
        "manifest",
        nargs="?",
        help="path to a JSON batch manifest",
    )
    parser.add_argument(
        "--six-cases",
        action="store_true",
        help="run the built-in six-case-study batch instead of a manifest",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help=f"worker pool width (default: $REPRO_JOBS or {default_jobs()})",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=f"result store directory (default: {default_store_dir()})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the persistent result store entirely",
    )
    parser.add_argument(
        "--store-max-entries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "bound the store to N records, evicting least-recently-"
            "used (default: $REPRO_SERVICE_STORE_MAX, else unbounded)"
        ),
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every job even when a stored result exists",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget for crashed workers (default: 2)",
    )
    pool_group = parser.add_mutually_exclusive_group()
    pool_group.add_argument(
        "--pool",
        dest="pool",
        action="store_true",
        default=None,
        help=(
            "serve parallel batches from the persistent warm-worker "
            "pool (default: $REPRO_POOL, on when unset)"
        ),
    )
    pool_group.add_argument(
        "--no-pool",
        dest="pool",
        action="store_false",
        help="launch one hermetic worker subprocess per attempt instead",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help=(
            "boot workers from this snapshot pack (see python -m "
            "repro.kernel.snapshot); built once per batch when missing "
            "or stale"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="JSON",
        help='inject faults, e.g. \'{"add": {"0": "crash"}}\'',
    )
    parser.add_argument(
        "--impact",
        action="store_true",
        help=(
            "build/reuse a change-impact plan and skip jobs it "
            "certifies unaffected (also: $REPRO_IMPACT=1)"
        ),
    )
    parser.add_argument(
        "--no-impact",
        action="store_true",
        help=(
            "escape hatch: run everything, then differentially assert "
            "every job the plan would have skipped was byte-identical "
            "(also: $REPRO_IMPACT=check); exits 3 on a violation"
        ),
    )
    parser.add_argument(
        "--impact-store",
        default=None,
        metavar="DIR",
        help=(
            "plan store directory (default: $REPRO_IMPACT_STORE or "
            "~/.cache/repro/impact)"
        ),
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write the full JSON batch report here ('-' for stdout)",
    )
    return parser


@contextmanager
def _terminate_guard() -> Iterator[None]:
    """SIGTERM/SIGINT → hard-kill every worker group, then exit.

    The polite alternative — raising and unwinding — deadlocks: the
    scheduler's executor threads sit blocked reading frames from (
    possibly hung) workers, and ``ThreadPoolExecutor.__exit__`` waits
    on those threads forever, leaking the worker process groups the
    interrupt was supposed to stop.  Killing the groups first unblocks
    everything; ``os._exit`` then skips the unwinding entirely with
    the conventional ``128 + signum`` status.

    Handlers are restored on the way out so in-process callers (tests,
    other tools embedding :func:`main`) keep their own behaviour.
    """
    from .pool import emergency_shutdown

    def _terminate(signum: int, frame: Any) -> None:
        emergency_shutdown()
        os._exit(128 + signum)

    if threading.current_thread() is not threading.main_thread():
        yield
        return
    previous = {
        signum: signal.signal(signum, _terminate)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if bool(args.manifest) == bool(args.six_cases):
        parser.error("give a manifest path or --six-cases (not both)")
    try:
        if args.six_cases:
            from .cases import six_case_jobs

            batch, jobs = "six-cases", six_case_jobs()
        else:
            batch, jobs = load_manifest(args.manifest)
        fault_plan = (
            FaultPlan.from_json(args.fault_plan) if args.fault_plan else None
        )
    except (JobError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = (
        None
        if args.no_store
        else ResultStore(args.store, max_entries=args.store_max_entries)
    )
    if args.snapshot:
        from ..kernel.snapshot import SnapshotError
        from .warmup import ensure_batch_snapshot

        try:
            ensure_batch_snapshot(jobs, args.snapshot)
        except (SnapshotError, JobError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.impact and args.no_impact:
        parser.error("--impact and --no-impact are mutually exclusive")
    from .planner import (
        MODE_CHECK,
        MODE_PRUNE,
        build_batch_impact,
        default_impact_mode,
        verify_impact,
    )

    if args.impact:
        impact_mode: Optional[str] = MODE_PRUNE
    elif args.no_impact:
        impact_mode = MODE_CHECK
    else:
        impact_mode = default_impact_mode()
    impact = None
    if impact_mode is not None:
        from ..analysis.impact import PlanStore

        try:
            impact = build_batch_impact(
                jobs, store=PlanStore(args.impact_store)
            )
        except JobError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    options = BatchOptions(
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        refresh=args.refresh,
        store=store,
        fault_plan=fault_plan,
        snapshot=args.snapshot,
        impact=impact if impact_mode == MODE_PRUNE else None,
        pool=args.pool,
    )
    try:
        with _terminate_guard():
            report = run_batch(jobs, options, batch=batch)
    except JobError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.render_table())
    violations: List[str] = []
    if impact is not None and impact_mode == MODE_CHECK:
        violations = verify_impact(report, impact)
        for violation in violations:
            print(f"impact violation: {violation}", file=sys.stderr)
    if args.report:
        document = report.to_dict()
        if impact is not None:
            document["impact"] = {
                "mode": impact_mode,
                "plans": impact.digests(),
                "violations": violations,
            }
        payload = json.dumps(document, indent=2, sort_keys=True)
        if args.report == "-":
            print(payload)
        else:
            with open(args.report, "w") as handle:
                handle.write(payload + "\n")
    if violations:
        return 3
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
