"""Batch manifests: the JSON input of ``python -m repro.service``.

A manifest is an object with an optional ``batch`` name and a ``jobs``
array of job entries (see :meth:`repro.service.job.RepairJob.from_dict`
for the entry schema; ``examples/service_batch.json`` is a worked
sample).  Jobs that do not pin an ``env_fingerprint`` get one computed
from their setup module's source at load time, so an unchanged manifest
over unchanged sources re-runs as pure cache hits while editing either
invalidates exactly the affected jobs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .job import JobError, RepairJob, fingerprint_source


def jobs_from_manifest(
    data: Dict[str, Any], where: str = "manifest"
) -> List[RepairJob]:
    """Parse and fingerprint the ``jobs`` array of a manifest object."""
    if not isinstance(data, dict):
        raise JobError(f"{where}: manifest must be a JSON object")
    raw_jobs = data.get("jobs")
    if not isinstance(raw_jobs, list) or not raw_jobs:
        raise JobError(f"{where}: manifest needs a non-empty 'jobs' array")
    fingerprints: Dict[str, str] = {}
    jobs: List[RepairJob] = []
    for index, raw in enumerate(raw_jobs):
        entry_where = f"{where}: jobs[{index}]"
        if not isinstance(raw, dict):
            raise JobError(f"{entry_where}: job entry must be an object")
        if not raw.get("env_fingerprint"):
            setup = str(raw.get("setup", ""))
            if not setup:
                raise JobError(f"{entry_where}: missing setup reference")
            if setup not in fingerprints:
                fingerprints[setup] = fingerprint_source(setup)
            raw = dict(raw, env_fingerprint=fingerprints[setup])
        jobs.append(RepairJob.from_dict(raw, where=entry_where))
    return jobs


def load_manifest(path: str) -> Tuple[str, List[RepairJob]]:
    """Load ``path``; returns the batch name and its fingerprinted jobs."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as exc:
        raise JobError(f"cannot read manifest {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise JobError(f"manifest {path!r} is not valid JSON: {exc}") from exc
    jobs = jobs_from_manifest(data, where=path)
    batch = data.get("batch")
    return (str(batch) if batch else "batch", jobs)
