"""Service adapters for the six paper case studies.

Each case study gets a zero-argument environment builder (the job's
``setup`` dotted reference) and, where the configuration cannot be
auto-searched from two type names, a one-argument configuration builder
(the job's ``config`` dotted reference).  :func:`six_case_jobs` then
assembles the standard eight-job batch the benchmarks and CI run —
quickstart, REPLICA, binary arithmetic (two chained jobs), ornaments,
constructor refactoring (two independent jobs), and the Galois
handshake — and :func:`six_case_manifest` renders it as the JSON the
``python -m repro.service`` CLI consumes.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.config import Configuration
from ..kernel.env import Environment
from .job import RepairJob, fingerprint_source

_HERE = "repro.service.cases"


# -- Environment builders (job ``setup`` references) --------------------------


def quickstart_env() -> Environment:
    """Section 2: the list development plus the swapped ``New.list``."""
    from ..cases.quickstart import setup_environment

    return setup_environment()


def replica_env() -> Environment:
    """Section 6.1: the term language plus the Figure 16 variant."""
    from ..cases.replica import declare_term_language, setup_environment

    env = setup_environment()
    declare_term_language(
        env,
        "New0.Term",
        order=["Var", "Eq", "Int", "Plus", "Times", "Minus", "Choose"],
    )
    return env


def binary_env() -> Environment:
    """Section 6.3: unary/binary nat with the iota-marked proof."""
    from ..cases.binary import (
        declare_iota_constants,
        declare_marked_add_n_Sm,
    )
    from ..stdlib import make_env

    env = make_env(lists=False, vectors=False, binary=True)
    declare_iota_constants(env)
    declare_marked_add_n_Sm(env)
    return env


def ornaments_env() -> Environment:
    """Section 6.2: lists and vectors with the length invariant."""
    from ..cases.ornaments_example import declare_length_invariant
    from ..stdlib import make_env

    env = make_env(lists=True, vectors=True)
    declare_length_invariant(env)
    return env


def refactor_env() -> Environment:
    """Section 6.4 (constructors): the I/J algebra development."""
    from ..cases.constr_refactor import setup_environment

    return setup_environment()


def galois_env() -> Environment:
    """Section 6.4 (tuples/records): the Galois handshake development."""
    from ..cases.galois import setup_environment

    return setup_environment()


# -- Configuration builders (job ``config`` dotted references) ----------------


def binary_config(env: Environment) -> Configuration:
    from ..cases.binary import binary_configuration

    return binary_configuration(env)


def ornaments_config(env: Environment) -> Configuration:
    from ..core.search.ornaments import ornament_configuration

    return ornament_configuration(env)


def refactor_config(env: Environment) -> Configuration:
    from ..cases.constr_refactor import refactor_configuration

    return refactor_configuration(env)


def galois_handshake_config(env: Environment) -> Configuration:
    from ..core.search.tuples_records import tuples_records_configuration

    return tuples_records_configuration(
        env, "Record.Handshake", tuple_alias="Galois.Handshake"
    )


# -- Rename callables (job ``rename`` dotted references) ----------------------


def refactor_rename(name: str) -> str:
    """``Ialg.and -> J.and`` style renaming for the refactor case."""
    return f"J.{name.split('.')[-1]}"


#: The constants the ornament configuration translates itself; the
#: repair session must not treat them as repairable dependencies.
ORNAMENT_SKIP = (
    "ornament.eta",
    "ornament.dep_constr_0",
    "ornament.dep_constr_1",
    "ornament.promote",
    "ornament.forget",
    "ornament.forget_vec",
)


# -- The standard batch -------------------------------------------------------


def _specs() -> List[Dict[str, Any]]:
    return [
        {
            "name": "quickstart/rev_app_distr",
            "setup": f"{_HERE}:quickstart_env",
            "target": "rev_app_distr",
            "config": {"kind": "auto", "a": "list", "b": "New.list"},
            "old": ["list"],
            "rename": {"kind": "prefix", "value": "New."},
        },
        {
            "name": "replica/eval_eq_true_or_false",
            "setup": f"{_HERE}:replica_env",
            "target": "eval_eq_true_or_false",
            "config": {"kind": "auto", "a": "Old.Term", "b": "New0.Term"},
            "old": ["Old.Term"],
            "rename": {"kind": "prefix", "value": "New0."},
        },
        {
            "name": "binary/slow_add",
            "setup": f"{_HERE}:binary_env",
            "target": "add",
            "new_name": "slow_add",
            "config": {"kind": "dotted", "ref": f"{_HERE}:binary_config"},
            "old": ["nat"],
            "rename": {
                "kind": "map",
                "map": {"add": "slow_add"},
                "prefix": "N.",
            },
        },
        {
            "name": "binary/slow_add_n_Sm",
            "setup": f"{_HERE}:binary_env",
            "target": "add_n_Sm_marked",
            "new_name": "slow_add_n_Sm",
            "config": {"kind": "dotted", "ref": f"{_HERE}:binary_config"},
            "old": ["nat"],
            "rename": {
                "kind": "map",
                "map": {"add": "slow_add"},
                "prefix": "N.",
            },
            "after": ["binary/slow_add"],
        },
        {
            "name": "ornaments/zip_with_is_zip",
            "setup": f"{_HERE}:ornaments_env",
            "target": "zip_with_is_zip",
            "config": {
                "kind": "dotted",
                "ref": f"{_HERE}:ornaments_config",
            },
            "old": ["list"],
            "rename": {"kind": "prefix", "value": "Packed."},
            "skip": list(ORNAMENT_SKIP),
        },
        {
            "name": "refactor/demorgan_1",
            "setup": f"{_HERE}:refactor_env",
            "target": "demorgan_1",
            "config": {
                "kind": "dotted",
                "ref": f"{_HERE}:refactor_config",
            },
            "old": ["I"],
            "rename": {
                "kind": "dotted",
                "ref": f"{_HERE}:refactor_rename",
            },
        },
        {
            "name": "refactor/demorgan_2",
            "setup": f"{_HERE}:refactor_env",
            "target": "demorgan_2",
            "config": {
                "kind": "dotted",
                "ref": f"{_HERE}:refactor_config",
            },
            "old": ["I"],
            "rename": {
                "kind": "dotted",
                "ref": f"{_HERE}:refactor_rename",
            },
        },
        {
            "name": "galois/cork",
            "setup": f"{_HERE}:galois_env",
            "target": "cork",
            "config": {
                "kind": "dotted",
                "ref": f"{_HERE}:galois_handshake_config",
            },
            "old": ["Galois.Handshake"],
            "rename": {"kind": "suffix", "value": "'"},
        },
    ]


def six_case_jobs(fingerprint: bool = True) -> List[RepairJob]:
    """The standard eight-job batch over the six paper case studies."""
    jobs = []
    fingerprints: Dict[str, str] = {}
    for spec in _specs():
        setup = spec["setup"]
        if fingerprint:
            if setup not in fingerprints:
                fingerprints[setup] = fingerprint_source(setup)
            spec = dict(spec, env_fingerprint=fingerprints[setup])
        jobs.append(RepairJob.from_dict(spec, where=spec["name"]))
    return jobs


def six_case_manifest() -> Dict[str, Any]:
    """The standard batch as a CLI manifest (fingerprints resolved at
    run time by the CLI, not baked in)."""
    return {
        "batch": "six-cases",
        "jobs": _specs(),
    }
