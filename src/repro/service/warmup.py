"""Per-batch snapshot warm-up: build the pack the workers boot from.

The scheduler's subprocess workers each rebuild their case environment
from scratch; :func:`ensure_batch_snapshot` amortizes that by running
every distinct setup in a batch *once* (in the scheduler process),
snapshotting the results into one pack, and handing its path to the
worker pool via ``BatchOptions.snapshot``.  An existing up-to-date pack
— every setup present with a matching source fingerprint — is reused
as-is, so repeated batches over unchanged developments pay nothing.
"""

from __future__ import annotations

from typing import List, Sequence

from ..kernel.snapshot import (
    SnapshotError,
    build_pack_from_refs,
    load_snapshot_cached,
    save_snapshot,
)
from .job import LIVE_SETUP, RepairJob, fingerprint_source


def batch_setups(jobs: Sequence[RepairJob]) -> List[str]:
    """The distinct snapshot-eligible setups of a batch, in job order."""
    setups: List[str] = []
    for job in jobs:
        if job.setup != LIVE_SETUP and job.setup not in setups:
            setups.append(job.setup)
    return setups


def snapshot_is_current(path: str, setups: Sequence[str]) -> bool:
    """True when ``path`` holds a fresh entry for every setup."""
    try:
        pack = load_snapshot_cached(path)
    except SnapshotError:
        return False
    for setup in setups:
        entry = pack.get(setup)
        if entry is None:
            return False
        try:
            if entry.fingerprint != fingerprint_source(setup):
                return False
        except Exception:  # noqa: BLE001 — unresolvable setup: rebuild
            return False
    return True


def ensure_batch_snapshot(
    jobs: Sequence[RepairJob], path: str, rebuild: bool = False
) -> str:
    """Build (or reuse) the snapshot pack for ``jobs`` at ``path``.

    Returns ``path`` for convenience; raises
    :class:`~repro.kernel.snapshot.SnapshotError` when a setup cannot
    be built.  With no snapshot-eligible setups the file is still
    written (an empty pack) so callers can pass the path through
    unconditionally.
    """
    setups = batch_setups(jobs)
    if not rebuild and snapshot_is_current(path, setups):
        return path
    save_snapshot(path, build_pack_from_refs(setups))
    return path
