"""repro.service — the parallel batch-repair job engine.

Repairing a real development is rarely one command: it is a batch of
related repairs over one or more environments, some depending on
others, some already done last run, some that will crash a worker.
This package turns :mod:`repro.core.repair` into a job service:

* :mod:`~repro.service.job` — content-addressed :class:`RepairJob`
  descriptions with environment fingerprints;
* :mod:`~repro.service.graph` — the reverse-dependency analysis the
  scheduler orders jobs by (shared, as an oracle, with the tests for
  ``Repair module``);
* :mod:`~repro.service.scheduler` — :func:`run_batch`: the
  dependency-aware scheduler, worker pool, retry/timeout semantics, and
  per-batch report;
* :mod:`~repro.service.worker` — the per-job executor
  (``python -m repro.service.worker``), one-shot or persistent
  (``--serve``);
* :mod:`~repro.service.pool` — the persistent warm-worker pool
  (boot once, serve many jobs over the framed protocol);
* :mod:`~repro.service.proto` — length-prefixed JSON framing for the
  worker wire protocol;
* :mod:`~repro.service.store` — the persistent content-addressed
  result store;
* :mod:`~repro.service.faults` — deterministic fault injection;
* :mod:`~repro.service.live` — batches over a live session
  environment (the ``Repair Batch`` vernacular command);
* :mod:`~repro.service.manifest` / :mod:`~repro.service.cli` — the
  ``python -m repro.service`` batch front end;
* :mod:`~repro.service.cases` — the standard six-case-study batch;
* :mod:`~repro.service.planner` — change-impact plans for the
  scheduler (prune certified-unaffected jobs; differential soundness
  gate) over :mod:`repro.analysis.impact`;
* :mod:`~repro.service.synth` — deterministic synthetic wide
  environments for impact benchmarks.
"""

from .faults import CRASH_EXIT_CODE, FaultInjected, FaultPlan, JobTimeout, WorkerCrash
from .job import (
    LIVE_SETUP,
    STATUS_CACHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_SKIPPED,
    STATUS_SKIPPED_UNAFFECTED,
    STATUS_TIMEOUT,
    STATUSES,
    JobError,
    RepairJob,
    fingerprint_env,
    fingerprint_source,
)
from .planner import (
    IMPACT_ENV_VAR,
    BatchImpact,
    build_batch_impact,
    default_impact_mode,
    verify_impact,
)
from .pool import (
    MAX_JOBS_ENV_VAR,
    POOL_ENV_VAR,
    WorkerPool,
    default_max_jobs,
    default_pool,
)
from .scheduler import (
    JOBS_ENV_VAR,
    BatchOptions,
    BatchReport,
    JobOutcome,
    default_jobs,
    inprocess_runner,
    run_batch,
    subprocess_runner,
)
from .store import STORE_ENV_VAR, ResultStore, default_store_dir

__all__ = [
    "BatchImpact",
    "BatchOptions",
    "BatchReport",
    "CRASH_EXIT_CODE",
    "FaultInjected",
    "FaultPlan",
    "IMPACT_ENV_VAR",
    "JOBS_ENV_VAR",
    "JobError",
    "JobOutcome",
    "JobTimeout",
    "LIVE_SETUP",
    "MAX_JOBS_ENV_VAR",
    "POOL_ENV_VAR",
    "RepairJob",
    "ResultStore",
    "STATUS_CACHED",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_SKIPPED",
    "STATUS_SKIPPED_UNAFFECTED",
    "STATUS_TIMEOUT",
    "STATUSES",
    "STORE_ENV_VAR",
    "WorkerCrash",
    "WorkerPool",
    "build_batch_impact",
    "default_impact_mode",
    "default_jobs",
    "default_max_jobs",
    "default_pool",
    "default_store_dir",
    "fingerprint_env",
    "fingerprint_source",
    "inprocess_runner",
    "run_batch",
    "subprocess_runner",
    "verify_impact",
]
