"""Live batches: the engine driven over an in-session environment.

The ``Repair Batch`` vernacular command schedules several repairs over
the *session's* environment rather than hermetic worker rebuilds.  The
jobs carry :data:`~repro.service.job.LIVE_SETUP` and a structural
environment fingerprint (:func:`~repro.service.job.fingerprint_env`),
their edges are inferred from the reverse-dependency graph
(:func:`~repro.service.graph.infer_edges`), and they execute through
the deterministic in-process executor against one shared
:class:`~repro.core.repair.RepairSession`.

Persistent-store hits are *replayed*: the cached pretty-printed
definitions are parsed back and defined into the live environment
(dependencies first), and registered in the session's results and
constant map so later jobs build on them without redoing the repair.  A
definition that fails to re-parse or re-check simply demotes the hit to
a recompute — the cache can slow a batch down, never corrupt it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from ..core.repair import RepairResult, RepairSession
from ..kernel.env import Environment
from ..syntax.parser import parse
from . import faults
from .graph import infer_edges
from .job import LIVE_SETUP, RepairJob, fingerprint_env
from .scheduler import BatchOptions, BatchReport, Runner, run_batch
from .worker import _stats_snapshot, attempt_job, build_record


def live_jobs(
    env: Environment,
    a: str,
    b: str,
    targets: Sequence[str],
    rename: Optional[Dict[str, Any]] = None,
    skip: Sequence[str] = (),
) -> List[RepairJob]:
    """Jobs for repairing ``targets`` across ``a ~= b`` in ``env``,
    with ``after`` edges inferred from the dependency graph."""
    fingerprint = fingerprint_env(env)
    jobs = [
        RepairJob(
            name=target,
            setup=LIVE_SETUP,
            target=target,
            config={"kind": "live", "a": a, "b": b},
            old=(a,),
            rename=rename,
            skip=tuple(skip),
            env_fingerprint=fingerprint,
        )
        for target in targets
    ]
    edges = infer_edges(env, jobs)
    return [
        RepairJob(
            name=job.name,
            setup=job.setup,
            target=job.target,
            config=job.config,
            old=job.old,
            rename=job.rename,
            skip=job.skip,
            after=edges.get(job.name, ()),
            env_fingerprint=job.env_fingerprint,
        )
        for job in jobs
    ]


def replay_record(
    env: Environment, session: RepairSession, result: Dict[str, Any]
) -> None:
    """Define a cached job's constants into the live environment.

    Raises on any parse or check failure — the scheduler treats that as
    a store miss and recomputes the job from scratch.
    """
    for entry in result.get("defined", ()):
        old, new = entry["old"], entry["new"]
        if old in session.results:
            continue
        term = parse(env, entry["term"])
        ty = parse(env, entry["type"])
        if not env.has_constant(new):
            env.define(new, term, type=ty)
        session.results[old] = RepairResult(
            old_name=old, new_name=new, term=term, type=ty
        )
        session.config.const_map[old] = new


def live_runner(
    session: RepairSession,
    fault_plan: Optional[faults.FaultPlan] = None,
) -> Runner:
    """The in-process executor bound to one shared live session."""
    env = session.env

    def run(
        payload: Dict[str, Any], attempt: int, timeout_s: Optional[float]
    ) -> Dict[str, Any]:
        def execute() -> Dict[str, Any]:
            started = time.perf_counter()
            before = _stats_snapshot()
            already = set(session.results)
            result = session.repair_constant(
                payload["target"], new_name=payload.get("new_name")
            )
            return build_record(
                env, session, result, before, started, exclude=already
            )

        return attempt_job(
            execute, payload, attempt, fault_plan, in_process=True
        )

    return run


def run_live_batch(
    session: RepairSession,
    jobs: List[RepairJob],
    options: Optional[BatchOptions] = None,
    batch: str = "live",
) -> BatchReport:
    """Run a live batch over ``session``; always serial, always ordered."""
    options = options or BatchOptions()
    options.jobs = 1  # the live environment is shared mutable state
    return run_batch(
        jobs,
        options,
        runner=live_runner(session, options.fault_plan),
        batch=batch,
        on_cached=lambda job, result: replay_record(
            session.env, session, result
        ),
    )
