"""Batch-level impact planning: plans in, skips and soundness out.

This is the bridge between :mod:`repro.analysis.impact` and the
scheduler.  :func:`build_batch_impact` groups a batch's jobs by the
environment they run in (setup reference, old globals, skip set,
environment fingerprint), obtains one :class:`RepairPlan` per group —
from the plan store when the fingerprint matches, rebuilding and
persisting otherwise — and wraps them as a :class:`BatchImpact` the
scheduler consults per job.

Two consumption modes, selected by ``--impact``/``--no-impact`` or
``$REPRO_IMPACT``:

* **prune** — :attr:`BatchOptions.impact
  <repro.service.scheduler.BatchOptions.impact>` is set; jobs whose
  targets the plan certifies ``unaffected`` complete as
  ``skipped-unaffected`` with the evidence digest, no worker spawned;
* **check** — everything runs, then :func:`verify_impact` asserts that
  every job the plan *would* have skipped produced a term and type
  byte-identical to the original declaration (compared through the
  digests recorded in the plan).  This differential run is the
  soundness gate CI and the bench execute.

A plan whose fingerprint disagrees with a job's ``env_fingerprint`` is
never consulted — a stale plan can cost time (the job runs), never
correctness.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..analysis.impact import (
    VERDICT_UNAFFECTED,
    ImpactEntry,
    PlanStore,
    RepairPlan,
    ensure_plan,
)
from ..kernel.env import Environment
from .job import LIVE_SETUP, STATUS_SKIPPED_UNAFFECTED, JobError, RepairJob
from .scheduler import BatchReport

#: Environment variable selecting the default impact mode:
#: ``1``/``prune`` prunes, ``check`` runs the differential gate,
#: empty/``0`` disables.
IMPACT_ENV_VAR = "REPRO_IMPACT"

MODE_PRUNE = "prune"
MODE_CHECK = "check"


def default_impact_mode() -> Optional[str]:
    """The mode ``$REPRO_IMPACT`` asks for, or None when unset/off."""
    raw = os.environ.get(IMPACT_ENV_VAR, "").strip().lower()
    if raw in ("", "0", "no", "off", "false"):
        return None
    if raw in (MODE_CHECK, "verify", "differential"):
        return MODE_CHECK
    return MODE_PRUNE


#: One environment a batch repairs in: the plan cache key within a batch.
GroupKey = Tuple[str, Tuple[str, ...], Tuple[str, ...], str]


def _group_key(job: RepairJob) -> GroupKey:
    return (job.setup, job.old, job.skip, job.env_fingerprint)


class BatchImpact:
    """Plans for every distinct environment of a batch."""

    def __init__(self, plans: Dict[GroupKey, RepairPlan]) -> None:
        self._plans = plans

    @property
    def plans(self) -> Dict[GroupKey, RepairPlan]:
        return dict(self._plans)

    def digests(self) -> Dict[str, str]:
        """Plan digest per setup reference (for batch reports)."""
        return {
            key[0]: plan.digest for key, plan in self._plans.items()
        }

    def plan_for(self, job: RepairJob) -> Optional[RepairPlan]:
        plan = self._plans.get(_group_key(job))
        if plan is None or plan.fingerprint != job.env_fingerprint:
            return None
        return plan

    def entry_for(self, job: RepairJob) -> Optional[ImpactEntry]:
        plan = self.plan_for(job)
        return plan.entries.get(job.target) if plan is not None else None

    def skippable(self, job: RepairJob) -> Optional[Dict[str, Any]]:
        """Evidence record when the plan certifies ``job`` unaffected."""
        plan = self.plan_for(job)
        if plan is None:
            return None
        entry = plan.entries.get(job.target)
        if entry is None or entry.verdict != VERDICT_UNAFFECTED:
            return None
        return {
            "verdict": entry.verdict,
            "code": entry.code,
            "evidence_digest": entry.def_digest,
            "plan_digest": plan.digest,
        }


def build_batch_impact(
    jobs: Sequence[RepairJob],
    store: Optional[PlanStore] = None,
    env: Optional[Environment] = None,
) -> BatchImpact:
    """One plan per distinct environment in ``jobs``.

    ``env`` serves groups whose setup is :data:`LIVE_SETUP` (the
    ``Repair Batch`` vernacular passes the session environment —
    live jobs carry no rebuildable script).  Dotted setups rebuild
    through the worker's environment builder, but only on a plan-store
    miss.
    """
    from .worker import build_environment

    plans: Dict[GroupKey, RepairPlan] = {}
    for job in jobs:
        key = _group_key(job)
        if key in plans:
            continue
        if job.setup == LIVE_SETUP:
            if env is None:
                raise JobError(
                    f"job {job.name!r} is live; build_batch_impact "
                    "needs the session environment"
                )
            live_env = env
            plans[key] = ensure_plan(
                job.env_fingerprint,
                job.old,
                lambda live_env=live_env: live_env,
                allow=job.skip,
                store=store,
            )
        else:
            plans[key] = ensure_plan(
                job.env_fingerprint,
                job.old,
                lambda setup=job.setup: build_environment(setup),
                allow=job.skip,
                store=store,
            )
    return BatchImpact(plans)


def _digest_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def verify_impact(
    report: BatchReport, impact: BatchImpact
) -> List[str]:
    """The differential soundness gate: skipped ⇒ byte-identical.

    For every job of a *force-run* batch whose target the plan
    certifies ``unaffected``, assert the worker's repaired term and
    type hash to the original declaration's digests recorded in the
    plan.  Returns human-readable violations; empty means the plan is
    sound for this batch.
    """
    violations: List[str] = []
    for outcome in report.outcomes:
        entry = impact.entry_for(outcome.job)
        if entry is None or entry.verdict != VERDICT_UNAFFECTED:
            continue
        if outcome.status == STATUS_SKIPPED_UNAFFECTED:
            continue  # pruned, nothing to compare
        name = outcome.job.name
        if not outcome.ok or outcome.result is None:
            violations.append(
                f"{name}: certified unaffected but force-run ended "
                f"{outcome.status!r} ({outcome.error or 'no result'})"
            )
            continue
        term = outcome.result.get("term")
        if entry.term_digest is not None and (
            term is None or _digest_text(term) != entry.term_digest
        ):
            violations.append(
                f"{name}: certified unaffected but the repaired term "
                "differs from the original body"
            )
        type_ = outcome.result.get("type")
        if entry.type_digest is not None and (
            type_ is None or _digest_text(type_) != entry.type_digest
        ):
            violations.append(
                f"{name}: certified unaffected but the repaired type "
                "differs from the original type"
            )
    return violations
