"""Length-prefixed JSON framing for the worker wire protocol.

Workers talk to the scheduler over stdin/stdout.  The old one-shot
protocol was "scan stdout backwards for a line starting with ``{``",
which silently mis-parses the moment a worker (or anything it imports)
prints a ``{``-prefixed log line.  Every worker message is now a
*frame*::

    @repro-frame <length>\\n
    <length bytes of UTF-8 JSON>\\n

The header line names the exact byte length of the body, so arbitrary
non-frame output — progress prints, library warnings, a noisy
``atexit`` hook — is skipped without ever being mistaken for a result.
Both directions use the same format: requests flow worker-ward on
stdin, responses flow scheduler-ward on stdout.

Three readers cover the three consumers:

* :func:`last_frame` — parse a *complete* captured stdout (the one-shot
  ``subprocess_runner`` path) and return the final frame;
* :class:`FrameStream` — incremental, deadline-aware reads from a live
  pipe (the :mod:`repro.service.pool` side), built on ``select`` +
  ``os.read`` so per-job timeouts can interrupt a blocking read;
* :func:`read_frames` — a blocking iterator over a file descriptor (the
  worker's own stdin loop).
"""

from __future__ import annotations

import json
import os
import select
import time
from typing import Any, BinaryIO, Dict, Iterator, List, Optional

#: Frame-header sentinel; the space before the length is mandatory.
MAGIC = "@repro-frame"

_MAGIC_B = MAGIC.encode("ascii") + b" "

#: Upper bound on a single frame body (a result record is well under
#: this; anything bigger is a corrupt or hostile length header).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_READ_CHUNK = 65536


class ProtocolError(Exception):
    """A framed peer sent bytes that violate the protocol."""


class FrameTimeout(Exception):
    """No complete frame arrived before the deadline."""


class StreamClosed(Exception):
    """The peer closed the stream (EOF) before a complete frame."""


def encode_frame(message: Dict[str, Any]) -> bytes:
    """``message`` as one wire frame (header + body + trailing newline).

    The trailing newline is not part of the framed length; it keeps the
    JSON body on its own line so captured output stays human-readable.
    """
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    return _MAGIC_B + str(len(body)).encode("ascii") + b"\n" + body + b"\n"


def write_frame(stream: BinaryIO, message: Dict[str, Any]) -> None:
    """Write one frame to a binary stream and flush it."""
    stream.write(encode_frame(message))
    stream.flush()


class FrameParser:
    """Incremental frame decoder over a growing byte buffer.

    Feed arbitrary chunks; :meth:`next_frame` yields decoded messages as
    they complete.  Non-frame lines are discarded as noise; a frame body
    that is not a JSON object raises :class:`ProtocolError` (the peer is
    speaking the protocol but speaking it wrong — that is a broken
    worker, not log noise).
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._need: Optional[int] = None

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_frame(self) -> Optional[Dict[str, Any]]:
        """The next complete frame, or None when more bytes are needed."""
        while True:
            if self._need is None:
                newline = self._buffer.find(b"\n")
                if newline < 0:
                    return None
                line = bytes(self._buffer[:newline])
                del self._buffer[: newline + 1]
                if not line.startswith(_MAGIC_B):
                    continue  # noise line: logs, prints, blank lines
                try:
                    length = int(line[len(_MAGIC_B):].strip())
                except ValueError:
                    continue  # noise that merely resembles a header
                if not 0 <= length <= MAX_FRAME_BYTES:
                    raise ProtocolError(
                        f"frame length {length} out of range"
                    )
                self._need = length
                continue
            if len(self._buffer) < self._need:
                return None
            body = bytes(self._buffer[: self._need])
            del self._buffer[: self._need]
            self._need = None
            try:
                message = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"undecodable frame body: {exc}") from exc
            if not isinstance(message, dict):
                raise ProtocolError(
                    f"frame body must be a JSON object, got "
                    f"{type(message).__name__}"
                )
            return message


def parse_frames(data: bytes) -> List[Dict[str, Any]]:
    """Every valid frame in a complete captured byte stream, in order.

    Frames whose body fails to decode are skipped (in a post-mortem
    parse there is no peer left to fail loudly at); interleaved noise is
    ignored as always.
    """
    parser = FrameParser()
    parser.feed(data)
    frames: List[Dict[str, Any]] = []
    while True:
        try:
            frame = parser.next_frame()
        except ProtocolError:
            continue
        if frame is None:
            return frames
        frames.append(frame)


def last_frame(text: str) -> Optional[Dict[str, Any]]:
    """The final frame in a captured stdout text, or None."""
    frames = parse_frames(text.encode("utf-8"))
    return frames[-1] if frames else None


class FrameStream:
    """Deadline-aware frame reads from a live pipe file descriptor.

    Reads raw bytes with ``os.read`` gated by ``select``, so a read can
    honour a per-job deadline (the pool kills the worker on
    :class:`FrameTimeout`) and a closed pipe surfaces as
    :class:`StreamClosed` rather than a short read.  POSIX only, like
    the pool that uses it.
    """

    def __init__(self, fd: int) -> None:
        self._fd = fd
        self._parser = FrameParser()

    def read_frame(
        self, deadline: Optional[float] = None
    ) -> Dict[str, Any]:
        """The next frame; blocks until one arrives or ``deadline``.

        ``deadline`` is an absolute ``time.monotonic()`` instant (None
        blocks forever).
        """
        while True:
            frame = self._parser.next_frame()
            if frame is not None:
                return frame
            if deadline is None:
                timeout: Optional[float] = None
            else:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    raise FrameTimeout("deadline passed awaiting a frame")
            ready, _, _ = select.select([self._fd], [], [], timeout)
            if not ready:
                raise FrameTimeout("deadline passed awaiting a frame")
            chunk = os.read(self._fd, _READ_CHUNK)
            if not chunk:
                raise StreamClosed("stream closed before a complete frame")
            self._parser.feed(chunk)


def read_frames(fd: int) -> Iterator[Dict[str, Any]]:
    """Blocking frame iterator over ``fd``; stops cleanly at EOF.

    The worker's stdin loop: each yielded message is one request.  A
    :class:`ProtocolError` from the parser propagates — a worker whose
    *scheduler* is corrupt cannot limp along.
    """
    parser = FrameParser()
    while True:
        frame = parser.next_frame()
        if frame is not None:
            yield frame
            continue
        chunk = os.read(fd, _READ_CHUNK)
        if not chunk:
            return
        parser.feed(chunk)
