"""Injectable fault hooks, used by the tests to prove fault tolerance.

Workers consult :func:`injected_kind` at the start of every attempt.
Faults come from two sources, both deterministic so failures reproduce:

* :class:`FaultPlan` — an explicit ``target -> {attempt: kind}`` table,
  passed programmatically (``BatchOptions.fault_plan``) or through the
  ``REPRO_FAULT_PLAN`` environment variable as JSON, e.g.
  ``{"add": {"0": "crash"}}`` crashes the first attempt at repairing
  ``add`` and lets the retry through.
* ``REPRO_FAULT_RATE`` — a probability in ``[0, 1]``; each (target,
  attempt) pair is hashed to decide whether it crashes, so a given rate
  always kills the same attempts.

Kinds: ``crash`` (the worker process dies with :data:`CRASH_EXIT_CODE`,
no output), ``error`` (a retryable :class:`FaultInjected` is raised),
``hang`` (the worker sleeps until the per-job timeout kills it).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

#: Environment variable carrying a JSON fault plan.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Environment variable carrying a crash probability in [0, 1].
FAULT_RATE_ENV = "REPRO_FAULT_RATE"

#: Exit code of a crash-injected worker (distinguishable from Python
#: tracebacks, which exit 1).
CRASH_EXIT_CODE = 13

#: How long a "hang" fault sleeps; tests shrink it via the environment.
HANG_SECONDS_ENV = "REPRO_FAULT_HANG_S"

FAULT_KINDS = ("crash", "error", "hang")


class FaultInjected(Exception):
    """A deliberately injected, retryable worker failure."""


class WorkerCrash(Exception):
    """A worker process died without producing a result (retryable)."""


class JobTimeout(Exception):
    """A job exceeded its per-job timeout (reported, not retried)."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic table of faults: target -> attempt -> kind."""

    faults: Mapping[str, Mapping[int, str]]

    def kind_for(self, target: str, attempt: int) -> Optional[str]:
        return self.faults.get(target, {}).get(attempt)

    def to_env(self) -> str:
        """The ``REPRO_FAULT_PLAN`` JSON encoding of this plan."""
        return json.dumps(
            {
                target: {str(a): kind for a, kind in attempts.items()}
                for target, attempts in self.faults.items()
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(raw: str) -> "FaultPlan":
        data = json.loads(raw)
        faults: Dict[str, Dict[int, str]] = {}
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        for target, attempts in data.items():
            if not isinstance(attempts, dict):
                raise ValueError(
                    f"fault plan for {target!r} must map attempts to kinds"
                )
            faults[target] = {}
            for attempt, kind in attempts.items():
                if kind not in FAULT_KINDS:
                    raise ValueError(f"unknown fault kind {kind!r}")
                faults[target][int(attempt)] = str(kind)
        return FaultPlan(faults=faults)

    @staticmethod
    def from_env() -> Optional["FaultPlan"]:
        raw = os.environ.get(FAULT_PLAN_ENV, "")
        if not raw:
            return None
        return FaultPlan.from_json(raw)


def fault_rate() -> float:
    """The ``REPRO_FAULT_RATE`` probability (0.0 when unset/invalid)."""
    raw = os.environ.get(FAULT_RATE_ENV, "")
    if not raw:
        return 0.0
    try:
        rate = float(raw)
    except ValueError:
        return 0.0
    return min(max(rate, 0.0), 1.0)


def _hash_unit(target: str, attempt: int) -> float:
    """A deterministic value in [0, 1) for one (target, attempt) pair."""
    digest = hashlib.sha256(f"{target}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def injected_kind(
    target: str, attempt: int, plan: Optional[FaultPlan] = None
) -> Optional[str]:
    """The fault to inject for this attempt, if any.

    An explicit plan (argument, else ``REPRO_FAULT_PLAN``) wins; the
    rate-based hook applies otherwise.
    """
    if plan is None:
        plan = FaultPlan.from_env()
    if plan is not None:
        kind = plan.kind_for(target, attempt)
        if kind is not None:
            return kind
    rate = fault_rate()
    if rate > 0.0 and _hash_unit(target, attempt) < rate:
        return "crash"
    return None


def inject(
    target: str,
    attempt: int,
    plan: Optional[FaultPlan] = None,
    in_process: bool = False,
) -> None:
    """Apply the injected fault for this attempt, if any.

    ``crash`` exits the process immediately (simulating an OOM-killed or
    segfaulting worker) — except under the deterministic in-process
    executor, where killing the process would kill the engine itself, so
    the crash surfaces as :class:`WorkerCrash` with the same retry
    semantics.  ``error`` raises :class:`FaultInjected`; ``hang`` sleeps
    long enough for the job timeout to fire.
    """
    kind = injected_kind(target, attempt, plan)
    if kind is None:
        return
    if kind == "crash":
        if in_process:
            raise WorkerCrash(
                f"injected crash for {target!r} attempt {attempt}"
            )
        os._exit(CRASH_EXIT_CODE)
    if kind == "error":
        raise FaultInjected(
            f"injected fault for {target!r} attempt {attempt}"
        )
    if kind == "hang":
        time.sleep(float(os.environ.get(HANG_SECONDS_ENV, "3600")))
