"""The persistent content-addressed result store.

One JSON file per completed job, named by the job key (see
:mod:`repro.service.job`), under ``$REPRO_SERVICE_STORE``,
``--store DIR``, or ``~/.cache/repro/service`` (``$XDG_CACHE_HOME``
respected).  Writes are atomic (tempfile + rename in the store
directory) so a crashed or killed engine can never leave a partial
record; loads are corruption-tolerant — unreadable, non-JSON, or
wrong-shape records count as misses and are overwritten by the next
successful run, never propagated.

The store can be bounded: ``max_entries`` (or
``$REPRO_SERVICE_STORE_MAX``) caps the record count, and every ``put``
past the cap evicts least-recently-*used* records — a ``get`` hit
freshens its record's mtime, so hot results survive while stale ones
age out.  Keys pinned through :meth:`ResultStore.pin` are never
evicted; the scheduler pins a batch's keys for the batch's duration so
a concurrent writer can never prune a record an in-flight batch is
about to read.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .job import SCHEMA_VERSION

#: Environment variable overriding the default store directory.
STORE_ENV_VAR = "REPRO_SERVICE_STORE"

#: Environment variable bounding the store's record count (LRU evicted).
STORE_MAX_ENV_VAR = "REPRO_SERVICE_STORE_MAX"


def default_max_entries() -> Optional[int]:
    """``$REPRO_SERVICE_STORE_MAX`` when a positive int, else unbounded."""
    raw = os.environ.get(STORE_MAX_ENV_VAR, "")
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


def default_store_dir() -> str:
    """``$REPRO_SERVICE_STORE``, else ``~/.cache/repro/service``."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return override
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(cache_home, "repro", "service")


class ResultStore:
    """Content-addressed persistence for job results, with hit counters."""

    def __init__(
        self,
        root: Optional[str] = None,
        max_entries: Optional[int] = None,
    ) -> None:
        self.root = root if root is not None else default_store_dir()
        if max_entries is None:
            max_entries = default_max_entries()
        #: Record-count bound; values below 1 mean unbounded.
        self.max_entries = (
            max_entries if max_entries and max_entries >= 1 else None
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._pin_lock = threading.Lock()
        self._pins: Dict[str, int] = {}

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- Records -----------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record for ``key``, or ``None`` (counted).

        A record is only returned when it parses as JSON and carries the
        expected envelope (matching key and schema version, a ``result``
        object); anything else — truncated writes from older tools,
        hand-edited files, disk corruption — is a miss.
        """
        try:
            with open(self.path_for(key)) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema_version") != SCHEMA_VERSION
            or record.get("key") != key
            or not isinstance(record.get("result"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        if self.max_entries is not None:
            # Freshen the record so LRU eviction sees it as recent.
            try:
                os.utime(self.path_for(key))
            except OSError:
                pass
        return record

    def put(self, key: str, record: Dict[str, Any]) -> str:
        """Atomically persist ``record`` under ``key``; returns the path."""
        path = self.path_for(key)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp_", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        self._prune()
        return path

    # -- Bounded retention -------------------------------------------------

    @contextmanager
    def pin(self, keys: Iterable[str]) -> Iterator[None]:
        """Hold ``keys`` exempt from eviction for the ``with`` body.

        Pins are reference-counted, so overlapping batches sharing a
        key stay protected until the *last* one finishes.
        """
        held = list(keys)
        with self._pin_lock:
            for key in held:
                self._pins[key] = self._pins.get(key, 0) + 1
        try:
            yield
        finally:
            with self._pin_lock:
                for key in held:
                    count = self._pins.get(key, 0) - 1
                    if count <= 0:
                        self._pins.pop(key, None)
                    else:
                        self._pins[key] = count

    def pinned(self) -> List[str]:
        with self._pin_lock:
            return sorted(self._pins)

    def _prune(self) -> None:
        """Evict least-recently-used records past ``max_entries``.

        Pinned keys are skipped no matter how old; disappearing files
        (a concurrent pruner) are ignored, not errors.
        """
        if self.max_entries is None:
            return
        try:
            entries = os.listdir(self.root)
        except OSError:
            return
        aged: List[Tuple[float, str]] = []
        for entry in entries:
            if not entry.endswith(".json") or entry.startswith("."):
                continue
            try:
                mtime = os.path.getmtime(os.path.join(self.root, entry))
            except OSError:
                continue
            aged.append((mtime, entry))
        excess = len(aged) - self.max_entries
        if excess <= 0:
            return
        with self._pin_lock:
            pinned = set(self._pins)
        aged.sort()
        for _mtime, entry in aged:
            if excess <= 0:
                break
            if entry[: -len(".json")] in pinned:
                continue
            try:
                os.unlink(os.path.join(self.root, entry))
            except OSError:
                continue
            self.evictions += 1
            excess -= 1

    # -- Maintenance -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of records currently on disk."""
        try:
            return sum(
                1
                for entry in os.listdir(self.root)
                if entry.endswith(".json") and not entry.startswith(".")
            )
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        try:
            entries = os.listdir(self.root)
        except OSError:
            return 0
        for entry in entries:
            if entry.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.root, entry))
                    removed += 1
                except OSError:
                    pass
        return removed
