"""The persistent content-addressed result store.

One JSON file per completed job, named by the job key (see
:mod:`repro.service.job`), under ``$REPRO_SERVICE_STORE``,
``--store DIR``, or ``~/.cache/repro/service`` (``$XDG_CACHE_HOME``
respected).  Writes are atomic (tempfile + rename in the store
directory) so a crashed or killed engine can never leave a partial
record; loads are corruption-tolerant — unreadable, non-JSON, or
wrong-shape records count as misses and are overwritten by the next
successful run, never propagated.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

from .job import SCHEMA_VERSION

#: Environment variable overriding the default store directory.
STORE_ENV_VAR = "REPRO_SERVICE_STORE"


def default_store_dir() -> str:
    """``$REPRO_SERVICE_STORE``, else ``~/.cache/repro/service``."""
    override = os.environ.get(STORE_ENV_VAR)
    if override:
        return override
    cache_home = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(cache_home, "repro", "service")


class ResultStore:
    """Content-addressed persistence for job results, with hit counters."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_store_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- Records -----------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored record for ``key``, or ``None`` (counted).

        A record is only returned when it parses as JSON and carries the
        expected envelope (matching key and schema version, a ``result``
        object); anything else — truncated writes from older tools,
        hand-edited files, disk corruption — is a miss.
        """
        try:
            with open(self.path_for(key)) as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.misses += 1
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema_version") != SCHEMA_VERSION
            or record.get("key") != key
            or not isinstance(record.get("result"), dict)
        ):
            self.misses += 1
            return None
        self.hits += 1
        return record

    def put(self, key: str, record: Dict[str, Any]) -> str:
        """Atomically persist ``record`` under ``key``; returns the path."""
        path = self.path_for(key)
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp_", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(record, handle, indent=2, sort_keys=True)
                handle.write("\n")
            os.replace(tmp_path, path)
        except BaseException:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
            raise
        return path

    # -- Maintenance -------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of records currently on disk."""
        try:
            return sum(
                1
                for entry in os.listdir(self.root)
                if entry.endswith(".json") and not entry.startswith(".")
            )
        except OSError:
            return 0

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        try:
            entries = os.listdir(self.root)
        except OSError:
            return 0
        for entry in entries:
            if entry.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.root, entry))
                    removed += 1
                except OSError:
                    pass
        return removed
