"""Binary natural numbers (Figure 9): ``positive`` and ``N``.

This module reproduces the Coq standard library pieces that Section 6.3
depends on:

* ``positive`` with constructors in the paper's order (``xI``, ``xO``,
  ``xH``) and ``N`` (``N0``, ``Npos``),
* ``Pos.succ``, ``N.succ``, binary (logarithmic) addition ``Pos.add`` /
  ``N.add``,
* the Peano recursors ``Pos.peano_rect`` / ``N.peano_rect``, defined with
  the *primitive* eliminators only (no fixpoints), and
* the propositional iota rules ``Pos.peano_rect_succ`` /
  ``N.peano_rect_succ``, which the manual configuration of Section 6.3
  turns into the ``Iota`` of the nat <-> N transformation.

``Pos.peano_rect`` uses the classic motive-shifting trick: eliminating
``p`` at the motive ``fun p => forall P, P xH -> (forall q, P q ->
P (succ q)) -> P p`` lets the ``xO``/``xI`` cases re-instantiate the
inner motive at ``fun p => P (xO p)``, which is how the Coq standard
library's fixpoint is expressed with a single structural eliminator.
"""

from __future__ import annotations

from ..kernel.env import Environment
from ..kernel.inductive import ConstructorDecl, InductiveDecl
from ..kernel.term import Ind, SET
from ..syntax.parser import parse


def declare_binary(env: Environment) -> None:
    """Declare ``positive``, ``N``, and their operations and lemmas."""
    _declare_types(env)
    _define_succ(env)
    _define_add(env)
    _define_peano_rect(env)
    _prove_peano_rect_succ(env)
    _define_conversions(env)
    _prove_add_succ_l(env)


def _declare_types(env: Environment) -> None:
    env.declare_inductive(
        InductiveDecl(
            name="positive",
            params=(),
            indices=(),
            sort=SET,
            constructors=(
                ConstructorDecl("xI", args=(("p", Ind("positive")),)),
                ConstructorDecl("xO", args=(("p", Ind("positive")),)),
                ConstructorDecl("xH", args=()),
            ),
        )
    )
    env.declare_inductive(
        InductiveDecl(
            name="N",
            params=(),
            indices=(),
            sort=SET,
            constructors=(
                ConstructorDecl("N0", args=()),
                ConstructorDecl("Npos", args=(("p", Ind("positive")),)),
            ),
        )
    )


def _define_succ(env: Environment) -> None:
    env.define(
        "Pos.succ",
        parse(
            env,
            """
            fun (p : positive) =>
              Elim[positive](p; fun (_ : positive) => positive)
                { fun (q : positive) (IH : positive) => xO IH,
                  fun (q : positive) (IH : positive) => xI q,
                  xO xH }
            """,
        ),
    )
    env.define(
        "N.succ",
        parse(
            env,
            """
            fun (n : N) =>
              Elim[N](n; fun (_ : N) => N)
                { Npos xH,
                  fun (p : positive) => Npos (Pos.succ p) }
            """,
        ),
    )


def _define_add(env: Environment) -> None:
    # Binary addition without a separate carry function:
    #   xI a + xI b = xO (succ (a + b));   xI a + xO b = xI (a + b)
    #   xI a + xH   = xO (succ a)
    #   xO a + xI b = xI (a + b);          xO a + xO b = xO (a + b)
    #   xO a + xH   = xI a
    #   xH   + b    = succ b
    env.define(
        "Pos.add",
        parse(
            env,
            """
            fun (x : positive) =>
              Elim[positive](x;
                  fun (_ : positive) => positive -> positive)
                { fun (a : positive) (IH : positive -> positive)
                      (y : positive) =>
                    Elim[positive](y; fun (_ : positive) => positive)
                      { fun (b : positive) (IH2 : positive) =>
                          xO (Pos.succ (IH b)),
                        fun (b : positive) (IH2 : positive) => xI (IH b),
                        xO (Pos.succ a) },
                  fun (a : positive) (IH : positive -> positive)
                      (y : positive) =>
                    Elim[positive](y; fun (_ : positive) => positive)
                      { fun (b : positive) (IH2 : positive) => xI (IH b),
                        fun (b : positive) (IH2 : positive) => xO (IH b),
                        xI a },
                  fun (y : positive) => Pos.succ y }
            """,
        ),
    )
    env.define(
        "N.add",
        parse(
            env,
            """
            fun (n m : N) =>
              Elim[N](n; fun (_ : N) => N)
                { m,
                  fun (p : positive) =>
                    Elim[N](m; fun (_ : N) => N)
                      { Npos p,
                        fun (q : positive) => Npos (Pos.add p q) } }
            """,
        ),
    )


def _define_peano_rect(env: Environment) -> None:
    env.define(
        "Pos.peano_rect",
        parse(
            env,
            """
            fun (P : positive -> Type2) (a : P xH)
                (f : forall (p : positive), P p -> P (Pos.succ p))
                (p : positive) =>
              Elim[positive](p;
                  fun (p : positive) =>
                    forall (Q : positive -> Type2),
                      Q xH ->
                      (forall (q : positive), Q q -> Q (Pos.succ q)) ->
                      Q p)
                { fun (q : positive)
                      (IH : forall (Q : positive -> Type2),
                              Q xH ->
                              (forall (r : positive),
                                 Q r -> Q (Pos.succ r)) ->
                              Q q)
                      (Q : positive -> Type2) (a0 : Q xH)
                      (f0 : forall (r : positive), Q r -> Q (Pos.succ r)) =>
                    f0 (xO q)
                       (IH (fun (r : positive) => Q (xO r))
                           (f0 xH a0)
                           (fun (r : positive) (x : Q (xO r)) =>
                              f0 (xI r) (f0 (xO r) x))),
                  fun (q : positive)
                      (IH : forall (Q : positive -> Type2),
                              Q xH ->
                              (forall (r : positive),
                                 Q r -> Q (Pos.succ r)) ->
                              Q q)
                      (Q : positive -> Type2) (a0 : Q xH)
                      (f0 : forall (r : positive), Q r -> Q (Pos.succ r)) =>
                    IH (fun (r : positive) => Q (xO r))
                       (f0 xH a0)
                       (fun (r : positive) (x : Q (xO r)) =>
                          f0 (xI r) (f0 (xO r) x)),
                  fun (Q : positive -> Type2) (a0 : Q xH)
                      (f0 : forall (r : positive), Q r -> Q (Pos.succ r)) =>
                    a0 }
                P a f
            """,
        ),
    )
    env.define(
        "N.peano_rect",
        parse(
            env,
            """
            fun (P : N -> Type2) (a : P N0)
                (f : forall (n : N), P n -> P (N.succ n))
                (n : N) =>
              Elim[N](n; fun (n : N) => P n)
                { a,
                  fun (p : positive) =>
                    Pos.peano_rect
                      (fun (q : positive) => P (Npos q))
                      (f N0 a)
                      (fun (q : positive) (x : P (Npos q)) =>
                         f (Npos q) x)
                      p }
            """,
        ),
    )


def _prove_peano_rect_succ(env: Environment) -> None:
    """Prove the propositional iota rules (the key lemmas of Section 6.3)."""
    from ..tactics import prove
    from ..tactics.tactics import induction, intro, intros, reflexivity, rewrite

    # The induction needs an IH that is general in (P, a, f): the xI case
    # re-instantiates them at the shifted motive P o xO.  So we prove an
    # auxiliary statement with ``p`` quantified first, then wrap it into
    # the standard argument order.
    aux_stmt = parse(
        env,
        """
        forall (p : positive) (P : positive -> Type1) (a : P xH)
               (f : forall (q : positive), P q -> P (Pos.succ q)),
          eq (P (Pos.succ p))
             (Pos.peano_rect P a f (Pos.succ p))
             (f p (Pos.peano_rect P a f p))
        """,
    )
    step = (
        "(fun (r : positive) (x : P (xO r)) => f (xI r) (f (xO r) x))"
    )
    env.define(
        "Pos.peano_rect_succ_aux",
        prove(
            env,
            aux_stmt,
            intro("p"),
            induction("p", names=[["q", "IHq"], ["q", "IHq"], []]),
            # xI q: succ (xI q) = xO (succ q); rewrite with the IH at the
            # shifted motive, then both sides coincide definitionally.
            intros("P", "a", "f"),
            rewrite(
                "IHq (fun (r : positive) => P (xO r)) (f xH a) " + step
            ),
            reflexivity(),
            # xO q: both sides reduce to the same term.
            intros("P", "a", "f"),
            reflexivity(),
            # xH
            intros("P", "a", "f"),
            reflexivity(),
        ),
        type=aux_stmt,
    )
    pos_stmt = parse(
        env,
        """
        forall (P : positive -> Type1) (a : P xH)
               (f : forall (p : positive), P p -> P (Pos.succ p))
               (p : positive),
          eq (P (Pos.succ p))
             (Pos.peano_rect P a f (Pos.succ p))
             (f p (Pos.peano_rect P a f p))
        """,
    )
    env.define(
        "Pos.peano_rect_succ",
        parse(
            env,
            """
            fun (P : positive -> Type1) (a : P xH)
                (f : forall (p : positive), P p -> P (Pos.succ p))
                (p : positive) =>
              Pos.peano_rect_succ_aux p P a f
            """,
        ),
        type=pos_stmt,
    )

    n_stmt = parse(
        env,
        """
        forall (P : N -> Type1) (a : P N0)
               (f : forall (n : N), P n -> P (N.succ n))
               (n : N),
          eq (P (N.succ n))
             (N.peano_rect P a f (N.succ n))
             (f n (N.peano_rect P a f n))
        """,
    )
    env.define(
        "N.peano_rect_succ",
        prove(
            env,
            n_stmt,
            intros("P", "a", "f", "n"),
            induction("n", names=[[], ["p"]]),
            reflexivity(),
            rewrite(
                "Pos.peano_rect_succ (fun (q : positive) => P (Npos q)) "
                "(f N0 a) "
                "(fun (q : positive) (x : P (Npos q)) => f (Npos q) x) p"
            ),
            reflexivity(),
        ),
        type=n_stmt,
    )


def _define_conversions(env: Environment) -> None:
    """Conversions between unary and binary numbers (used by tests)."""
    env.define(
        "N.of_nat",
        parse(
            env,
            """
            fun (n : nat) =>
              Elim[nat](n; fun (_ : nat) => N)
                { N0, fun (p : nat) (IH : N) => N.succ IH }
            """,
        ),
    )
    env.define(
        "N.double",
        parse(
            env,
            """
            fun (n : N) =>
              Elim[N](n; fun (_ : N) => N)
                { N0, fun (p : positive) => Npos (xO p) }
            """,
        ),
    )
    env.define(
        "N.div2",
        parse(
            env,
            """
            fun (n : N) =>
              Elim[N](n; fun (_ : N) => N)
                { N0,
                  fun (p : positive) =>
                    Elim[positive](p; fun (_ : positive) => N)
                      { fun (q : positive) (IH : N) => Npos q,
                        fun (q : positive) (IH : N) => Npos q,
                        N0 } }
            """,
        ),
    )
    env.define(
        "N.odd",
        parse(
            env,
            """
            fun (n : N) =>
              Elim[N](n; fun (_ : N) => bool)
                { false,
                  fun (p : positive) =>
                    Elim[positive](p; fun (_ : positive) => bool)
                      { fun (q : positive) (IH : bool) => true,
                        fun (q : positive) (IH : bool) => false,
                        true } }
            """,
        ),
    )
    env.define(
        "N.to_nat",
        parse(
            env,
            """
            fun (n : N) =>
              N.peano_rect (fun (_ : N) => nat) O
                (fun (m : N) (IH : nat) => S IH) n
            """,
        ),
    )


def _prove_add_succ_l(env: Environment) -> None:
    """``Pos.add_succ_l`` / ``N.add_succ_l``, used by ``add_fast_add``."""
    from ..tactics import prove
    from ..tactics.tactics import induction, intro, intros, reflexivity, rewrite, simpl

    pos_stmt = parse(
        env,
        """
        forall (p q : positive),
          eq positive (Pos.add (Pos.succ p) q)
                      (Pos.succ (Pos.add p q))
        """,
    )
    env.define(
        "Pos.add_succ_l",
        prove(
            env,
            pos_stmt,
            intro("p"),
            induction("p", names=[["a", "IHa"], ["a", "IHa"], []]),
            # p = xI a: destruct q; the xI/xO subcases rewrite with IHa.
            intro("q"),
            induction("q", names=[["b", "IHb"], ["b", "IHb"], []]),
            simpl(),
            rewrite("IHa b"),
            reflexivity(),
            simpl(),
            rewrite("IHa b"),
            reflexivity(),
            reflexivity(),
            # p = xO a: every subcase is definitional.
            intro("q"),
            induction("q", names=[["b", "IHb"], ["b", "IHb"], []]),
            reflexivity(),
            reflexivity(),
            reflexivity(),
            # p = xH: destruct q; all subcases definitional.
            intro("q"),
            induction("q", names=[["b", "IHb"], ["b", "IHb"], []]),
            reflexivity(),
            reflexivity(),
            reflexivity(),
        ),
        type=pos_stmt,
    )

    n_stmt = parse(
        env,
        """
        forall (n m : N),
          eq N (N.add (N.succ n) m) (N.succ (N.add n m))
        """,
    )
    env.define(
        "N.add_succ_l",
        prove(
            env,
            n_stmt,
            intros("n", "m"),
            induction("n", names=[[], ["p"]]),
            # n = N0: destruct m.
            induction("m", names=[[], ["q"]]),
            reflexivity(),
            reflexivity(),
            # n = Npos p: destruct m.
            induction("m", names=[[], ["q"]]),
            reflexivity(),
            simpl(),
            rewrite("Pos.add_succ_l p q"),
            reflexivity(),
        ),
        type=n_stmt,
    )
