"""The object-language standard library.

:func:`make_env` builds a fresh environment with the prelude and the
selected modules, in dependency order.  Everything is declared as checked
terms — no axioms.
"""

from __future__ import annotations

from ..kernel.env import Environment
from .binlib import declare_binary
from .bitvec import declare_bitvec
from .listlib import declare_list, declare_list_type
from .natlib import declare_nat, int_of_nat, nat_of_int
from .prelude import declare_prelude
from .recordlib import declare_record, record_fields
from .vectorlib import declare_vector


def make_env(
    lists: bool = True,
    vectors: bool = True,
    binary: bool = False,
    bitvectors: bool = False,
) -> Environment:
    """Build an environment with the prelude and the selected modules."""
    env = Environment()
    declare_prelude(env)
    declare_nat(env)
    if lists:
        declare_list(env)
    if vectors:
        declare_vector(env)
    if binary or bitvectors:
        declare_binary(env)
    if bitvectors:
        if not vectors:
            raise ValueError("bitvectors require vectors")
        declare_bitvec(env)
    return env


__all__ = [
    "Environment",
    "declare_binary",
    "declare_bitvec",
    "declare_list",
    "declare_list_type",
    "declare_nat",
    "declare_prelude",
    "declare_record",
    "declare_vector",
    "int_of_nat",
    "make_env",
    "nat_of_int",
    "record_fields",
]
