"""Bitvectors: the ``seq``/``bvNat``/``bvAdd`` vocabulary of Section 6.4.

The Galois case study (Figure 17) works with compiler-generated tuples
whose fields are bitvectors (``seq 32 bool``) manipulated with ``bvAdd``
and ``bvNat``.  We implement the same vocabulary on top of our own
substrates: ``seq n T := vector T n`` (little-endian for bool), with
arithmetic routed through binary naturals:

* ``bvToN`` folds a bit vector to an ``N``,
* ``bvN n m`` produces the low ``n`` bits of ``m`` (truncating, as
  hardware addition does),
* ``bvNat n k := bvN n (N.of_nat k)`` and
  ``bvAdd n x y := bvN n (N.add (bvToN x) (bvToN y))``.

Everything computes, so facts like ``bvAdd 2 (bvNat 2 0) (bvNat 2 1) =
bvNat 2 1`` hold by ``reflexivity`` — which is what the ``corkLemma``
proof in the paper relies on.
"""

from __future__ import annotations

from ..kernel.env import Environment
from ..syntax.parser import parse


def declare_bitvec(env: Environment) -> None:
    """Declare ``seq`` and the bitvector operations."""
    env.define(
        "seq",
        parse(env, "fun (n : nat) (T : Type1) => vector T n"),
    )
    # Fold a (little-endian) bit vector to a binary natural.
    env.define(
        "bvToN",
        parse(
            env,
            """
            fun (n : nat) (v : vector bool n) =>
              Elim[vector](v;
                  fun (m : nat) (_ : vector bool m) => N)
                { N0,
                  fun (b : bool) (m : nat) (rest : vector bool m)
                      (IH : N) =>
                    Elim[bool](b; fun (_ : bool) => N)
                      { N.succ (N.double IH), N.double IH } }
            """,
        ),
    )
    # Low n bits of a binary natural, little-endian.
    env.define(
        "bvN",
        parse(
            env,
            """
            fun (n : nat) =>
              Elim[nat](n;
                  fun (m : nat) => N -> vector bool m)
                { fun (v : N) => vnil bool,
                  fun (m : nat) (IH : N -> vector bool m) (v : N) =>
                    vcons bool (N.odd v) m (IH (N.div2 v)) }
            """,
        ),
    )
    env.define(
        "bvNat",
        parse(env, "fun (n k : nat) => bvN n (N.of_nat k)"),
    )
    env.define(
        "bvAdd",
        parse(
            env,
            """
            fun (n : nat) (x y : vector bool n) =>
              bvN n (N.add (bvToN n x) (bvToN n y))
            """,
        ),
    )
