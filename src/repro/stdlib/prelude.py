"""The logical prelude of the object language.

Declares the standard inductives (``eq``, ``unit``, ``empty``, ``bool``,
``and``, ``or``, ``prod``, ``sigT``) and the equality combinators used by
proofs and by the tactic decompiler (``eq_sym``, ``eq_trans``, ``f_equal``,
``eq_ind``, ``eq_ind_r``).

Conventions: data lives in ``Set``; type parameters are ``Type1``;
propositions live in ``Prop``.  The kernel is liberal about elimination
sorts, as is the paper's CIC_omega.
"""

from __future__ import annotations

from ..kernel.env import Environment
from ..kernel.inductive import ConstructorDecl, InductiveDecl
from ..kernel.term import App, PROP, Rel, SET, type_sort
from ..syntax.parser import parse

TYPE1 = type_sort(1)


def declare_prelude(env: Environment) -> None:
    """Populate ``env`` with the logical prelude."""
    _declare_unit(env)
    _declare_empty(env)
    _declare_bool(env)
    _declare_eq(env)
    _declare_logic(env)
    _declare_prod(env)
    _declare_sigma(env)
    _declare_option(env)
    _declare_sum(env)


def _declare_unit(env: Environment) -> None:
    env.declare_inductive(
        InductiveDecl(
            name="unit",
            params=(),
            indices=(),
            sort=SET,
            constructors=(ConstructorDecl("tt", args=()),),
        )
    )


def _declare_empty(env: Environment) -> None:
    env.declare_inductive(
        InductiveDecl(
            name="empty",
            params=(),
            indices=(),
            sort=PROP,
            constructors=(),
        )
    )


def _declare_bool(env: Environment) -> None:
    env.declare_inductive(
        InductiveDecl(
            name="bool",
            params=(),
            indices=(),
            sort=SET,
            constructors=(
                ConstructorDecl("true", args=()),
                ConstructorDecl("false", args=()),
            ),
        )
    )
    env.define(
        "negb",
        parse(
            env,
            "fun (b : bool) => "
            "Elim[bool](b; fun (_ : bool) => bool){ false, true }",
        ),
    )
    env.define(
        "andb",
        parse(
            env,
            "fun (b1 b2 : bool) => "
            "Elim[bool](b1; fun (_ : bool) => bool){ b2, false }",
        ),
    )
    env.define(
        "orb",
        parse(
            env,
            "fun (b1 b2 : bool) => "
            "Elim[bool](b1; fun (_ : bool) => bool){ true, b2 }",
        ),
    )


def _declare_eq(env: Environment) -> None:
    # eq (A : Type1) (x : A) : A -> Prop  with  eq_refl : eq A x x
    env.declare_inductive(
        InductiveDecl(
            name="eq",
            params=(("A", TYPE1), ("x", Rel(0))),
            indices=(("y", Rel(1)),),
            sort=PROP,
            constructors=(
                ConstructorDecl(
                    "eq_refl", args=(), result_indices=(Rel(0),)
                ),
            ),
        )
    )
    # Non-dependent eliminator (forward rewrite): replaces x by y.
    env.define(
        "eq_ind",
        parse(
            env,
            "fun (A : Type1) (x : A) (P : A -> Type2) (px : P x) (y : A) "
            "(e : eq A x y) => "
            "Elim[eq](e; fun (y : A) (_ : eq A x y) => P y){ px }",
        ),
    )
    # Reverse rewrite: from P x and y = x conclude P y.
    env.define(
        "eq_sym",
        parse(
            env,
            "fun (A : Type1) (x y : A) (e : eq A x y) => "
            "Elim[eq](e; fun (y : A) (_ : eq A x y) => eq A y x)"
            "{ eq_refl A x }",
        ),
    )
    env.define(
        "eq_ind_r",
        parse(
            env,
            "fun (A : Type1) (x : A) (P : A -> Type2) (px : P x) (y : A) "
            "(e : eq A y x) => "
            "eq_ind A x P px y (eq_sym A y x e)",
        ),
    )
    env.define(
        "eq_trans",
        parse(
            env,
            "fun (A : Type1) (x y z : A) (e1 : eq A x y) (e2 : eq A y z) => "
            "eq_ind A y (fun (w : A) => eq A x w) e1 z e2",
        ),
    )
    env.define(
        "f_equal",
        parse(
            env,
            "fun (A B : Type1) (f : A -> B) (x y : A) (e : eq A x y) => "
            "eq_ind A x (fun (w : A) => eq B (f x) (f w)) "
            "(eq_refl B (f x)) y e",
        ),
    )


def _declare_logic(env: Environment) -> None:
    env.declare_inductive(
        InductiveDecl(
            name="and",
            params=(("A", PROP), ("B", PROP)),
            indices=(),
            sort=PROP,
            constructors=(
                ConstructorDecl(
                    "conj", args=(("a", Rel(1)), ("b", Rel(1)))
                ),
            ),
        )
    )
    env.declare_inductive(
        InductiveDecl(
            name="or",
            params=(("A", PROP), ("B", PROP)),
            indices=(),
            sort=PROP,
            constructors=(
                ConstructorDecl("or_introl", args=(("a", Rel(1)),)),
                ConstructorDecl("or_intror", args=(("b", Rel(0)),)),
            ),
        )
    )
    env.define(
        "proj1",
        parse(
            env,
            "fun (A B : Prop) (H : and A B) => "
            "Elim[and](H; fun (_ : and A B) => A)"
            "{ fun (a : A) (b : B) => a }",
        ),
    )
    env.define(
        "proj2",
        parse(
            env,
            "fun (A B : Prop) (H : and A B) => "
            "Elim[and](H; fun (_ : and A B) => B)"
            "{ fun (a : A) (b : B) => b }",
        ),
    )


def _declare_prod(env: Environment) -> None:
    env.declare_inductive(
        InductiveDecl(
            name="prod",
            params=(("A", TYPE1), ("B", TYPE1)),
            indices=(),
            sort=TYPE1,
            constructors=(
                ConstructorDecl(
                    "pair", args=(("a", Rel(1)), ("b", Rel(1)))
                ),
            ),
        )
    )
    env.define(
        "fst",
        parse(
            env,
            "fun (A B : Type1) (p : prod A B) => "
            "Elim[prod](p; fun (_ : prod A B) => A)"
            "{ fun (a : A) (b : B) => a }",
        ),
    )
    env.define(
        "snd",
        parse(
            env,
            "fun (A B : Type1) (p : prod A B) => "
            "Elim[prod](p; fun (_ : prod A B) => B)"
            "{ fun (a : A) (b : B) => b }",
        ),
    )
    # Surjective pairing, proved by eliminating the pair.
    env.define(
        "surjective_pairing",
        parse(
            env,
            "fun (A B : Type1) (p : prod A B) => "
            "Elim[prod](p; fun (p : prod A B) => "
            "eq (prod A B) p (pair A B (fst A B p) (snd A B p)))"
            "{ fun (a : A) (b : B) => eq_refl (prod A B) (pair A B a b) }",
        ),
    )


def _declare_sigma(env: Environment) -> None:
    # sigT (A : Type1) (P : A -> Type1) with existT : forall x, P x -> sigT.
    env.declare_inductive(
        InductiveDecl(
            name="sigT",
            params=(
                ("A", TYPE1),
                ("P", _predicate_type()),
            ),
            indices=(),
            sort=TYPE1,
            constructors=(
                ConstructorDecl(
                    "existT",
                    args=(
                        ("x", Rel(1)),
                        ("p", App(Rel(1), Rel(0))),
                    ),
                ),
            ),
        )
    )
    env.define(
        "projT1",
        parse(
            env,
            "fun (A : Type1) (P : A -> Type1) (s : sigT A P) => "
            "Elim[sigT](s; fun (_ : sigT A P) => A)"
            "{ fun (x : A) (p : P x) => x }",
        ),
    )
    env.define(
        "projT2",
        parse(
            env,
            "fun (A : Type1) (P : A -> Type1) (s : sigT A P) => "
            "Elim[sigT](s; fun (s : sigT A P) => P (projT1 A P s))"
            "{ fun (x : A) (p : P x) => p }",
        ),
    )
    # Propositional eta for sigma (Section 4.1.2 uses exactly this shape).
    env.define(
        "sigT_eta",
        parse(
            env,
            "fun (A : Type1) (P : A -> Type1) (s : sigT A P) => "
            "Elim[sigT](s; fun (s : sigT A P) => "
            "eq (sigT A P) s (existT A P (projT1 A P s) (projT2 A P s)))"
            "{ fun (x : A) (p : P x) => "
            "eq_refl (sigT A P) (existT A P x p) }",
        ),
    )


def _declare_option(env: Environment) -> None:
    env.declare_inductive(
        InductiveDecl(
            name="option",
            params=(("A", TYPE1),),
            indices=(),
            sort=TYPE1,
            constructors=(
                ConstructorDecl("None_", args=()),
                ConstructorDecl("Some", args=(("a", Rel(0)),)),
            ),
        )
    )
    env.define(
        "option_map",
        parse(
            env,
            """
            fun (A B : Type1) (f : A -> B) (o : option A) =>
              Elim[option](o; fun (_ : option A) => option B)
                { None_ B, fun (a : A) => Some B (f a) }
            """,
        ),
    )
    env.define(
        "option_default",
        parse(
            env,
            """
            fun (A : Type1) (d : A) (o : option A) =>
              Elim[option](o; fun (_ : option A) => A)
                { d, fun (a : A) => a }
            """,
        ),
    )


def _declare_sum(env: Environment) -> None:
    env.declare_inductive(
        InductiveDecl(
            name="sum",
            params=(("A", TYPE1), ("B", TYPE1)),
            indices=(),
            sort=TYPE1,
            constructors=(
                ConstructorDecl("inl", args=(("a", Rel(1)),)),
                ConstructorDecl("inr", args=(("b", Rel(0)),)),
            ),
        )
    )
    env.define(
        "sum_swap",
        parse(
            env,
            """
            fun (A B : Type1) (s : sum A B) =>
              Elim[sum](s; fun (_ : sum A B) => sum B A)
                { fun (a : A) => inr B A a,
                  fun (b : B) => inl B A b }
            """,
        ),
    )


def _predicate_type():
    """Type of the sigma predicate parameter: ``A -> Type1``.

    Written as a raw term (``Rel(0)`` is the parameter ``A``).
    """
    from ..kernel.term import Pi

    return Pi("_", Rel(0), TYPE1)
