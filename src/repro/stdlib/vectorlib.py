"""Length-indexed vectors (Figure 5 right).

``vector T : nat -> Set`` with ``vnil : vector T O`` and
``vcons : T -> forall n, vector T n -> vector T (S n)`` — the argument
order of the paper's Figure 5.  The packed form ``Sigma (n : nat).
vector T n`` used by the ornament configuration (Section 6.2) is provided
as the definition ``packed_vector``.
"""

from __future__ import annotations

from ..kernel.env import Environment
from ..kernel.inductive import ConstructorDecl, InductiveDecl
from ..kernel.term import App, Constr, Ind, Rel, SET, type_sort
from ..syntax.parser import parse

TYPE1 = type_sort(1)


def declare_vector(env: Environment, name: str = "vector") -> None:
    """Declare the vector family and helpers."""
    env.declare_inductive(
        InductiveDecl(
            name=name,
            params=(("T", TYPE1),),
            indices=(("n", Ind("nat")),),
            sort=SET,
            constructors=(
                ConstructorDecl(
                    "vnil", args=(), result_indices=(Constr("nat", 0),)
                ),
                ConstructorDecl(
                    "vcons",
                    args=(
                        ("t", Rel(0)),
                        ("n", Ind("nat")),
                        ("v", Ind(name).app(Rel(2), Rel(0))),
                    ),
                    result_indices=(App(Constr("nat", 1), Rel(1)),),
                ),
            ),
        )
    )
    # The packed form: Sigma (n : nat). vector T n.
    env.define(
        "packed_vector",
        parse(
            env,
            f"fun (T : Type1) => sigT nat (fun (n : nat) => {name} T n)",
        ),
    )
    env.define(
        "vector_length",
        parse(
            env,
            f"fun (T : Type1) (s : packed_vector T) => "
            f"projT1 nat (fun (n : nat) => {name} T n) s",
        ),
    )
