"""Polymorphic lists: the type, functions, and the paper's lemmas.

Besides the standard ``list`` (``nil`` first, as in Figure 1 left), this
module can declare *swapped* variants (``cons`` first, Figure 1 right)
under a module prefix — the setup of the paper's Section 2 example, where
``Old.list`` proofs are repaired into ``New.list`` proofs.

The lemmas proved here are exactly the dependencies of the Section 2 case
study: ``app_nil_r``, ``app_assoc``, and ``rev_app_distr``, plus the
Devoid example functions ``zip``, ``zip_with`` and the lemma
``zip_with_is_zip`` (Section 6.2).
"""

from __future__ import annotations


from ..kernel.env import Environment
from ..kernel.inductive import ConstructorDecl, InductiveDecl
from ..kernel.term import Ind, Rel, SET, type_sort
from ..syntax.parser import parse

TYPE1 = type_sort(1)


def declare_list_type(
    env: Environment, name: str = "list", swapped: bool = False
) -> None:
    """Declare a list type; ``swapped`` puts ``cons`` before ``nil``."""
    nil = ConstructorDecl("nil", args=())
    cons = ConstructorDecl(
        "cons",
        args=(("t", Rel(0)), ("l", Ind(name).app(Rel(1)))),
    )
    constructors = (cons, nil) if swapped else (nil, cons)
    env.declare_inductive(
        InductiveDecl(
            name=name,
            params=(("T", TYPE1),),
            indices=(),
            sort=SET,
            constructors=constructors,
        )
    )


def declare_list(env: Environment, name: str = "list") -> None:
    """Declare ``list`` (standard order) with functions and lemmas."""
    declare_list_type(env, name=name, swapped=False)
    _define_functions(env, name)
    _prove_lemmas(env, name)
    _define_zip(env, name)
    _define_map_fold(env, name)
    _prove_more_lemmas(env, name)


def _q(name: str, item: str) -> str:
    """Qualified global name for an item of the list module ``name``."""
    if name == "list":
        return item
    return f"{name}.{item}"


def _define_functions(env: Environment, name: str) -> None:
    nil = f"{name}.nil"
    cons = f"{name}.cons"
    env.define(
        _q(name, "app"),
        parse(
            env,
            f"""
            fun (T : Type1) (l m : {name} T) =>
              Elim[{name}](l; fun (_ : {name} T) => {name} T)
                {{ m,
                  fun (t : T) (rest : {name} T) (IH : {name} T) =>
                    {cons} T t IH }}
            """,
        ),
    )
    app = _q(name, "app")
    env.define(
        _q(name, "rev"),
        parse(
            env,
            f"""
            fun (T : Type1) (l : {name} T) =>
              Elim[{name}](l; fun (_ : {name} T) => {name} T)
                {{ {nil} T,
                  fun (t : T) (rest : {name} T) (IH : {name} T) =>
                    {app} T IH ({cons} T t ({nil} T)) }}
            """,
        ),
    )
    env.define(
        _q(name, "length"),
        parse(
            env,
            f"""
            fun (T : Type1) (l : {name} T) =>
              Elim[{name}](l; fun (_ : {name} T) => nat)
                {{ O,
                  fun (t : T) (rest : {name} T) (IH : nat) => S IH }}
            """,
        ),
    )


def _prove_lemmas(env: Environment, name: str) -> None:
    from ..tactics import prove
    from ..tactics.tactics import (
        induction,
        intro,
        intros,
        reflexivity,
        rewrite,
        simpl,
    )

    app = _q(name, "app")
    rev = _q(name, "rev")
    nil = f"{name}.nil"
    cons = f"{name}.cons"

    app_nil_r = parse(
        env,
        f"forall (T : Type1) (l : {name} T), "
        f"eq ({name} T) ({app} T l ({nil} T)) l",
    )
    env.define(
        _q(name, "app_nil_r"),
        prove(
            env,
            app_nil_r,
            intros("T", "l"),
            induction("l", names=[[], ["a", "rest", "IHl"]]),
            reflexivity(),
            simpl(),
            rewrite("IHl"),
            reflexivity(),
        ),
        type=app_nil_r,
    )

    app_assoc = parse(
        env,
        f"forall (T : Type1) (l m n : {name} T), "
        f"eq ({name} T) ({app} T l ({app} T m n)) "
        f"({app} T ({app} T l m) n)",
    )
    env.define(
        _q(name, "app_assoc"),
        prove(
            env,
            app_assoc,
            intros("T", "l", "m", "n"),
            induction("l", names=[[], ["a", "rest", "IHl"]]),
            reflexivity(),
            simpl(),
            rewrite("IHl"),
            reflexivity(),
        ),
        type=app_assoc,
    )

    # The Section 2 theorem.
    rev_app_distr = parse(
        env,
        f"forall (T : Type1) (x y : {name} T), "
        f"eq ({name} T) ({rev} T ({app} T x y)) "
        f"({app} T ({rev} T y) ({rev} T x))",
    )
    app_nil_r_name = _q(name, "app_nil_r")
    app_assoc_name = _q(name, "app_assoc")
    env.define(
        _q(name, "rev_app_distr"),
        prove(
            env,
            rev_app_distr,
            intros("T", "x"),
            induction("x", names=[[], ["a", "l", "IHl"]]),
            # nil case: forall y, rev (nil ++ y) = rev y ++ rev nil
            intro("y"),
            rewrite(f"{app_nil_r_name} T ({rev} T y)"),
            reflexivity(),
            # cons case
            intro("y0"),
            simpl(),
            rewrite("IHl y0"),
            rewrite(
                f"{app_assoc_name} T ({rev} T y0) ({rev} T l) "
                f"({cons} T a ({nil} T))",
                rev=True,
            ),
            reflexivity(),
        ),
        type=rev_app_distr,
    )


def _define_zip(env: Environment, name: str) -> None:
    """``zip``, ``zip_with`` and ``zip_with_is_zip`` (Section 6.2)."""
    from ..tactics import prove
    from ..tactics.tactics import (
        induction,
        intro,
        intros,
        reflexivity,
        rewrite,
        simpl,
    )

    nil = f"{name}.nil"
    cons = f"{name}.cons"
    env.define(
        _q(name, "zip"),
        parse(
            env,
            f"""
            fun (A B : Type1) (l1 : {name} A) =>
              Elim[{name}](l1;
                  fun (_ : {name} A) => {name} B -> {name} (prod A B))
                {{ fun (l2 : {name} B) => {nil} (prod A B),
                  fun (a : A) (rest : {name} A)
                      (IH : {name} B -> {name} (prod A B))
                      (l2 : {name} B) =>
                    Elim[{name}](l2;
                        fun (_ : {name} B) => {name} (prod A B))
                      {{ {nil} (prod A B),
                        fun (b : B) (rest2 : {name} B)
                            (IH2 : {name} (prod A B)) =>
                          {cons} (prod A B) (pair A B a b) (IH rest2) }} }}
            """,
        ),
    )
    env.define(
        _q(name, "zip_with"),
        parse(
            env,
            f"""
            fun (A B C : Type1) (f : A -> B -> C) (l1 : {name} A) =>
              Elim[{name}](l1;
                  fun (_ : {name} A) => {name} B -> {name} C)
                {{ fun (l2 : {name} B) => {nil} C,
                  fun (a : A) (rest : {name} A)
                      (IH : {name} B -> {name} C)
                      (l2 : {name} B) =>
                    Elim[{name}](l2; fun (_ : {name} B) => {name} C)
                      {{ {nil} C,
                        fun (b : B) (rest2 : {name} B) (IH2 : {name} C) =>
                          {cons} C (f a b) (IH rest2) }} }}
            """,
        ),
    )

    zip = _q(name, "zip")
    zip_with = _q(name, "zip_with")
    zip_with_is_zip = parse(
        env,
        f"forall (A B : Type1) (l1 : {name} A) (l2 : {name} B), "
        f"eq ({name} (prod A B)) "
        f"({zip_with} A B (prod A B) (pair A B) l1 l2) "
        f"({zip} A B l1 l2)",
    )
    env.define(
        _q(name, "zip_with_is_zip"),
        prove(
            env,
            zip_with_is_zip,
            intros("A", "B", "l1"),
            induction("l1", names=[[], ["a", "rest1", "IHl1"]]),
            # nil case
            intro("l2"),
            reflexivity(),
            # cons case
            intro("l2"),
            induction("l2", names=[[], ["b", "rest2", "IHl2"]]),
            reflexivity(),
            simpl(),
            rewrite("IHl1 rest2"),
            reflexivity(),
        ),
        type=zip_with_is_zip,
    )


def _define_map_fold(env: Environment, name: str) -> None:
    """``map``, ``fold_right`` — the rest of the everyday list module."""
    nil = f"{name}.nil"
    cons = f"{name}.cons"
    env.define(
        _q(name, "map"),
        parse(
            env,
            f"""
            fun (A B : Type1) (f : A -> B) (l : {name} A) =>
              Elim[{name}](l; fun (_ : {name} A) => {name} B)
                {{ {nil} B,
                  fun (a : A) (rest : {name} A) (IH : {name} B) =>
                    {cons} B (f a) IH }}
            """,
        ),
    )
    env.define(
        _q(name, "fold_right"),
        parse(
            env,
            f"""
            fun (A B : Type1) (f : A -> B -> B) (b : B) (l : {name} A) =>
              Elim[{name}](l; fun (_ : {name} A) => B)
                {{ b,
                  fun (a : A) (rest : {name} A) (IH : B) => f a IH }}
            """,
        ),
    )


def _prove_more_lemmas(env: Environment, name: str) -> None:
    """The remaining stock lemmas repaired by the Swap.v benchmark."""
    from ..tactics import prove
    from ..tactics.tactics import (
        induction,
        intros,
        reflexivity,
        rewrite,
        simpl,
    )

    app = _q(name, "app")
    rev = _q(name, "rev")
    length = _q(name, "length")
    map_ = _q(name, "map")
    fold = _q(name, "fold_right")
    nil = f"{name}.nil"
    cons = f"{name}.cons"

    map_app = parse(
        env,
        f"forall (A B : Type1) (f : A -> B) (l1 l2 : {name} A), "
        f"eq ({name} B) ({map_} A B f ({app} A l1 l2)) "
        f"({app} B ({map_} A B f l1) ({map_} A B f l2))",
    )
    env.define(
        _q(name, "map_app"),
        prove(
            env,
            map_app,
            intros("A", "B", "f", "l1", "l2"),
            induction("l1", names=[[], ["a", "rest", "IHl"]]),
            reflexivity(),
            simpl(),
            rewrite("IHl"),
            reflexivity(),
        ),
        type=map_app,
    )

    app_length = parse(
        env,
        f"forall (T : Type1) (l1 l2 : {name} T), "
        f"eq nat ({length} T ({app} T l1 l2)) "
        f"(add ({length} T l1) ({length} T l2))",
    )
    env.define(
        _q(name, "app_length"),
        prove(
            env,
            app_length,
            intros("T", "l1", "l2"),
            induction("l1", names=[[], ["a", "rest", "IHl"]]),
            reflexivity(),
            simpl(),
            rewrite("IHl"),
            reflexivity(),
        ),
        type=app_length,
    )

    map_length = parse(
        env,
        f"forall (A B : Type1) (f : A -> B) (l : {name} A), "
        f"eq nat ({length} B ({map_} A B f l)) ({length} A l)",
    )
    env.define(
        _q(name, "map_length"),
        prove(
            env,
            map_length,
            intros("A", "B", "f", "l"),
            induction("l", names=[[], ["a", "rest", "IHl"]]),
            reflexivity(),
            simpl(),
            rewrite("IHl"),
            reflexivity(),
        ),
        type=map_length,
    )

    rev_involutive = parse(
        env,
        f"forall (T : Type1) (l : {name} T), "
        f"eq ({name} T) ({rev} T ({rev} T l)) l",
    )
    rev_app_distr = _q(name, "rev_app_distr")
    env.define(
        _q(name, "rev_involutive"),
        prove(
            env,
            rev_involutive,
            intros("T", "l"),
            induction("l", names=[[], ["a", "rest", "IHl"]]),
            reflexivity(),
            simpl(),
            rewrite(
                f"{rev_app_distr} T ({rev} T rest) "
                f"({cons} T a ({nil} T))"
            ),
            rewrite("IHl"),
            reflexivity(),
        ),
        type=rev_involutive,
    )

    fold_right_app = parse(
        env,
        f"forall (A B : Type1) (f : A -> B -> B) (b : B) "
        f"(l1 l2 : {name} A), "
        f"eq B ({fold} A B f b ({app} A l1 l2)) "
        f"({fold} A B f ({fold} A B f b l2) l1)",
    )
    env.define(
        _q(name, "fold_right_app"),
        prove(
            env,
            fold_right_app,
            intros("A", "B", "f", "b", "l1", "l2"),
            induction("l1", names=[[], ["a", "rest", "IHl"]]),
            reflexivity(),
            simpl(),
            rewrite("IHl"),
            reflexivity(),
        ),
        type=fold_right_app,
    )
