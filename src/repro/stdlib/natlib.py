"""Unary natural numbers: the type, arithmetic, and the paper's lemmas.

``add`` recurses on its first argument, so ``add (S n) m`` iota-reduces to
``S (add n m)`` — the definitional iota behaviour that Section 4.1.2
contrasts with binary numbers, where the corresponding fact is only
propositional.
"""

from __future__ import annotations

from ..kernel.env import Environment
from ..kernel.inductive import ConstructorDecl, InductiveDecl
from ..kernel.term import App, Constr, Ind, SET, Term
from ..syntax.parser import parse


def declare_nat(env: Environment) -> None:
    """Declare ``nat`` with ``O``/``S``, arithmetic, and basic lemmas."""
    env.declare_inductive(
        InductiveDecl(
            name="nat",
            params=(),
            indices=(),
            sort=SET,
            constructors=(
                ConstructorDecl("O", args=()),
                ConstructorDecl("S", args=(("n", Ind("nat")),)),
            ),
        )
    )
    env.define(
        "pred",
        parse(
            env,
            "fun (n : nat) => "
            "Elim[nat](n; fun (_ : nat) => nat){ O, fun (p IH : nat) => p }",
        ),
    )
    env.define(
        "add",
        parse(
            env,
            "fun (n m : nat) => "
            "Elim[nat](n; fun (_ : nat) => nat)"
            "{ m, fun (p IH : nat) => S IH }",
        ),
    )
    env.define(
        "mul",
        parse(
            env,
            "fun (n m : nat) => "
            "Elim[nat](n; fun (_ : nat) => nat)"
            "{ O, fun (p IH : nat) => add m IH }",
        ),
    )
    _prove_lemmas(env)


def _prove_lemmas(env: Environment) -> None:
    from ..tactics import prove
    from ..tactics.tactics import (
        induction,
        intro,
        intros,
        reflexivity,
        rewrite,
        simpl,
    )

    add_n_O = parse(env, "forall (n : nat), eq nat (add n O) n")
    env.define(
        "add_n_O",
        prove(
            env,
            add_n_O,
            intro("n"),
            induction("n", names=[[], ["p", "IHp"]]),
            reflexivity(),
            simpl(),
            rewrite("IHp"),
            reflexivity(),
        ),
        type=add_n_O,
    )

    # The statement ported to binary numbers in Section 6.3.
    add_n_Sm = parse(
        env, "forall (n m : nat), eq nat (S (add n m)) (add n (S m))"
    )
    env.define(
        "add_n_Sm",
        prove(
            env,
            add_n_Sm,
            intro("n"),
            intro("m"),
            induction("n", names=[[], ["p", "IHp"]]),
            reflexivity(),
            simpl(),
            rewrite("IHp"),
            reflexivity(),
        ),
        type=add_n_Sm,
    )

    add_comm = parse(
        env, "forall (n m : nat), eq nat (add n m) (add m n)"
    )
    env.define(
        "add_comm",
        prove(
            env,
            add_comm,
            intro("n"),
            intro("m"),
            induction("n", names=[[], ["p", "IHp"]]),
            simpl(),
            rewrite("add_n_O m"),
            reflexivity(),
            simpl(),
            rewrite("IHp"),
            rewrite("add_n_Sm m p"),
            reflexivity(),
        ),
        type=add_comm,
    )

    add_assoc = parse(
        env,
        "forall (n m p : nat), "
        "eq nat (add n (add m p)) (add (add n m) p)",
    )
    env.define(
        "add_assoc",
        prove(
            env,
            add_assoc,
            intros("n", "m", "p"),
            induction("n", names=[[], ["q", "IHq"]]),
            reflexivity(),
            simpl(),
            rewrite("IHq"),
            reflexivity(),
        ),
        type=add_assoc,
    )


def nat_of_int(value: int) -> Term:
    """The unary numeral for ``value``."""
    if value < 0:
        raise ValueError("nat numerals are non-negative")
    term: Term = Constr("nat", 0)
    for _ in range(value):
        term = App(Constr("nat", 1), term)
    return term


def int_of_nat(term: Term) -> int:
    """Decode a normalized unary numeral back to an int."""
    from ..kernel.term import unfold_app

    count = 0
    while True:
        head, args = unfold_app(term)
        if head == Constr("nat", 0) and not args:
            return count
        if head == Constr("nat", 1) and len(args) == 1:
            count += 1
            term = args[0]
            continue
        raise ValueError(f"not a nat numeral: {term!r}")
