"""Records as single-constructor inductives, with projections.

Coq elaborates ``Record`` declarations to single-constructor inductives
plus projection functions; this module does the same for the object
language.  The tuples<->records search procedure (Section 6.4) recognizes
record types declared this way.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..kernel.env import Environment
from ..kernel.inductive import ConstructorDecl, InductiveDecl
from ..kernel.term import (
    Elim,
    Ind,
    Lam,
    Rel,
    SET,
    Term,
    lift,
    mk_lams,
)


def declare_record(
    env: Environment,
    name: str,
    fields: Sequence[Tuple[str, Term]],
    constructor: str = None,
) -> None:
    """Declare a non-parametric record with the given (name, type) fields.

    Field types must be closed terms (they may refer to previously declared
    globals, including other records).  Projections are defined with the
    field names.
    """
    ctor_name = constructor or f"Mk{name}"
    # Field types are closed, so they are valid under any prefix of the
    # constructor telescope as written.
    args = tuple((fname, ftype) for fname, ftype in fields)
    env.declare_inductive(
        InductiveDecl(
            name=name,
            params=(),
            indices=(),
            sort=SET,
            constructors=(ConstructorDecl(ctor_name, args=args),),
        )
    )
    n = len(fields)
    for i, (fname, ftype) in enumerate(fields):
        # fname := fun (r : name) =>
        #            Elim(r; fun _ => ftype){ fun fields... => field_i }
        case = mk_lams(list(fields), Rel(n - 1 - i))
        body = Lam(
            "r",
            Ind(name),
            Elim(name, Lam("_", Ind(name), lift(ftype, 1)), (lift(case, 1),), Rel(0)),
        )
        env.define(fname, body)


def record_fields(env: Environment, name: str) -> Tuple[Tuple[str, Term], ...]:
    """Return the (projection name, field type) pairs of a record."""
    decl = env.inductive(name)
    if decl.n_constructors != 1 or decl.params or decl.indices:
        raise ValueError(f"{name!r} is not a record-style inductive")
    return tuple(decl.constructors[0].args)
