"""``python -m repro.analysis`` — sweep the stdlib and the case studies.

For every target this runs the four passes over the artifacts the
target produces:

* **scope** — every repaired term and its type (and, for the stdlib,
  every declaration in the environment);
* **residual** — every repaired term against the old globals its repair
  session removed, with the session's configuration constants allowed;
* **config** — every configuration the case study builds;
* **tactics** — decompiled scripts for the repaired proofs.

Exit status is 1 when any error-severity diagnostic is found, which is
what the CI ``analysis`` job gates on.  ``--json`` emits one JSON
document on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..kernel.env import Environment
from ..kernel.term import Term
from ..obs import span
from .configlint import lint_configuration
from .diagnostics import Report, Severity
from .residual import find_residuals
from .scope import check_environment, check_term
from .tacticlint import lint_script


@dataclass
class ResidualTarget:
    """One repaired term to hold against the Section 4 guarantee."""

    label: str
    term: Term
    old_globals: Tuple[str, ...]
    allow: FrozenSet[str] = frozenset()


@dataclass
class CaseArtifacts:
    """Everything one target exposes to the analysis passes."""

    name: str
    env: Environment
    #: labelled terms for the scope pass (repaired bodies and types)
    terms: List[Tuple[str, Term]] = field(default_factory=list)
    residual_targets: List[ResidualTarget] = field(default_factory=list)
    #: labelled configurations for the linter
    configs: List[Tuple[str, object]] = field(default_factory=list)
    #: environment to lint configurations against, when the scenario
    #: mutated ``env`` past the configuration's lifetime (``remove_old``)
    config_env: Optional[Environment] = None
    #: labelled proof terms to decompile and lint as scripts
    proofs: List[Tuple[str, Term]] = field(default_factory=list)
    #: sweep the whole environment through the scope checker too
    sweep_env: bool = False


def _result_artifacts(
    artifacts: CaseArtifacts,
    results: Sequence[object],
    old_globals: Tuple[str, ...],
    allow: FrozenSet[str] = frozenset(),
    lint_proofs: bool = True,
) -> None:
    """Register a list of ``RepairResult``-shaped objects."""
    for result in results:
        name = result.new_name
        artifacts.terms.append((f"{name}:term", result.term))
        artifacts.terms.append((f"{name}:type", result.type))
        artifacts.residual_targets.append(
            ResidualTarget(f"{name}:term", result.term, old_globals, allow)
        )
        artifacts.residual_targets.append(
            ResidualTarget(f"{name}:type", result.type, old_globals, allow)
        )
        if lint_proofs:
            artifacts.proofs.append((name, result.term))


def _stdlib_artifacts() -> CaseArtifacts:
    from ..stdlib import make_env

    env = make_env(lists=True, vectors=True, binary=True, bitvectors=True)
    return CaseArtifacts(name="stdlib", env=env, sweep_env=True)


def _quickstart_artifacts() -> CaseArtifacts:
    from ..cases import quickstart

    scenario = quickstart.run_scenario()
    artifacts = CaseArtifacts(name="quickstart", env=scenario.env)
    artifacts.configs.append(("quickstart", scenario.config))
    # run_scenario ends with remove_old(), so the configuration's A side
    # refers to a type no longer in scenario.env; lint it against an
    # identically-built environment that still declares ``list``.
    artifacts.config_env = quickstart.setup_environment()
    _result_artifacts(
        artifacts,
        [scenario.result] + list(scenario.module_results),
        ("list",),
    )
    return artifacts


def _replica_artifacts() -> CaseArtifacts:
    # run_scenario does not expose its (shared) environment, so drive
    # the variants directly, exactly as it does.
    from ..cases import replica

    env = replica.setup_environment()
    artifacts = CaseArtifacts(name="replica", env=env)
    for i, (label, order, renames) in enumerate(replica.VARIANTS):
        variant = replica.run_variant(
            env,
            label,
            order,
            renames,
            i,
            mapping=replica.VARIANT_MAPPINGS.get(label),
        )
        _result_artifacts(
            artifacts, variant.results, ("Old.Term",), lint_proofs=False
        )
    return artifacts


def _binary_artifacts() -> CaseArtifacts:
    from ..cases import binary

    scenario = binary.run_scenario()
    artifacts = CaseArtifacts(name="binary", env=scenario.env)
    artifacts.configs.append(("binary", scenario.config))
    allow = frozenset({"iota_nat_0", "iota_nat_1"})
    _result_artifacts(
        artifacts,
        [scenario.slow_add, scenario.slow_add_n_Sm],
        ("nat",),
        allow=allow,
    )
    artifacts.terms.append(("add_fast_add", scenario.add_fast_add))
    artifacts.terms.append(("fast_add_n_Sm", scenario.fast_add_n_Sm))
    return artifacts


def _ornaments_artifacts() -> CaseArtifacts:
    from ..cases import ornaments_example

    scenario = ornaments_example.run_scenario()
    artifacts = CaseArtifacts(name="ornaments", env=scenario.env)
    artifacts.configs.append(("ornaments", scenario.config))
    allow = frozenset(
        {
            "ornament.eta",
            "ornament.dep_constr_0",
            "ornament.dep_constr_1",
            "ornament.promote",
            "ornament.forget",
            "ornament.forget_vec",
        }
    )
    _result_artifacts(
        artifacts,
        scenario.packed_results,
        ("list",),
        allow=allow,
        lint_proofs=False,
    )
    for label, term in (
        ("zip_vect", scenario.zip_vect),
        ("zip_with_vect", scenario.zip_with_vect),
        ("zip_with_is_zip_vect", scenario.zip_with_is_zip_vect),
    ):
        artifacts.terms.append((label, term))
    return artifacts


def _galois_artifacts() -> CaseArtifacts:
    from ..cases import galois

    scenario = galois.run_scenario()
    artifacts = CaseArtifacts(name="galois", env=scenario.env)
    artifacts.configs.append(("handshake", scenario.handshake_config))
    artifacts.configs.append(("connection", scenario.connection_config))
    _result_artifacts(
        artifacts,
        [scenario.cork_result],
        ("Galois.Connection'",),
        lint_proofs=False,
    )
    _result_artifacts(
        artifacts,
        [scenario.cork_lemma_tuple],
        ("Record.Handshake",),
        lint_proofs=False,
    )
    artifacts.terms.append(("cork_lemma_record", scenario.cork_lemma_record))
    return artifacts


def _constr_refactor_artifacts() -> CaseArtifacts:
    from ..cases import constr_refactor

    scenario = constr_refactor.run_scenario()
    artifacts = CaseArtifacts(name="constr_refactor", env=scenario.env)
    artifacts.configs.append(("constr_refactor", scenario.config))
    _result_artifacts(artifacts, scenario.results, ("I",))
    return artifacts


CASES: Dict[str, Callable[[], CaseArtifacts]] = {
    "stdlib": _stdlib_artifacts,
    "quickstart": _quickstart_artifacts,
    "replica": _replica_artifacts,
    "binary": _binary_artifacts,
    "ornaments": _ornaments_artifacts,
    "galois": _galois_artifacts,
    "constr_refactor": _constr_refactor_artifacts,
}


def analyze_case(artifacts: CaseArtifacts) -> Report:
    """Run all four passes over one target's artifacts."""
    report = Report()
    env = artifacts.env
    with span("analyze_scope", case=artifacts.name):
        if artifacts.sweep_env:
            report.extend(check_environment(env))
        for label, term in artifacts.terms:
            report.extend(check_term(env, term, subject=label))
    with span("analyze_residual", case=artifacts.name):
        for target in artifacts.residual_targets:
            report.extend(
                find_residuals(
                    env,
                    target.term,
                    target.old_globals,
                    allow=target.allow,
                    subject=target.label,
                )
            )
    with span("analyze_config", case=artifacts.name):
        config_env = artifacts.config_env or env
        for label, config in artifacts.configs:
            report.extend(
                lint_configuration(config_env, config, subject=label)
            )
    with span("analyze_tactics", case=artifacts.name):
        from ..decompile.decompiler import decompile_to_script

        for label, proof in artifacts.proofs:
            script = decompile_to_script(env, proof)
            report.extend(lint_script(env, script, subject=label))
    return report


def run_target(name: str) -> Report:
    """Build one target's artifacts and analyze them."""
    return analyze_case(CASES[name]())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis over the stdlib and the case studies.",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document instead of text",
    )
    parser.add_argument(
        "--case",
        action="append",
        choices=sorted(CASES),
        metavar="NAME",
        help="restrict to the named target(s); default: all "
        f"({', '.join(sorted(CASES))})",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RA###",
        help="only report diagnostics with these codes (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RA###",
        help="drop diagnostics with these codes (repeatable)",
    )
    args = parser.parse_args(argv)
    targets = args.case or list(CASES)
    from .diagnostics import CODES

    for code in args.select + args.ignore:
        if code not in CODES:
            parser.error(f"unknown diagnostic code {code!r}")
    select = frozenset(args.select)
    ignore = frozenset(args.ignore)

    reports: Dict[str, Report] = {}
    for name in targets:
        with span("analyze_target", target=name):
            report = run_target(name)
        if select or ignore:
            kept = [
                d
                for d in report.diagnostics
                if (not select or d.code in select)
                and d.code not in ignore
            ]
            report = Report(diagnostics=kept)
        reports[name] = report

    total_errors = sum(r.count(Severity.ERROR) for r in reports.values())
    if args.json:
        per_target = {
            name: report.to_dict() for name, report in reports.items()
        }
        # Every diagnostic says whether it (alone) classifies the exit
        # status, so callers filter JSON instead of grepping text.
        for target in per_target.values():
            for diag in target["diagnostics"]:
                diag["exit_error"] = diag["severity"] == "error"
        document = {
            "targets": per_target,
            "summary": {
                sev.value: sum(
                    r.count(sev) for r in reports.values()
                )
                for sev in Severity
            },
            "exit_code": 1 if total_errors else 0,
        }
        print(json.dumps(document, indent=2))
    else:
        for name, report in reports.items():
            print(f"== {name} ==")
            print(report.render())
    return 1 if total_errors else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
