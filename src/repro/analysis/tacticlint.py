"""Tactic-script linter: vet decompiler output before replay.

Decompiled scripts (:mod:`repro.decompile.qtac`) carry their arguments
as surface-syntax strings.  This pass replays the *binding structure*
of a script without running any tactic:

* every ``apply``/``exact``/``rewrite`` argument must parse and every
  identifier in it must resolve — to an intro'd hypothesis, a global,
  or a constructor (RA303);
* ``induction`` must target a bound hypothesis (RA304);
* intro names that shadow an existing hypothesis are flagged (RA302,
  warning) as are intros never referenced by any later step (RA301,
  warning).

Resolution reuses :func:`repro.syntax.parser.parse_in` with the current
hypothesis names as the bound-variable context, so the linter agrees
with the tactic engine on what is in scope.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..decompile.qtac import (
    Script,
    Tac,
    TApply,
    TExact,
    TIntro,
    TIntros,
    TInduction,
    TRewrite,
    TSplit,
)
from ..kernel.env import Environment
from ..kernel.term import free_rels
from ..syntax.lexer import LexError
from ..syntax.parser import ParseError, parse_in
from .diagnostics import Diagnostic, Severity


class _Linter:
    def __init__(self, env: Environment) -> None:
        self.env = env
        self.subject: str = "script"
        self.diagnostics: List[Diagnostic] = []
        self.used: Set[str] = set()
        #: every intro performed, as (name, path) — audited at the end
        self.intros: List[Tuple[str, Tuple[str, ...]]] = []

    # -- Reporting ----------------------------------------------------------

    def _report(
        self,
        code: str,
        severity: Severity,
        message: str,
        path: Tuple[str, ...],
        rendering: Optional[str] = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                message=message,
                subject=self.subject,
                path=path,
                rendering=rendering,
            )
        )

    # -- The walk -----------------------------------------------------------

    def lint(self, script: Script, subject: str) -> List[Diagnostic]:
        self.subject = subject
        self._script(script, [], ())
        for name, path in self.intros:
            if name not in self.used:
                self._report(
                    "RA301",
                    Severity.WARNING,
                    f"intro name {name!r} is never used",
                    path,
                )
        return self.diagnostics

    def _script(
        self,
        script: Script,
        bound: List[str],
        prefix: Tuple[str, ...],
    ) -> None:
        for i, tac in enumerate(script.steps):
            self._tac(tac, bound, prefix + (f"step[{i}]",))

    def _tac(
        self, tac: Tac, bound: List[str], path: Tuple[str, ...]
    ) -> None:
        if isinstance(tac, TIntro):
            self._intro(tac.name, bound, path, audit_use=True)
        elif isinstance(tac, TIntros):
            # Bulk intros mirror the goal's binder structure; their names
            # may legitimately occur only in the (unseen) goal, so they
            # are exempt from the unused-name audit.
            for name in tac.names:
                self._intro(name, bound, path, audit_use=False)
        elif isinstance(tac, TRewrite):
            self._argument(tac.proof, bound, path)
        elif isinstance(tac, (TApply, TExact)):
            self._argument(tac.term, bound, path)
        elif isinstance(tac, TInduction):
            if tac.scrut not in bound:
                self._report(
                    "RA304",
                    Severity.ERROR,
                    f"induction targets {tac.scrut!r}, which is not a "
                    "bound hypothesis",
                    path,
                )
            else:
                self.used.add(tac.scrut)
            for j, (names, case) in enumerate(
                zip(tac.case_names, tac.cases)
            ):
                # The engine introduces the case binders innermost-last.
                branch = list(reversed(names)) + list(bound)
                self._script(case, branch, path + (f"case[{j}]",))
        elif isinstance(tac, TSplit):
            for j, branch_script in enumerate(tac.branches):
                self._script(
                    branch_script, list(bound), path + (f"branch[{j}]",)
                )
        # TSymmetry, TSimpl, TReflexivity, TLeft, TRight bind nothing
        # and take no arguments.

    def _intro(
        self,
        name: str,
        bound: List[str],
        path: Tuple[str, ...],
        audit_use: bool,
    ) -> None:
        if name in bound:
            self._report(
                "RA302",
                Severity.WARNING,
                f"intro name {name!r} shadows an existing hypothesis",
                path,
            )
        bound.insert(0, name)
        if audit_use:
            self.intros.append((name, path))

    def _argument(
        self, text: str, bound: List[str], path: Tuple[str, ...]
    ) -> None:
        try:
            term = parse_in(self.env, text, tuple(bound))
        except (ParseError, LexError) as exc:
            self._report(
                "RA303",
                Severity.ERROR,
                f"tactic argument does not resolve: {exc}",
                path,
                rendering=text,
            )
            return
        for index in free_rels(term):
            if 0 <= index < len(bound):
                self.used.add(bound[index])


def lint_script(
    env: Environment, script: Script, subject: str = "script"
) -> List[Diagnostic]:
    """Lint one decompiled script; returns every finding."""
    return _Linter(env).lint(script, subject)
