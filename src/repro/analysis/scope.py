"""Scope & arity checker: a linear sanity pass over de Bruijn terms.

Validates, without computing any types:

* ``Rel`` indices stay below the number of enclosing binders (RA001);
* ``Sort`` levels are Prop/Set/Type(i) (RA002);
* ``Const``/``Ind``/``Constr`` references resolve in the environment
  (RA003/RA004/RA005);
* ``Elim`` nodes carry exactly one case per declared constructor
  (RA006).

This is the cheap post-transform gate the transformation uses under
``REPRO_ANALYZE=1``: a malformed intermediate term fails at the rule
that produced it instead of deep inside ``infer``.  The environment
sweeps (:func:`check_constant`, :func:`check_inductive`,
:func:`check_environment`) reuse the same walk for whole developments.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..kernel.env import ConstantDecl, Environment
from ..kernel.inductive import InductiveDecl
from ..kernel.pretty import pretty
from ..kernel.term import (
    App,
    Constr,
    Const,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
)
from .diagnostics import Diagnostic, Severity


def _error(
    code: str,
    message: str,
    subject: str,
    path: Tuple[str, ...],
    rendering: Optional[str] = None,
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message=message,
        subject=subject,
        path=path,
        rendering=rendering,
    )


def check_term(
    env: Environment,
    term: Term,
    depth: int = 0,
    subject: str = "",
    path: Tuple[str, ...] = (),
) -> List[Diagnostic]:
    """Linearly check ``term`` with ``depth`` enclosing binders."""
    out: List[Diagnostic] = []
    stack: List[Tuple[Term, int, Tuple[str, ...]]] = [(term, depth, path)]
    while stack:
        t, d, p = stack.pop()
        if isinstance(t, Rel):
            if t.index < 0 or t.index >= d:
                out.append(
                    _error(
                        "RA001",
                        f"Rel({t.index}) under {d} binder(s)",
                        subject,
                        p,
                    )
                )
        elif isinstance(t, Sort):
            if t.level < -1:
                out.append(
                    _error(
                        "RA002",
                        f"sort level {t.level} (expected >= -1)",
                        subject,
                        p,
                    )
                )
        elif isinstance(t, Const):
            if not env.has_constant(t.name):
                out.append(
                    _error(
                        "RA003",
                        f"unknown constant {t.name!r}",
                        subject,
                        p,
                    )
                )
        elif isinstance(t, Ind):
            if not env.has_inductive(t.name):
                out.append(
                    _error(
                        "RA004",
                        f"unknown inductive {t.name!r}",
                        subject,
                        p,
                    )
                )
        elif isinstance(t, Constr):
            if not env.has_inductive(t.ind):
                out.append(
                    _error(
                        "RA004",
                        f"constructor of unknown inductive {t.ind!r}",
                        subject,
                        p,
                    )
                )
            elif not 0 <= t.index < env.inductive(t.ind).n_constructors:
                out.append(
                    _error(
                        "RA005",
                        f"constructor index {t.index} out of range for "
                        f"{t.ind!r} "
                        f"({env.inductive(t.ind).n_constructors} declared)",
                        subject,
                        p,
                    )
                )
        elif isinstance(t, App):
            stack.append((t.fn, d, p + ("fn",)))
            stack.append((t.arg, d, p + ("arg",)))
        elif isinstance(t, Lam):
            stack.append((t.domain, d, p + ("domain",)))
            stack.append((t.body, d + 1, p + ("body",)))
        elif isinstance(t, Pi):
            stack.append((t.domain, d, p + ("domain",)))
            stack.append((t.codomain, d + 1, p + ("codomain",)))
        elif isinstance(t, Elim):
            if not env.has_inductive(t.ind):
                out.append(
                    _error(
                        "RA004",
                        f"eliminator of unknown inductive {t.ind!r}",
                        subject,
                        p,
                        rendering=pretty(t, env=env),
                    )
                )
            else:
                decl = env.inductive(t.ind)
                if len(t.cases) != decl.n_constructors:
                    out.append(
                        _error(
                            "RA006",
                            f"eliminator of {t.ind!r} has {len(t.cases)} "
                            f"case(s); declaration has "
                            f"{decl.n_constructors} constructor(s)",
                            subject,
                            p,
                            rendering=pretty(t, env=env),
                        )
                    )
            stack.append((t.motive, d, p + ("motive",)))
            for j, case in enumerate(t.cases):
                stack.append((case, d, p + (f"case[{j}]",)))
            stack.append((t.scrut, d, p + ("scrut",)))
    return out


def check_constant(env: Environment, decl: ConstantDecl) -> List[Diagnostic]:
    """Check a constant's type (and body, when present)."""
    out = check_term(env, decl.type, subject=decl.name, path=("type",))
    if decl.body is not None:
        out.extend(
            check_term(env, decl.body, subject=decl.name, path=("body",))
        )
    return out


def check_inductive(env: Environment, decl: InductiveDecl) -> List[Diagnostic]:
    """Check an inductive declaration's telescopes and constructors."""
    out: List[Diagnostic] = []
    depth = 0
    for name, ty in decl.params:
        out.extend(
            check_term(
                env, ty, depth, subject=decl.name, path=(f"param[{name}]",)
            )
        )
        depth += 1
    for name, ty in decl.indices:
        out.extend(
            check_term(
                env, ty, depth, subject=decl.name, path=(f"index[{name}]",)
            )
        )
        depth += 1
    for ctor in decl.constructors:
        subject = f"{decl.name}.{ctor.name}"
        depth = decl.n_params
        for name, ty in ctor.args:
            out.extend(
                check_term(
                    env, ty, depth, subject=subject, path=(f"arg[{name}]",)
                )
            )
            depth += 1
        if len(ctor.result_indices) != decl.n_indices:
            out.append(
                _error(
                    "RA007",
                    f"constructor supplies {len(ctor.result_indices)} "
                    f"result index/indices; the family declares "
                    f"{decl.n_indices}",
                    subject,
                    ("result_indices",),
                )
            )
        for i, idx in enumerate(ctor.result_indices):
            out.extend(
                check_term(
                    env,
                    idx,
                    depth,
                    subject=subject,
                    path=(f"result_index[{i}]",),
                )
            )
    return out


def check_environment(env: Environment) -> List[Diagnostic]:
    """Sweep every declaration in ``env`` through the scope checker."""
    out: List[Diagnostic] = []
    for ind in env.inductives():
        out.extend(check_inductive(env, ind))
    for decl in env.constants():
        out.extend(check_constant(env, decl))
    return out
