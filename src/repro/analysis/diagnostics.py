"""Shared diagnostic type for the ``repro.analysis`` passes.

Every pass — the scope/arity checker, the residual-reference detector,
the configuration linter, and the tactic-script linter — reports its
findings as :class:`Diagnostic` values: a severity, a stable code
(``RA001``-style, registered in :data:`CODES`), the subject being
analyzed, a path into the term or script, a human-readable message, and
an optional pretty-printed rendering of the offending subterm.
Diagnostics serialize to plain dictionaries for the ``--json`` CLI mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Severity(enum.Enum):
    """How bad a finding is.  Orderable: ``ERROR`` ranks highest."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank


#: Registry of every diagnostic code the analysis layer can emit.
#: RA0xx — scope & arity; RA1xx — residual references; RA2xx —
#: configuration coherence (Figure 8); RA3xx — tactic scripts;
#: RA4xx — change-impact verdicts (:mod:`repro.analysis.impact`).
CODES: Dict[str, str] = {
    "RA001": "de Bruijn index out of range",
    "RA002": "invalid sort level",
    "RA003": "reference to unknown constant",
    "RA004": "reference to unknown inductive type",
    "RA005": "constructor index out of range",
    "RA006": "eliminator case count disagrees with the declaration",
    "RA007": "constructor result-index count disagrees with the declaration",
    "RA101": "repaired term mentions the old type directly",
    "RA102": "repaired term mentions a constant whose delta-unfolding "
    "reaches the old type",
    "RA201": "sides disagree on the number of parameters",
    "RA202": "sides disagree on the number of dependent constructors",
    "RA203": "dependent constructor arities disagree across sides",
    "RA204": "configuration term is open or fails to type check",
    "RA205": "iota count disagrees with the constructor count",
    "RA206": "roundtrip proof does not conclude with the expected equality",
    "RA207": "equivalence function fails to type check",
    "RA208": "invalid constructor permutation",
    "RA301": "intro name is never used",
    "RA302": "intro name shadows an existing hypothesis",
    "RA303": "tactic argument does not resolve",
    "RA304": "induction scrutinee is not a bound hypothesis",
    "RA401": "definition is unaffected by the configuration",
    "RA402": "only the definition's signature reaches the changed type",
    "RA403": "definition's body requires transport across the equivalence",
    "RA404": "impact cannot be certified; the definition must be repaired",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding from an analysis pass."""

    code: str
    severity: Severity
    message: str
    #: what was being analyzed — a constant name, a case-study label, ...
    subject: str = ""
    #: path from the subject's root to the finding (e.g. ``("body",
    #: "fn", "case[1]")`` into a term, or ``("step[3]",)`` into a script)
    path: Tuple[str, ...] = ()
    #: pretty-printed rendering of the offending subterm, when available
    rendering: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    @property
    def path_str(self) -> str:
        return "/".join(self.path)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "subject": self.subject,
            "path": list(self.path),
        }
        if self.rendering is not None:
            out["rendering"] = self.rendering
        return out

    def render(self) -> str:
        """One-line human-readable form, as printed by the CLI."""
        where = self.subject
        if self.path:
            where = f"{where}:{self.path_str}" if where else self.path_str
        line = f"{self.code} {self.severity.value}"
        if where:
            line += f" [{where}]"
        line += f": {self.message}"
        if self.rendering is not None:
            line += f"\n    {self.rendering}"
        return line


@dataclass
class Report:
    """An ordered collection of diagnostics with summary helpers."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Sequence[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                sev.value: self.count(sev) for sev in Severity
            },
        }

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(
            "{} error(s), {} warning(s), {} info".format(
                self.count(Severity.ERROR),
                self.count(Severity.WARNING),
                self.count(Severity.INFO),
            )
        )
        return "\n".join(lines)
