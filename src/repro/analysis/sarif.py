"""SARIF 2.1.0 rendering for change-impact plans.

One run per document, one result per declaration verdict, so CI can
upload the file through ``github/codeql-action/upload-sarif`` and have
verdicts annotate pull requests.  Locations point at the setup module's
source file (the job's environment "script") — the only stable file a
declaration can be traced to, since terms live in an arena, not a file.
"""

from __future__ import annotations

import importlib.util
import os
from typing import Any, Dict, List, Sequence, Tuple

from .diagnostics import CODES, Severity
from .impact import (
    VERDICT_CODES,
    VERDICT_SEVERITIES,
    RepairPlan,
)

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: SARIF ``level`` per diagnostic severity.
_LEVELS = {
    Severity.INFO: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _setup_uri(setup: str) -> str:
    """The setup module's source path, repo-relative when possible."""
    module_name = setup.split(":", 1)[0]
    try:
        spec = importlib.util.find_spec(module_name)
    except (ImportError, ValueError):
        spec = None
    if spec is None or spec.origin is None:
        return f"{module_name.replace('.', '/')}.py"
    origin = spec.origin
    relative = os.path.relpath(origin, os.getcwd())
    return relative if not relative.startswith("..") else origin


def _rules() -> List[Dict[str, Any]]:
    rules = []
    for verdict, code in VERDICT_CODES.items():
        rules.append(
            {
                "id": code,
                "name": verdict,
                "shortDescription": {"text": CODES[code]},
                "defaultConfiguration": {
                    "level": _LEVELS[VERDICT_SEVERITIES[verdict]]
                },
            }
        )
    return rules


def plans_to_sarif(
    plans: Sequence[Tuple[str, RepairPlan]],
) -> Dict[str, Any]:
    """One SARIF document for ``(setup, plan)`` pairs."""
    results: List[Dict[str, Any]] = []
    for setup, plan in plans:
        uri = _setup_uri(setup)
        for entry in plan.entries.values():
            message = f"{entry.name}: {entry.verdict} — {entry.reason}"
            if len(entry.chain) > 1:
                message += (
                    " (evidence: " + " -> ".join(entry.chain) + ")"
                )
            results.append(
                {
                    "ruleId": entry.code,
                    "level": _LEVELS[VERDICT_SEVERITIES[entry.verdict]],
                    "message": {"text": message},
                    "locations": [
                        {
                            "physicalLocation": {
                                "artifactLocation": {"uri": uri},
                                "region": {"startLine": 1},
                            },
                            "logicalLocations": [
                                {
                                    "name": entry.name,
                                    "kind": "member",
                                }
                            ],
                        }
                    ],
                    "partialFingerprints": {
                        "planDigest": plan.digest,
                        "defDigest": entry.def_digest,
                    },
                }
            )
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis.impact",
                        "informationUri": (
                            "https://github.com/uwplse/pumpkin-pi"
                        ),
                        "rules": _rules(),
                    }
                },
                "results": results,
            }
        ],
    }
