"""Residual-reference detector: the paper's Section 4 guarantee, checked.

A correct repair produces a term over ``B`` with *no* residual
references to the old type ``A``.  This pass finds violations:

* **direct** mentions (RA101) — ``Ind(A)``, a constructor ``A#j``, an
  ``Elim`` over ``A``, or a constant named ``A`` itself;
* **transitive** mentions (RA102) — a reference to some constant or
  inductive whose δ-unfolding (body, type, or declaration telescopes)
  eventually reaches ``A``.  These are exactly the references the
  kernel's δ-reduction would expose, which ``mentions_global`` alone
  cannot see.

Configuration constants (explicit iota marks, packing helpers — a
repair session's ``skip`` set) legitimately bridge both sides; passing
them in ``allow`` downgrades their transitive findings to ``INFO`` so
the guarantee stays checkable on real case studies.  The same applies
when the analyzed *subject* is itself an allowed configuration constant:
an ``int_to_Zp``-style equivalence function must mention the old type
directly, so its own direct hits downgrade too instead of reporting a
self-reference false positive.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Set, Tuple

from ..kernel.env import Environment
from ..kernel.pretty import pretty
from ..kernel.term import (
    App,
    Constr,
    Const,
    Elim,
    Ind,
    Lam,
    Pi,
    Term,
)
from .diagnostics import Diagnostic, Severity


def tainted_globals(
    env: Environment, old_globals: Iterable[str]
) -> FrozenSet[str]:
    """Globals whose δ-unfolding transitively mentions an old global.

    The result includes the old globals themselves.  Computed as a
    reverse-dependency fixpoint over every declaration in ``env``,
    using the environment's memoized direct-reference graph.
    """
    old = frozenset(old_globals)
    refs: Dict[str, FrozenSet[str]] = env.declaration_refs()
    tainted: Set[str] = set(old)
    changed = True
    while changed:
        changed = False
        for name, deps in refs.items():
            if name not in tainted and deps & tainted:
                tainted.add(name)
                changed = True
    return frozenset(tainted)


def find_residuals(
    env: Environment,
    term: Term,
    old_globals: Iterable[str],
    allow: AbstractSet[str] = frozenset(),
    subject: str = "",
    path: Tuple[str, ...] = (),
) -> List[Diagnostic]:
    """Report every reference in ``term`` that reaches an old global.

    When ``subject`` itself names an allowed configuration constant,
    direct mentions downgrade to ``INFO`` as well: the constant's whole
    point is to bridge both sides, so its own references to the old
    type are expected, not residuals.
    """
    old = frozenset(old_globals)
    tainted = tainted_globals(env, old)
    subject_allowed = subject in allow
    out: List[Diagnostic] = []
    stack: List[Tuple[Term, Tuple[str, ...]]] = [(term, path)]
    while stack:
        t, p = stack.pop()
        name = None
        if isinstance(t, (Const, Ind)):
            name = t.name
        elif isinstance(t, (Constr, Elim)):
            name = t.ind
        if name is not None:
            if name in old:
                severity = (
                    Severity.INFO if subject_allowed else Severity.ERROR
                )
                qualifier = (
                    " (inside allowed configuration constant)"
                    if subject_allowed
                    else ""
                )
                out.append(
                    Diagnostic(
                        code="RA101",
                        severity=severity,
                        message=(
                            f"direct reference to old global "
                            f"{name!r}{qualifier}"
                        ),
                        subject=subject,
                        path=p,
                        rendering=pretty(t, env=env)
                        if not isinstance(t, Elim)
                        else None,
                    )
                )
            elif name in tainted:
                severity = (
                    Severity.INFO if name in allow else Severity.ERROR
                )
                qualifier = (
                    " (allowed configuration constant)"
                    if name in allow
                    else ""
                )
                out.append(
                    Diagnostic(
                        code="RA102",
                        severity=severity,
                        message=(
                            f"reference to {name!r}, whose delta-unfolding "
                            f"mentions an old global{qualifier}"
                        ),
                        subject=subject,
                        path=p,
                    )
                )
        if isinstance(t, App):
            stack.append((t.fn, p + ("fn",)))
            stack.append((t.arg, p + ("arg",)))
        elif isinstance(t, Lam):
            stack.append((t.domain, p + ("domain",)))
            stack.append((t.body, p + ("body",)))
        elif isinstance(t, Pi):
            stack.append((t.domain, p + ("domain",)))
            stack.append((t.codomain, p + ("codomain",)))
        elif isinstance(t, Elim):
            stack.append((t.motive, p + ("motive",)))
            for j, case in enumerate(t.cases):
                stack.append((case, p + (f"case[{j}]",)))
            stack.append((t.scrut, p + ("scrut",)))
    return out
