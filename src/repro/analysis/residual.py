"""Residual-reference detector: the paper's Section 4 guarantee, checked.

A correct repair produces a term over ``B`` with *no* residual
references to the old type ``A``.  This pass finds violations:

* **direct** mentions (RA101) — ``Ind(A)``, a constructor ``A#j``, an
  ``Elim`` over ``A``, or a constant named ``A`` itself;
* **transitive** mentions (RA102) — a reference to some constant or
  inductive whose δ-unfolding (body, type, or declaration telescopes)
  eventually reaches ``A``.  These are exactly the references the
  kernel's δ-reduction would expose, which ``mentions_global`` alone
  cannot see.

Configuration constants (explicit iota marks, packing helpers — a
repair session's ``skip`` set) legitimately bridge both sides; passing
them in ``allow`` downgrades their transitive findings to ``INFO`` so
the guarantee stays checkable on real case studies.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Set, Tuple

from ..kernel.env import Environment
from ..kernel.pretty import pretty
from ..kernel.term import (
    App,
    Constr,
    Const,
    Elim,
    Ind,
    Lam,
    Pi,
    Term,
    collect_globals,
)
from .diagnostics import Diagnostic, Severity


def _declaration_refs(env: Environment) -> Dict[str, Set[str]]:
    """Each declared global's directly referenced globals."""
    refs: Dict[str, Set[str]] = {}
    for decl in env.constants():
        names = set(collect_globals(decl.type))
        if decl.body is not None:
            names |= collect_globals(decl.body)
        refs[decl.name] = names
    for ind in env.inductives():
        names = set()
        for _name, ty in tuple(ind.params) + tuple(ind.indices):
            names |= collect_globals(ty)
        for ctor in ind.constructors:
            for _name, ty in ctor.args:
                names |= collect_globals(ty)
            for idx in ctor.result_indices:
                names |= collect_globals(idx)
        refs[ind.name] = names
    return refs


def tainted_globals(
    env: Environment, old_globals: Iterable[str]
) -> FrozenSet[str]:
    """Globals whose δ-unfolding transitively mentions an old global.

    The result includes the old globals themselves.  Computed as a
    reverse-dependency fixpoint over every declaration in ``env``.
    """
    old = frozenset(old_globals)
    refs = _declaration_refs(env)
    tainted: Set[str] = set(old)
    changed = True
    while changed:
        changed = False
        for name, deps in refs.items():
            if name not in tainted and deps & tainted:
                tainted.add(name)
                changed = True
    return frozenset(tainted)


def find_residuals(
    env: Environment,
    term: Term,
    old_globals: Iterable[str],
    allow: AbstractSet[str] = frozenset(),
    subject: str = "",
    path: Tuple[str, ...] = (),
) -> List[Diagnostic]:
    """Report every reference in ``term`` that reaches an old global."""
    old = frozenset(old_globals)
    tainted = tainted_globals(env, old)
    out: List[Diagnostic] = []
    stack: List[Tuple[Term, Tuple[str, ...]]] = [(term, path)]
    while stack:
        t, p = stack.pop()
        name = None
        if isinstance(t, (Const, Ind)):
            name = t.name
        elif isinstance(t, (Constr, Elim)):
            name = t.ind
        if name is not None:
            if name in old:
                out.append(
                    Diagnostic(
                        code="RA101",
                        severity=Severity.ERROR,
                        message=f"direct reference to old global {name!r}",
                        subject=subject,
                        path=p,
                        rendering=pretty(t, env=env)
                        if not isinstance(t, Elim)
                        else None,
                    )
                )
            elif name in tainted:
                severity = (
                    Severity.INFO if name in allow else Severity.ERROR
                )
                qualifier = (
                    " (allowed configuration constant)"
                    if name in allow
                    else ""
                )
                out.append(
                    Diagnostic(
                        code="RA102",
                        severity=severity,
                        message=(
                            f"reference to {name!r}, whose delta-unfolding "
                            f"mentions an old global{qualifier}"
                        ),
                        subject=subject,
                        path=p,
                    )
                )
        if isinstance(t, App):
            stack.append((t.fn, p + ("fn",)))
            stack.append((t.arg, p + ("arg",)))
        elif isinstance(t, Lam):
            stack.append((t.domain, p + ("domain",)))
            stack.append((t.body, p + ("body",)))
        elif isinstance(t, Pi):
            stack.append((t.domain, p + ("domain",)))
            stack.append((t.codomain, p + ("codomain",)))
        elif isinstance(t, Elim):
            stack.append((t.motive, p + ("motive",)))
            for j, case in enumerate(t.cases):
                stack.append((case, p + (f"case[{j}]",)))
            stack.append((t.scrut, p + ("scrut",)))
    return out
