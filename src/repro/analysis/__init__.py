"""``repro.analysis`` — static analysis for terms, configs, and scripts.

Four read-only passes over the artifacts of proof repair, each emitting
shared :class:`~repro.analysis.diagnostics.Diagnostic` values:

* :mod:`~repro.analysis.scope` — scope & arity checking of de Bruijn
  terms against the environment (RA0xx);
* :mod:`~repro.analysis.residual` — residual references to the old
  type in repaired terms, through δ-unfoldings (RA1xx);
* :mod:`~repro.analysis.configlint` — Figure 8 configuration coherence
  (RA2xx);
* :mod:`~repro.analysis.tacticlint` — decompiled tactic scripts
  (RA3xx);
* :mod:`~repro.analysis.impact` — whole-environment change-impact
  verdicts and content-addressed repair plans (RA4xx).

``python -m repro.analysis`` sweeps the stdlib and every case study;
``REPRO_ANALYZE=1`` (or :func:`set_analysis`) arms the in-pipeline
gates.  See DESIGN.md, "Static analysis".
"""

from .diagnostics import CODES, Diagnostic, Report, Severity
from .gate import (
    ANALYZE_ENABLED_BY_ENV,
    ANALYZE_ENV_VAR,
    AnalysisError,
    analysis_enabled,
    repair_gate,
    rule_gate,
    set_analysis,
)
from .configlint import lint_configuration
from .impact import (
    VERDICT_OPAQUE,
    VERDICT_SIGNATURE,
    VERDICT_TRANSPORT,
    VERDICT_UNAFFECTED,
    VERDICTS,
    ImpactEntry,
    PlanStore,
    RepairPlan,
    build_plan,
    ensure_plan,
    plan_key,
)
from .residual import find_residuals, tainted_globals
from .scope import (
    check_constant,
    check_environment,
    check_inductive,
    check_term,
)
from .tacticlint import lint_script

__all__ = [
    "ANALYZE_ENABLED_BY_ENV",
    "ANALYZE_ENV_VAR",
    "AnalysisError",
    "CODES",
    "Diagnostic",
    "ImpactEntry",
    "PlanStore",
    "RepairPlan",
    "Report",
    "Severity",
    "VERDICTS",
    "VERDICT_OPAQUE",
    "VERDICT_SIGNATURE",
    "VERDICT_TRANSPORT",
    "VERDICT_UNAFFECTED",
    "analysis_enabled",
    "build_plan",
    "check_constant",
    "check_environment",
    "check_inductive",
    "check_term",
    "ensure_plan",
    "find_residuals",
    "lint_configuration",
    "lint_script",
    "plan_key",
    "repair_gate",
    "rule_gate",
    "set_analysis",
    "tainted_globals",
]
