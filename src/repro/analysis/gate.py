"""The ``REPRO_ANALYZE`` gate: analysis hooks inside the pipeline.

Mirrors :mod:`repro.obs`: off by default, enabled by ``REPRO_ANALYZE=1``
or :func:`set_analysis`, and when off the hooks cost one boolean check —
repair output is byte-identical either way (the passes only *read*
terms).

When on:

* :func:`rule_gate` — called by :class:`~repro.core.transform.Transformer`
  after every Figure 10 rule fires; a malformed intermediate term raises
  :class:`AnalysisError` naming the rule that produced it, instead of a
  deep kernel ``TypeError_`` much later;
* :func:`repair_gate` — called by
  :class:`~repro.core.repair.RepairSession` on every repaired term
  before the kernel check; runs the scope pass and the
  residual-reference pass (Section 4's guarantee) and raises on any
  error-severity finding.

Both hooks record their wall time through the tracer (span
``"analyze"``), so benchmark reports pick the analysis cost up as a
phase.
"""

from __future__ import annotations

import os
from typing import AbstractSet, Iterable, List, Optional

from ..kernel.env import Environment
from ..kernel.term import Term, TermError
from ..obs import span
from .diagnostics import Diagnostic
from .residual import find_residuals
from .scope import check_term

ANALYZE_ENV_VAR = "REPRO_ANALYZE"

#: whether the process started with analysis enabled
ANALYZE_ENABLED_BY_ENV: bool = os.environ.get(ANALYZE_ENV_VAR, "") not in (
    "",
    "0",
)

_enabled: bool = ANALYZE_ENABLED_BY_ENV


def analysis_enabled() -> bool:
    """Is the in-pipeline analysis gate on?"""
    return _enabled


def set_analysis(enabled: bool) -> bool:
    """Turn the gate on or off; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    return previous


class AnalysisError(TermError):
    """An analysis pass found error-severity diagnostics.

    ``diagnostics`` carries the findings; ``rule`` names the Figure 10
    rule whose output tripped the gate, when raised by
    :func:`rule_gate`.
    """

    def __init__(
        self,
        message: str,
        diagnostics: List[Diagnostic],
        rule: Optional[str] = None,
    ) -> None:
        details = "\n".join(d.render() for d in diagnostics)
        super().__init__(f"{message}\n{details}" if details else message)
        self.diagnostics = diagnostics
        self.rule = rule

    @property
    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]


def rule_gate(
    env: Environment, rule: str, term: Term, depth: int
) -> None:
    """Scope-check one rule's output (``depth`` enclosing binders)."""
    if not _enabled:
        return
    with span("analyze", rule=rule):
        diagnostics = check_term(
            env, term, depth=depth, subject=f"rule {rule}"
        )
    if diagnostics:
        raise AnalysisError(
            f"transformation rule {rule} produced a malformed term",
            diagnostics,
            rule=rule,
        )


def repair_gate(
    env: Environment,
    term: Term,
    old_globals: Iterable[str],
    allow: AbstractSet[str],
    subject: str,
) -> None:
    """Scope- and residual-check one repaired (closed) term."""
    if not _enabled:
        return
    with span("analyze", subject=subject):
        diagnostics = check_term(env, term, subject=subject)
        diagnostics.extend(
            find_residuals(
                env, term, old_globals, allow=allow, subject=subject
            )
        )
    errors = [d for d in diagnostics if d.severity.value == "error"]
    if errors:
        raise AnalysisError(
            f"analysis of repaired term {subject} failed", errors
        )
