"""Whole-environment change-impact analysis: static repair planning.

Repairing a development transports *every* definition downstream of the
changed type, but in realistic environments most declarations are
provably untouched by a given configuration.  This pass classifies each
declaration — using the environment's memoized direct-reference graph
(:meth:`~repro.kernel.env.Environment.declaration_refs`, built on the
``collect_globals`` memo) and a taint fixpoint from the configuration's
old-side globals — into one of four verdicts:

* ``unaffected`` (RA401) — neither the type nor the body reaches an old
  global through any chain of references, delta-hidden ones included.
  The transformer's trigger-global pruning then guarantees repair is
  the identity on the definition, so a scheduler may skip its job;
* ``signature-only`` (RA402) — only the declared type reaches the
  change; the body itself is clean;
* ``transport-needed`` (RA403) — the body reaches the change and full
  Figure 10 transport is required;
* ``opaque`` (RA404) — nothing can be certified: configuration
  constants that deliberately bridge both sides (the ``allow``/``skip``
  set) and opaque constants whose unfolding the kernel hides.  These
  must be repaired.

Only ``unaffected`` licenses skipping work.  The soundness argument:
the taint fixpoint includes every global whose unfolding transitively
mentions an old global, so an unaffected definition's reference cone
contains no trigger global and no constant any repair could rename —
the transformation maps the whole cone to itself, byte for byte.  The
``--no-impact`` differential gate re-checks this claim empirically
against the per-declaration digests recorded in the plan.

The result is a content-addressed :class:`RepairPlan` artifact — keyed
on the environment fingerprint, the old globals, and the allow set —
with per-definition evidence chains (shortest reference path to an old
global), JSON and SARIF renderings, and a corruption-tolerant
:class:`PlanStore` so repeat batches over an unchanged environment
reuse the plan instead of re-analyzing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..kernel.env import Environment
from ..kernel.inductive import InductiveDecl
from ..kernel.pretty import pretty
from .diagnostics import Diagnostic, Report, Severity

#: Version of the plan artifact layout.  Bumping it invalidates every
#: persisted plan at once.
PLAN_SCHEMA_VERSION = 1

# -- Verdict lattice ----------------------------------------------------------

VERDICT_UNAFFECTED = "unaffected"
VERDICT_SIGNATURE = "signature-only"
VERDICT_TRANSPORT = "transport-needed"
VERDICT_OPAQUE = "opaque"

#: Every verdict, ordered by how much work the definition needs.
VERDICTS = (
    VERDICT_UNAFFECTED,
    VERDICT_SIGNATURE,
    VERDICT_TRANSPORT,
    VERDICT_OPAQUE,
)

#: Stable diagnostic code per verdict (registered in ``CODES``).
VERDICT_CODES = {
    VERDICT_UNAFFECTED: "RA401",
    VERDICT_SIGNATURE: "RA402",
    VERDICT_TRANSPORT: "RA403",
    VERDICT_OPAQUE: "RA404",
}

#: Diagnostic severity per verdict: verdicts are facts, not problems,
#: so only the can't-certify case warns.
VERDICT_SEVERITIES = {
    VERDICT_UNAFFECTED: Severity.INFO,
    VERDICT_SIGNATURE: Severity.INFO,
    VERDICT_TRANSPORT: Severity.INFO,
    VERDICT_OPAQUE: Severity.WARNING,
}


class ImpactError(Exception):
    """Raised for malformed plans and plan-store records."""


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _inductive_rendering(decl: InductiveDecl) -> str:
    parts = [f"inductive {decl.name} sort={decl.sort!r}"]
    for name, ty in tuple(decl.params) + tuple(decl.indices):
        parts.append(f"  tele {name} : {pretty(ty)}")
    for ctor in decl.constructors:
        args = " ".join(
            f"({name} : {pretty(ty)})" for name, ty in ctor.args
        )
        indices = " ".join(pretty(t) for t in ctor.result_indices)
        parts.append(f"  ctor {ctor.name} {args} -> {indices}")
    return "\n".join(parts)


# -- Plan entries -------------------------------------------------------------


@dataclass(frozen=True)
class ImpactEntry:
    """One declaration's verdict, with evidence.

    ``chain`` is the shortest reference path from the declaration to an
    old global (``(name, ..., old)``); empty for ``unaffected``.
    ``term_digest``/``type_digest`` hash the pretty-printed body and
    type exactly as worker records render them, so the differential
    soundness gate can compare a force-run job's output byte for byte.
    ``def_digest`` hashes the whole declaration — the evidence digest
    recorded in skipped job records.
    """

    name: str
    kind: str  # "constant" | "inductive"
    verdict: str
    chain: Tuple[str, ...]
    reason: str
    def_digest: str
    term_digest: Optional[str] = None
    type_digest: Optional[str] = None

    def __post_init__(self) -> None:
        if self.verdict not in VERDICTS:
            raise ImpactError(f"unknown verdict {self.verdict!r}")
        if self.kind not in ("constant", "inductive"):
            raise ImpactError(f"unknown declaration kind {self.kind!r}")

    @property
    def code(self) -> str:
        return VERDICT_CODES[self.verdict]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "verdict": self.verdict,
            "code": self.code,
            "chain": list(self.chain),
            "reason": self.reason,
            "def_digest": self.def_digest,
        }
        if self.term_digest is not None:
            out["term_digest"] = self.term_digest
        if self.type_digest is not None:
            out["type_digest"] = self.type_digest
        return out

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "ImpactEntry":
        if not isinstance(raw, dict):
            raise ImpactError("plan entry must be an object")
        try:
            return ImpactEntry(
                name=str(raw["name"]),
                kind=str(raw["kind"]),
                verdict=str(raw["verdict"]),
                chain=tuple(raw.get("chain", ())),
                reason=str(raw.get("reason", "")),
                def_digest=str(raw["def_digest"]),
                term_digest=raw.get("term_digest"),
                type_digest=raw.get("type_digest"),
            )
        except KeyError as exc:
            raise ImpactError(f"plan entry missing field {exc}") from exc

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity=VERDICT_SEVERITIES[self.verdict],
            message=f"{self.verdict}: {self.reason}",
            subject=self.name,
            path=self.chain[1:] if len(self.chain) > 1 else (),
        )


# -- The plan artifact --------------------------------------------------------


@dataclass
class RepairPlan:
    """A whole-environment verdict map, content addressed.

    ``fingerprint`` is the environment fingerprint the plan was built
    against (a consumer must refuse a plan whose fingerprint disagrees
    with its job's).  ``entries`` is keyed by declaration name in
    declaration order.
    """

    fingerprint: str
    old: Tuple[str, ...]
    allow: Tuple[str, ...]
    entries: Dict[str, ImpactEntry]
    schema_version: int = PLAN_SCHEMA_VERSION
    _digest: Optional[str] = field(default=None, repr=False)

    def verdict(self, name: str) -> Optional[str]:
        entry = self.entries.get(name)
        return entry.verdict if entry is not None else None

    def counts(self) -> Dict[str, int]:
        out = {verdict: 0 for verdict in VERDICTS}
        for entry in self.entries.values():
            out[entry.verdict] += 1
        return out

    def payload(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "fingerprint": self.fingerprint,
            "old": list(self.old),
            "allow": list(self.allow),
            "entries": [e.to_dict() for e in self.entries.values()],
        }

    @property
    def digest(self) -> str:
        """SHA-256 content address over :meth:`payload` (canonical JSON)."""
        cached = self._digest
        if cached is None:
            canonical = json.dumps(
                self.payload(), sort_keys=True, separators=(",", ":")
            )
            cached = _sha256(canonical)
            self._digest = cached
        return cached

    def to_dict(self) -> Dict[str, Any]:
        out = self.payload()
        out["digest"] = self.digest
        out["counts"] = self.counts()
        return out

    @staticmethod
    def from_dict(raw: Dict[str, Any]) -> "RepairPlan":
        if not isinstance(raw, dict):
            raise ImpactError("plan must be an object")
        if raw.get("schema_version") != PLAN_SCHEMA_VERSION:
            raise ImpactError(
                f"plan schema {raw.get('schema_version')!r} != "
                f"{PLAN_SCHEMA_VERSION}"
            )
        entries_raw = raw.get("entries")
        if not isinstance(entries_raw, list):
            raise ImpactError("plan 'entries' must be a list")
        entries: Dict[str, ImpactEntry] = {}
        for item in entries_raw:
            entry = ImpactEntry.from_dict(item)
            entries[entry.name] = entry
        plan = RepairPlan(
            fingerprint=str(raw.get("fingerprint", "")),
            old=tuple(raw.get("old", ())),
            allow=tuple(raw.get("allow", ())),
            entries=entries,
        )
        declared = raw.get("digest")
        if declared is not None and declared != plan.digest:
            raise ImpactError("plan digest mismatch (corrupt artifact)")
        return plan

    def to_report(self) -> Report:
        report = Report()
        for entry in self.entries.values():
            report.add(entry.to_diagnostic())
        return report

    def render(self) -> str:
        """Human-readable summary: counts, then non-unaffected verdicts."""
        counts = self.counts()
        lines = [
            "impact plan {}: {} declaration(s) — {}".format(
                self.digest[:12],
                len(self.entries),
                ", ".join(
                    f"{counts[verdict]} {verdict}" for verdict in VERDICTS
                ),
            )
        ]
        for entry in self.entries.values():
            if entry.verdict == VERDICT_UNAFFECTED:
                continue
            where = " via " + " -> ".join(entry.chain[1:]) if len(
                entry.chain
            ) > 1 else ""
            lines.append(
                f"  {entry.code} {entry.name}: {entry.verdict}{where}"
            )
        return "\n".join(lines)


# -- Building a plan ----------------------------------------------------------


def _taint_with_parents(
    refs: Dict[str, FrozenSet[str]], old: FrozenSet[str]
) -> Tuple[FrozenSet[str], Dict[str, str]]:
    """BFS taint fixpoint; ``parents[n]`` is one step closer to ``old``.

    BFS (rather than the naive loop) makes every recorded chain a
    *shortest* evidence path, and keeps the pass linear in the number
    of references.
    """
    reverse: Dict[str, List[str]] = {}
    for name in sorted(refs):
        for dep in refs[name]:
            reverse.setdefault(dep, []).append(name)
    tainted = set(old)
    parents: Dict[str, str] = {}
    queue = deque(sorted(old))
    while queue:
        current = queue.popleft()
        for referent in reverse.get(current, ()):
            if referent not in tainted:
                tainted.add(referent)
                parents[referent] = current
                queue.append(referent)
    return frozenset(tainted), parents


def _chain(
    name: str,
    witness: str,
    old: FrozenSet[str],
    parents: Dict[str, str],
) -> Tuple[str, ...]:
    chain = [name]
    current = witness
    chain.append(current)
    while current not in old:
        current = parents[current]
        chain.append(current)
    return tuple(chain)


def _witness(
    names: FrozenSet[str], tainted: FrozenSet[str]
) -> Optional[str]:
    hits = names & tainted
    return min(hits) if hits else None


def build_plan(
    env: Environment,
    old_globals: Iterable[str],
    allow: Iterable[str] = (),
    fingerprint: str = "",
) -> RepairPlan:
    """Classify every declaration in ``env`` against a change.

    ``old_globals`` are the configuration's old-side globals (the
    scheduler passes the job's ``old`` tuple); ``allow`` is the
    configuration-constant allow/skip set, which is never certifiable.
    """
    old = frozenset(old_globals)
    allowed = frozenset(allow)
    refs = env.declaration_refs()
    tainted, parents = _taint_with_parents(refs, old)
    entries: Dict[str, ImpactEntry] = {}
    for name in env.declaration_order():
        if env.has_inductive(name):
            ind = env.inductive(name)
            kind = "inductive"
            opaque = False
            type_refs = refs[name]
            body_refs: FrozenSet[str] = frozenset()
            rendering = _inductive_rendering(ind)
            term_digest: Optional[str] = None
            type_digest: Optional[str] = None
        else:
            decl = env.constant(name)
            kind = "constant"
            opaque = decl.opaque
            from ..kernel.term import collect_globals

            type_refs = frozenset(collect_globals(decl.type))
            body_refs = (
                frozenset(collect_globals(decl.body))
                if decl.body is not None
                else frozenset()
            )
            type_pretty = pretty(decl.type)
            body_pretty = (
                pretty(decl.body) if decl.body is not None else "<none>"
            )
            rendering = f"{name} : {type_pretty} := {body_pretty}"
            term_digest = (
                _sha256(body_pretty) if decl.body is not None else None
            )
            type_digest = _sha256(type_pretty)
        type_wit = _witness(type_refs, tainted)
        body_wit = _witness(body_refs, tainted)
        witness = body_wit or type_wit
        chain: Tuple[str, ...] = ()
        if name in old:
            verdict = VERDICT_TRANSPORT
            reason = "configuration old-side global"
            chain = (name,)
        elif name in allowed:
            verdict = VERDICT_OPAQUE
            reason = "configuration constant bridges both sides"
            if witness is not None:
                chain = _chain(name, witness, old, parents)
        elif witness is None:
            verdict = VERDICT_UNAFFECTED
            reason = "no reference chain reaches an old global"
        else:
            chain = _chain(name, witness, old, parents)
            if opaque:
                verdict = VERDICT_OPAQUE
                reason = (
                    "opaque constant reaches the change; its unfolding "
                    "is hidden from the transformer"
                )
            elif kind == "inductive":
                verdict = VERDICT_TRANSPORT
                reason = "inductive family mentions the changed type"
            elif body_wit is not None:
                verdict = VERDICT_TRANSPORT
                reason = f"body reaches old global via {body_wit!r}"
            else:
                verdict = VERDICT_SIGNATURE
                reason = f"only the type reaches old global via {type_wit!r}"
        entries[name] = ImpactEntry(
            name=name,
            kind=kind,
            verdict=verdict,
            chain=chain,
            reason=reason,
            def_digest=_sha256(rendering),
            term_digest=term_digest,
            type_digest=type_digest,
        )
    return RepairPlan(
        fingerprint=fingerprint,
        old=tuple(sorted(old)),
        allow=tuple(sorted(allowed)),
        entries=entries,
    )


# -- The plan store -----------------------------------------------------------

#: Environment variable naming the plan-store directory.
IMPACT_STORE_ENV_VAR = "REPRO_IMPACT_STORE"


def default_plan_dir() -> str:
    """``$REPRO_IMPACT_STORE`` when set, else ``~/.cache/repro/impact``."""
    configured = os.environ.get(IMPACT_STORE_ENV_VAR)
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "impact"
    )


def plan_key(
    fingerprint: str, old: Iterable[str], allow: Iterable[str] = ()
) -> str:
    """Content address of a plan request (not of the plan itself)."""
    canonical = json.dumps(
        {
            "schema_version": PLAN_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "old": sorted(old),
            "allow": sorted(allow),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return _sha256(canonical)


class PlanStore:
    """A directory of plan artifacts keyed by :func:`plan_key`.

    Mirrors the result store's contract: a missing, corrupt, or
    schema-mismatched artifact reads as a miss (refuse-don't-crash),
    and writes are atomic.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else default_plan_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.json")

    def get(self, key: str) -> Optional[RepairPlan]:
        try:
            with open(self._path(key), "r", encoding="utf-8") as handle:
                raw = json.load(handle)
            plan = RepairPlan.from_dict(raw)
        except (OSError, ValueError, ImpactError):
            self.misses += 1
            return None
        self.hits += 1
        return plan

    def put(self, key: str, plan: RepairPlan) -> None:
        os.makedirs(self.root, exist_ok=True)
        payload = json.dumps(plan.to_dict(), sort_keys=True, indent=1)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".plan-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, self._path(key))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


def ensure_plan(
    fingerprint: str,
    old: Iterable[str],
    env_factory: Callable[[], Environment],
    allow: Iterable[str] = (),
    store: Optional[PlanStore] = None,
) -> RepairPlan:
    """Fetch a plan from the store, or build and persist it.

    ``env_factory`` is only called on a store miss, so repeat batches
    over an unchanged environment never rebuild it for analysis.
    """
    old = tuple(old)
    allow = tuple(allow)
    key = plan_key(fingerprint, old, allow)
    if store is not None:
        cached = store.get(key)
        if cached is not None and cached.fingerprint == fingerprint:
            return cached
    plan = build_plan(
        env_factory(), old, allow=allow, fingerprint=fingerprint
    )
    if store is not None:
        store.put(key, plan)
    return plan


# -- CLI ----------------------------------------------------------------------


def _setup_plans(
    setups: Sequence[Tuple[str, Tuple[str, ...], Tuple[str, ...]]],
    store: Optional[PlanStore],
) -> List[Tuple[str, RepairPlan]]:
    from ..service.job import fingerprint_source
    from ..service.worker import build_environment

    out: List[Tuple[str, RepairPlan]] = []
    for setup, old, allow in setups:
        plan = ensure_plan(
            fingerprint_source(setup),
            old,
            lambda setup=setup: build_environment(setup),
            allow=allow,
            store=store,
        )
        out.append((setup, plan))
    return out


def _six_case_setups() -> List[
    Tuple[str, Tuple[str, ...], Tuple[str, ...]]
]:
    from ..service.cases import six_case_jobs

    seen: Dict[
        Tuple[str, Tuple[str, ...], Tuple[str, ...]], None
    ] = {}
    for job in six_case_jobs():
        seen.setdefault((job.setup, job.old, job.skip), None)
    return list(seen)


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.impact",
        description="Static change-impact analysis over an environment.",
    )
    parser.add_argument(
        "--setup",
        metavar="REF",
        help="dotted pkg.mod:fn environment builder to analyze",
    )
    parser.add_argument(
        "--old",
        action="append",
        default=[],
        metavar="NAME",
        help="old-side global (repeatable)",
    )
    parser.add_argument(
        "--allow",
        action="append",
        default=[],
        metavar="NAME",
        help="configuration constant allowed to bridge both sides "
        "(repeatable)",
    )
    parser.add_argument(
        "--six-cases",
        action="store_true",
        help="analyze every six-case-batch environment instead of --setup",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the plan(s) as JSON to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--sarif",
        metavar="PATH",
        help="write a SARIF 2.1.0 rendering to PATH",
    )
    parser.add_argument(
        "--store-dir",
        metavar="DIR",
        help="plan-store directory (default: $REPRO_IMPACT_STORE or "
        "~/.cache/repro/impact)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="always rebuild; do not read or write the plan store",
    )
    args = parser.parse_args(argv)

    if args.six_cases:
        setups = _six_case_setups()
    elif args.setup:
        if not args.old:
            parser.error("--setup requires at least one --old NAME")
        setups = [
            (args.setup, tuple(args.old), tuple(args.allow))
        ]
    else:
        parser.error("one of --setup or --six-cases is required")

    store = None if args.no_store else PlanStore(args.store_dir)
    plans = _setup_plans(setups, store)

    if args.json:
        document = json.dumps(
            {
                "schema_version": PLAN_SCHEMA_VERSION,
                "plans": [
                    {"setup": setup, **plan.to_dict()}
                    for setup, plan in plans
                ],
            },
            indent=1,
            sort_keys=True,
        )
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
    if args.sarif:
        from .sarif import plans_to_sarif

        with open(args.sarif, "w", encoding="utf-8") as handle:
            json.dump(plans_to_sarif(plans), handle, indent=1)
            handle.write("\n")
    if not args.json or args.json != "-":
        for setup, plan in plans:
            print(f"== {setup}")
            print(plan.render())
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
