"""Configuration linter: Figure 8 coherence as diagnostics.

``Configuration.check`` raises on the first violation it finds; this
pass reports *all* of them, as data, without raising:

* parameter / dependent-constructor counts agree across the A and B
  sides (RA201, RA202) and per-constructor arities line up (RA203);
* supplied configuration terms (``type_fn``, ``DepConstr``,
  ``DepElim``, ``Eta``, ``Iota`` — a :class:`TermSide`'s manual
  configuration) are closed and type check (RA204);
* ``Iota`` entries match the constructor count (RA205) and explicit
  iota-mark constants are declared (RA204);
* constructor permutations are genuine permutations (RA208);
* an attached equivalence's ``f``/``g`` type check (RA207) and its
  ``section``/``retraction`` proofs conclude with the roundtrip
  equality of Figure 3 (RA206).

Sides are inspected structurally (``perm``, ``iota_names``,
``type_fn``, ...), so the pass works on any :class:`Side` subclass —
including the ornament and record sides that live with their search
procedures — without importing :mod:`repro.core` at module scope.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from ..kernel.context import Context
from ..kernel.env import Environment
from ..kernel.term import Ind, Rel, Term, TermError, unfold_app, unfold_pis
from ..kernel.typecheck import infer
from .diagnostics import Diagnostic, Severity
from .scope import check_term

if TYPE_CHECKING:  # pragma: no cover - annotations only, avoids a cycle
    from ..core.config import Configuration, Equivalence


def _error(
    code: str,
    message: str,
    subject: str,
    path: Tuple[str, ...] = (),
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=Severity.ERROR,
        message=message,
        subject=subject,
        path=path,
    )


def _lint_config_term(
    env: Environment,
    term: Term,
    subject: str,
    name: str,
) -> List[Diagnostic]:
    """A configuration term must be closed, well-scoped, and typeable."""
    scoped = check_term(env, term, subject=subject, path=(name,))
    if scoped:
        problems = ", ".join(d.message for d in scoped)
        return [
            _error(
                "RA204",
                f"configuration term {name} is open or malformed: "
                f"{problems}",
                subject,
                (name,),
            )
        ]
    try:
        infer(env, Context.empty(), term)
    except TermError as exc:
        return [
            _error(
                "RA204",
                f"configuration term {name} fails to type check: {exc}",
                subject,
                (name,),
            )
        ]
    return []


def _lint_side(
    env: Environment, label: str, side: object
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    n_constrs = int(getattr(side, "n_constrs", 0))

    perm: Optional[Sequence[int]] = getattr(side, "perm", None)
    if perm is not None and sorted(perm) != list(range(n_constrs)):
        out.append(
            _error(
                "RA208",
                f"{tuple(perm)} is not a permutation of "
                f"0..{n_constrs - 1}",
                label,
                ("perm",),
            )
        )

    iota_names: Optional[Sequence[Optional[str]]] = getattr(
        side, "iota_names", None
    )
    if iota_names is not None:
        if len(iota_names) != n_constrs:
            out.append(
                _error(
                    "RA205",
                    f"{len(iota_names)} iota mark(s) for {n_constrs} "
                    "dependent constructor(s)",
                    label,
                    ("iota_names",),
                )
            )
        for j, name in enumerate(iota_names):
            if name is not None and not env.has_constant(name):
                out.append(
                    _error(
                        "RA204",
                        f"iota mark constant {name!r} is not declared",
                        label,
                        (f"iota_names[{j}]",),
                    )
                )

    type_fn: Optional[Term] = getattr(side, "type_fn", None)
    if type_fn is not None:
        out.extend(_lint_config_term(env, type_fn, label, "type_fn"))
        dep_constr: Sequence[Term] = getattr(side, "dep_constr", ())
        for j, ctor in enumerate(dep_constr):
            out.extend(
                _lint_config_term(env, ctor, label, f"dep_constr[{j}]")
            )
        dep_elim: Optional[Term] = getattr(side, "dep_elim", None)
        if dep_elim is not None:
            out.extend(_lint_config_term(env, dep_elim, label, "dep_elim"))
        iota: Sequence[Optional[Term]] = getattr(side, "iota", ())
        if len(iota) != n_constrs:
            out.append(
                _error(
                    "RA205",
                    f"{len(iota)} iota term(s) for {n_constrs} dependent "
                    "constructor(s)",
                    label,
                    ("iota",),
                )
            )
        for j, term in enumerate(iota):
            if term is not None:
                out.extend(
                    _lint_config_term(env, term, label, f"iota[{j}]")
                )

    eta: Optional[Term] = getattr(side, "eta", None)
    if eta is not None:
        out.extend(_lint_config_term(env, eta, label, "eta"))

    return out


def _lint_equivalence(
    env: Environment, eqv: "Equivalence", subject: str
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for name, fn in (("f", eqv.f), ("g", eqv.g)):
        if check_term(env, fn, subject=subject, path=(name,)):
            out.append(
                _error(
                    "RA207",
                    f"equivalence function {name} is open or references "
                    "undeclared globals",
                    subject,
                    (name,),
                )
            )
            continue
        try:
            infer(env, Context.empty(), fn)
        except TermError as exc:
            out.append(
                _error(
                    "RA207",
                    f"equivalence function {name} fails to type check: "
                    f"{exc}",
                    subject,
                    (name,),
                )
            )
    for name, proof in (
        ("section", eqv.section),
        ("retraction", eqv.retraction),
    ):
        if proof is None:
            continue
        if check_term(env, proof, subject=subject, path=(name,)):
            out.append(
                _error(
                    "RA206",
                    f"{name} proof is open or references undeclared "
                    "globals",
                    subject,
                    (name,),
                )
            )
            continue
        try:
            ty = infer(env, Context.empty(), proof)
        except TermError as exc:
            out.append(
                _error(
                    "RA206",
                    f"{name} proof fails to type check: {exc}",
                    subject,
                    (name,),
                )
            )
            continue
        _binders, conclusion = unfold_pis(ty)
        head, args = unfold_app(conclusion)
        if not (
            isinstance(head, Ind) and head.name == "eq" and len(args) == 3
        ):
            out.append(
                _error(
                    "RA206",
                    f"{name} proof does not conclude with an equality",
                    subject,
                    (name,),
                )
            )
        elif args[2] != Rel(0):
            out.append(
                _error(
                    "RA206",
                    f"{name} proof does not conclude at the roundtrip "
                    "argument itself",
                    subject,
                    (name,),
                )
            )
    return out


def lint_configuration(
    env: Environment, config: "Configuration", subject: str = "configuration"
) -> List[Diagnostic]:
    """Lint one configuration; returns every violation found."""
    out: List[Diagnostic] = []
    a = config.a
    b = config.b
    if a.n_params != b.n_params:
        out.append(
            _error(
                "RA201",
                f"side a has {a.n_params} parameter(s), side b has "
                f"{b.n_params}",
                subject,
            )
        )
    if a.n_constrs != b.n_constrs:
        out.append(
            _error(
                "RA202",
                f"side a has {a.n_constrs} dependent constructor(s), "
                f"side b has {b.n_constrs}",
                subject,
            )
        )
    for j in range(min(a.n_constrs, b.n_constrs)):
        try:
            arity_a = a.constr_arity(j)
            arity_b = b.constr_arity(j)
        except (IndexError, NotImplementedError):
            out.append(
                _error(
                    "RA203",
                    f"dependent constructor {j} has no declared arity on "
                    "one side",
                    subject,
                    (f"constr[{j}]",),
                )
            )
            continue
        if arity_a != arity_b:
            out.append(
                _error(
                    "RA203",
                    f"dependent constructor {j} takes {arity_a} "
                    f"argument(s) on side a but {arity_b} on side b",
                    subject,
                    (f"constr[{j}]",),
                )
            )
    out.extend(_lint_side(env, f"{subject}.a", config.a))
    out.extend(_lint_side(env, f"{subject}.b", config.b))
    if config.equivalence is not None:
        out.extend(_lint_equivalence(env, config.equivalence, subject))
    return out
