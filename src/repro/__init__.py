"""repro: *Proof Repair Across Type Equivalences* (PLDI 2021) in Python.

A from-scratch reproduction of Pumpkin Pi: a CIC-omega proof kernel, a
configurable proof term transformation for transport across type
equivalences, automatic configuration search procedures, a proof term to
tactic script decompiler, and a tactic engine that replays the suggested
scripts.

Quick start::

    from repro import make_env, declare_list_type, configure, RepairSession

    env = make_env()
    declare_list_type(env, "New.list", swapped=True)
    config = configure(env, "list", "New.list")
    session = RepairSession(env, config, old_globals=["list"],
                            rename=lambda n: f"New.{n}")
    result = session.repair_constant("rev_app_distr")

See ``examples/quickstart.py`` for the full Section 2 walkthrough.
"""

from .commands import CommandError, CommandResult, CommandSession
from .core import (
    AlignedSide,
    ConfigError,
    Configuration,
    Equivalence,
    MarkedIotaSide,
    RepairError,
    RepairResult,
    RepairSession,
    TermSide,
    TransformCache,
    TransformError,
    Transformer,
    configure,
    repair,
    repair_module,
    transform_term,
)
from .decompile.decompiler import decompile_to_script, print_script
from .decompile.run import run_script
from .kernel import Environment, pretty
from .stdlib import declare_list_type, declare_record, make_env
from .syntax.parser import parse
from .tactics import Proof, prove

__version__ = "0.1.0"

__all__ = [
    "AlignedSide",
    "CommandError",
    "CommandResult",
    "CommandSession",
    "ConfigError",
    "Configuration",
    "Environment",
    "Equivalence",
    "MarkedIotaSide",
    "Proof",
    "RepairError",
    "RepairResult",
    "RepairSession",
    "TermSide",
    "TransformCache",
    "TransformError",
    "Transformer",
    "configure",
    "declare_list_type",
    "declare_record",
    "decompile_to_script",
    "make_env",
    "parse",
    "pretty",
    "print_script",
    "prove",
    "repair",
    "repair_module",
    "run_script",
    "transform_term",
]
