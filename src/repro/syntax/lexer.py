"""Lexer for the Gallina-like surface syntax."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


class LexError(Exception):
    """Raised on unrecognized input."""


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'int' | 'punct' | 'eof'
    text: str
    pos: int


_PUNCTS = [
    "=>",
    "->",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
    ":",
    "@",
    "#",
]

_IDENT_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_IDENT_CONT = _IDENT_START | set("0123456789'.")


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; comments are ``(* ... *)`` (nested allowed)."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if text.startswith("(*", i):
            depth = 1
            i += 2
            while i < n and depth > 0:
                if text.startswith("(*", i):
                    depth += 1
                    i += 2
                elif text.startswith("*)", i):
                    depth -= 1
                    i += 2
                else:
                    i += 1
            if depth > 0:
                raise LexError("unterminated comment")
            continue
        matched = False
        for punct in _PUNCTS:
            if text.startswith(punct, i):
                tokens.append(Token("punct", punct, i))
                i += len(punct)
                matched = True
                break
        if matched:
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            tokens.append(Token("int", text[i:j], i))
            i = j
            continue
        if ch in _IDENT_START:
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            ident = text[i:j]
            # Identifiers may contain dots (qualified names) but must not
            # end with one.
            while ident.endswith("."):
                ident = ident[:-1]
                j -= 1
            tokens.append(Token("ident", ident, i))
            i = j
            continue
        raise LexError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token("eof", "", n))
    return tokens
