"""Parser for a Gallina-like surface syntax.

Grammar (terms)::

    term    ::= 'fun' binders '=>' term
              | 'forall' binders ',' term
              | arrow
    arrow   ::= app ('->' arrow)?
    app     ::= atom atom*
    atom    ::= IDENT | INT | 'Prop' | 'Set' | 'Type' INT?
              | '(' term ')'
              | 'Elim' '[' IDENT ']' '(' term ';' term ')' '{' terms '}'
              | IDENT '#' INT                 (constructor by index)
    binders ::= ('(' IDENT+ ':' term ')')+

Name resolution: local binders shadow globals; otherwise an identifier
resolves to a constant, an inductive type, or an unambiguous constructor
name.  Integer literals elaborate to unary numerals when the environment
declares ``nat``.  This syntax is exactly what the kernel pretty printer
emits, so printing and re-parsing round-trips.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..kernel.env import Environment
from ..kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    PROP,
    Pi,
    Rel,
    SET,
    Term,
    lift,
    type_sort,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    """Raised on syntax errors or unresolvable names."""


class Parser:
    """A recursive-descent parser over a token list."""

    def __init__(self, env: Environment, text: str) -> None:
        self.env = env
        self.tokens = tokenize(text)
        self.pos = 0
        self._ctor_table = _constructor_table(env)

    # -- Token plumbing ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, got {tok.text!r} at position {tok.pos}"
            )
        return tok

    def at_punct(self, text: str) -> bool:
        tok = self.peek()
        return tok.kind == "punct" and tok.text == text

    def at_ident(self, text: Optional[str] = None) -> bool:
        tok = self.peek()
        if tok.kind != "ident":
            return False
        return text is None or tok.text == text

    # -- Grammar ---------------------------------------------------------------

    def parse_term(self, bound: Tuple[str, ...] = ()) -> Term:
        term = self._term(list(bound))
        self.expect("eof")
        return term

    def _term(self, bound: List[str]) -> Term:
        if self.at_ident("fun"):
            self.next()
            binders = self._binders(bound)
            self.expect("punct", "=>")
            inner = bound.copy()
            for name, _ in binders:
                inner.insert(0, name)
            body = self._term(inner)
            for name, ty in reversed(binders):
                body = Lam(name, ty, body)
            return self._relift_binders(body, binders, is_lam=True)
        if self.at_ident("forall"):
            self.next()
            binders = self._binders(bound)
            self.expect("punct", ",")
            inner = bound.copy()
            for name, _ in binders:
                inner.insert(0, name)
            body = self._term(inner)
            for name, ty in reversed(binders):
                body = Pi(name, ty, body)
            return self._relift_binders(body, binders, is_lam=False)
        return self._arrow(bound)

    def _relift_binders(self, term: Term, binders, is_lam: bool) -> Term:
        # Binder types were parsed in contexts that already included the
        # *later* binders' names?  No: _binders parses each type in the
        # context extended with the previous binders only, matching the
        # final nesting; nothing to fix.  Kept for clarity.
        return term

    def _binders(self, bound: List[str]) -> List[Tuple[str, Term]]:
        binders: List[Tuple[str, Term]] = []
        inner = bound.copy()
        saw_group = False
        while self.at_punct("("):
            # Lookahead: '(' IDENT ... ':' — otherwise it is an atom and we
            # are done with binder groups.
            save = self.pos
            self.next()
            names: List[str] = []
            while self.at_ident() and not self.at_ident("forall"):
                names.append(self.next().text)
            if not names or not self.at_punct(":"):
                self.pos = save
                break
            self.expect("punct", ":")
            ty = self._term(inner)
            self.expect("punct", ")")
            for name in names:
                binders.append((name, ty))
                inner.insert(0, name)
                ty = lift(ty, 1)
            saw_group = True
        if not saw_group:
            raise ParseError(
                f"expected binder group at position {self.peek().pos}"
            )
        return binders

    def _arrow(self, bound: List[str]) -> Term:
        left = self._app(bound)
        if self.at_punct("->"):
            self.next()
            right = self._arrow(["_"] + bound)
            return Pi("_", left, right)
        return left

    def _app(self, bound: List[str]) -> Term:
        head = self._atom(bound)
        while self._starts_atom():
            arg = self._atom(bound)
            head = App(head, arg)
        return head

    def _starts_atom(self) -> bool:
        tok = self.peek()
        if tok.kind == "int":
            return True
        if tok.kind == "punct":
            return tok.text == "("
        if tok.kind == "ident":
            return tok.text not in ("fun", "forall")
        return False

    def _atom(self, bound: List[str]) -> Term:
        tok = self.peek()
        if tok.kind == "int":
            self.next()
            return self._numeral(int(tok.text))
        if self.at_punct("("):
            self.next()
            term = self._term(bound)
            self.expect("punct", ")")
            return term
        if tok.kind == "ident" and tok.text == "Elim":
            return self._elim(bound)
        if tok.kind == "ident":
            self.next()
            # Constructor-by-index: name#j
            if self.at_punct("#"):
                self.next()
                j = int(self.expect("int").text)
                if not self.env.has_inductive(tok.text):
                    raise ParseError(f"unknown inductive {tok.text!r}")
                return Constr(tok.text, j)
            return self._resolve(tok.text, bound, tok.pos)
        raise ParseError(
            f"unexpected token {tok.text!r} at position {tok.pos}"
        )

    def _elim(self, bound: List[str]) -> Term:
        self.expect("ident", "Elim")
        self.expect("punct", "[")
        ind = self.expect("ident").text
        self.expect("punct", "]")
        self.expect("punct", "(")
        scrut = self._term(bound)
        self.expect("punct", ";")
        motive = self._term(bound)
        self.expect("punct", ")")
        self.expect("punct", "{")
        cases: List[Term] = []
        if not self.at_punct("}"):
            cases.append(self._term(bound))
            while self.at_punct(","):
                self.next()
                cases.append(self._term(bound))
        self.expect("punct", "}")
        return Elim(ind, motive, tuple(cases), scrut)

    def _numeral(self, value: int) -> Term:
        if not self.env.has_inductive("nat"):
            raise ParseError(
                "integer literals need 'nat' declared in the environment"
            )
        term: Term = Constr("nat", 0)
        for _ in range(value):
            term = App(Constr("nat", 1), term)
        return term

    def _resolve(self, name: str, bound: List[str], pos: int) -> Term:
        if name == "Prop":
            return PROP
        if name == "Set":
            return SET
        if name.startswith("Type") and name[4:].isdigit():
            return type_sort(int(name[4:]))
        if name == "Type":
            return type_sort(1)
        if name in bound:
            return Rel(bound.index(name))
        if self.env.has_constant(name):
            return Const(name)
        if self.env.has_inductive(name):
            return Ind(name)
        hits = self._ctor_table.get(name, ())
        if len(hits) == 1:
            ind, j = hits[0]
            return Constr(ind, j)
        if len(hits) > 1:
            options = ", ".join(f"{ind}#{j}" for ind, j in hits)
            raise ParseError(
                f"ambiguous constructor {name!r} at position {pos}; "
                f"write one of: {options}"
            )
        raise ParseError(f"unknown identifier {name!r} at position {pos}")


def _constructor_table(
    env: Environment,
) -> Dict[str, Tuple[Tuple[str, int], ...]]:
    table: Dict[str, List[Tuple[str, int]]] = {}
    for decl in env.inductives():
        for j, ctor in enumerate(decl.constructors):
            table.setdefault(ctor.name, []).append((decl.name, j))
            # Qualified form "Ind.ctor" is always unambiguous.
            table.setdefault(f"{decl.name}.{ctor.name}", []).append(
                (decl.name, j)
            )
    return {k: tuple(v) for k, v in table.items()}


def parse(env: Environment, text: str) -> Term:
    """Parse ``text`` into a closed term over ``env``."""
    return Parser(env, text).parse_term()


def parse_in(env: Environment, text: str, bound: Tuple[str, ...]) -> Term:
    """Parse ``text`` with free variables named by ``bound`` (innermost
    first), producing an open term."""
    return Parser(env, text).parse_term(bound)
