"""The paper's primary contribution: configurable proof repair.

* :mod:`~repro.core.config` — configurations
  ``((DepConstr, DepElim), (Eta, Iota))`` (Section 4.1);
* :mod:`~repro.core.transform` — the proof term transformation
  (Figure 10);
* :mod:`~repro.core.search` — the automatic configuration search
  procedures (Section 3.3);
* :mod:`~repro.core.repair` — the ``Repair`` / ``Repair module``
  commands;
* :mod:`~repro.core.caching` — transformation caches (Section 4.4).
"""

from .caching import TransformCache
from .config import (
    AlignedSide,
    ConfigError,
    Configuration,
    ElimMatch,
    Equivalence,
    MarkedIotaSide,
    Side,
    TermSide,
)
from .repair import RepairError, RepairResult, RepairSession, repair, repair_module
from .search import configure
from .transform import TransformError, Transformer, transform_term

__all__ = [
    "AlignedSide",
    "ConfigError",
    "Configuration",
    "ElimMatch",
    "Equivalence",
    "MarkedIotaSide",
    "RepairError",
    "RepairResult",
    "RepairSession",
    "Side",
    "TermSide",
    "TransformCache",
    "TransformError",
    "Transformer",
    "configure",
    "repair",
    "repair_module",
    "transform_term",
]
