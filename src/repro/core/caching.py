"""Caches for the proof term transformation (Section 4.4).

The paper reports that aggressive caching — "even caching intermediate
subterms that we encounter in the course of running our proof term
transformation" — was needed to keep repair under the ~10 seconds an
industrial proof engineer would wait.  :class:`TransformCache` is that
cache; it can be disabled (the paper exposes the same switch) and it
counts hits and misses so the caching ablation benchmark can report its
effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..kernel.term import Term


@dataclass
class TransformCache:
    """Memoizes transformed subterms, keyed by (term, context shape)."""

    enabled: bool = True
    hits: int = 0
    misses: int = 0
    _store: Dict[Tuple, Term] = field(default_factory=dict)

    def get(self, key: Tuple) -> Optional[Term]:
        if not self.enabled:
            return None
        result = self._store.get(key)
        if result is None:
            self.misses += 1
        else:
            self.hits += 1
        return result

    def put(self, key: Tuple, value: Term) -> None:
        if self.enabled:
            self._store[key] = value

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        return len(self._store)
