"""Caches for the proof term transformation (Section 4.4).

The paper reports that aggressive caching — "even caching intermediate
subterms that we encounter in the course of running our proof term
transformation" — was needed to keep repair under the ~10 seconds an
industrial proof engineer would wait.  :class:`TransformCache` is that
cache; it can be disabled (the paper exposes the same switch) and it
counts hits and misses so the caching ablation benchmark can report its
effect.

Keys are built by :meth:`TransformCache.key_for`, which *prunes* the
context component down to the entries the term can actually observe: the
transitive closure of its free de Bruijn variables.  Under deep binder
nesting (eliminator cases, long telescopes) the same subterm recurs
under many syntactically different contexts that agree on the entries it
uses; pruning makes those lookups hit.  Hash-consed terms (see
:mod:`repro.kernel.term`) make the keys cheap to hash and compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..kernel.context import Context
from ..kernel.term import Term, free_rels, max_free_rel


@dataclass
class TransformCache:
    """Memoizes transformed subterms, keyed by (term, relevant context)."""

    enabled: bool = True
    prune_context: bool = True
    hits: int = 0
    misses: int = 0
    _store: Dict[Tuple, Tuple] = field(default_factory=dict)

    def key_for(self, term: Term, ctx: Context) -> Tuple:
        """Cache key for transforming ``term`` under ``ctx``.

        Only context entries reachable from the term's free variables
        (following free variables of the entry types themselves) can
        influence the transformation, so the key records just those
        entries, tagged with their de Bruijn positions.  Two occurrences
        of the same subterm under contexts that agree on that slice
        share one entry.

        The key pairs an identity-based lookup tuple with the pinned
        referents: term equality ignores binder display names, so a
        structural key could hand back a transformed term with someone
        else's names.  Hash-consed terms are pointer-identical when
        names also agree, so identity keys still hit.
        """
        entries = ctx.entries
        if not self.prune_context:
            pinned = tuple(ty for _name, ty in entries)
            lookup = (id(term), tuple(id(ty) for ty in pinned))
            return (lookup, (term, pinned))
        size = len(entries)
        if size == 0 or max_free_rel(term) == 0:
            return ((id(term), ()), (term, ()))
        needed: set = set()
        pending = [i for i in free_rels(term) if i < size]
        while pending:
            i = pending.pop()
            if i in needed:
                continue
            needed.add(i)
            # The type of entry i lives under entries i+1..; its free
            # Rel(j) refers to entry i+1+j.
            for j in free_rels(entries[i][1]):
                k = i + 1 + j
                if k < size and k not in needed:
                    pending.append(k)
        pinned = tuple((i, entries[i][1]) for i in sorted(needed))
        lookup = (id(term), tuple((i, id(ty)) for i, ty in pinned))
        return (lookup, (term, pinned))

    def get(self, key: Tuple) -> Optional[Term]:
        if not self.enabled:
            return None
        entry = self._store.get(key[0])
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry[1]

    def put(self, key: Tuple, value: Term) -> None:
        if self.enabled:
            # Store the pinned referents alongside the result so the ids
            # in the lookup tuple stay valid while the entry lives.
            self._store[key[0]] = (key[1], value)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        return len(self._store)
