"""Caches for the proof term transformation (Section 4.4).

The paper reports that aggressive caching — "even caching intermediate
subterms that we encounter in the course of running our proof term
transformation" — was needed to keep repair under the ~10 seconds an
industrial proof engineer would wait.  :class:`TransformCache` is that
cache; it can be disabled (the paper exposes the same switch) and it
counts hits and misses so the caching ablation benchmark can report its
effect.  Lookups are mirrored into the process-wide
:data:`~repro.kernel.stats.KERNEL_STATS` table ``transform_cache`` so
tracing spans and the pipeline bench report the hit rate alongside the
kernel's own caches.

Keys are built by :meth:`TransformCache.key_for`, which *prunes* the
context component down to a prefix covering the entries the term can
actually observe (its free de Bruijn variables plus the entries their
types reach).  Under deep binder
nesting (eliminator cases, long telescopes) the same subterm recurs
under many syntactically different contexts that agree on the entries it
uses; pruning makes those lookups hit.  Hash-consed terms (see
:mod:`repro.kernel.term`) make the keys cheap to hash and compare.
Key construction itself is memoized per (term, context) identity —
interned contexts (:meth:`repro.kernel.context.Context.push`) make the
same subterm under the same binder chain hit without re-running the
pruning walk, which used to be over half the transformer's cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..kernel.context import Context
from ..kernel.stats import KERNEL_STATS
from ..kernel.term import Term, max_free_rel

_TRANSFORM_COUNTER = KERNEL_STATS.counter("transform_cache")

#: Bound on the key memo, mirroring the kernel's `_MEMO_MAX` discipline.
_KEY_MEMO_MAX = 1 << 20


@dataclass
class TransformCache:
    """Memoizes transformed subterms, keyed by (term, relevant context)."""

    enabled: bool = True
    prune_context: bool = True
    hits: int = 0
    misses: int = 0
    _store: Dict[Tuple, Tuple] = field(default_factory=dict)
    _keys: Dict[Tuple, Tuple] = field(default_factory=dict)

    def key_for(self, term: Term, ctx: Context) -> Tuple:
        """Cache key for transforming ``term`` under ``ctx``.

        Only context entries reachable from the term's free variables
        (following free variables of the entry types themselves) can
        influence the transformation, so the key records just a prefix
        of the context covering those entries.  Two occurrences of the
        same subterm under contexts that agree on that prefix share one
        entry.

        The key pairs an identity-based lookup tuple with the pinned
        referents: term equality ignores binder display names, so a
        structural key could hand back a transformed term with someone
        else's names.  Hash-consed terms are pointer-identical when
        names also agree, so identity keys still hit.
        """
        memo_key = (id(term), id(ctx))
        entry = self._keys.get(memo_key)
        if entry is not None:
            return entry[2]
        key = self._build_key(term, ctx)
        if len(self._keys) >= _KEY_MEMO_MAX:
            self._keys.clear()
        # Pin the term and context so the ids in the memo key stay valid.
        self._keys[memo_key] = (term, ctx, key)
        return key

    def _build_key(self, term: Term, ctx: Context) -> Tuple:
        entries = ctx.entries
        if not self.prune_context:
            return ((id(term), ctx.type_ids()), (term, ctx))
        size = len(entries)
        k = max_free_rel(term)
        if size == 0 or k == 0:
            return ((id(term), ()), (term, ()))
        if k > size:
            k = size
        # Extend to a dependency-closed prefix: the type of entry i lives
        # under entries i+1.., so its free Rel(j) reaches entry i+1+j.
        # Integer bounds (cached per node) in a single widening pass are
        # far cheaper than the exact free-variable closure, and a prefix
        # containing the closure determines the transform output just the
        # same — the key is merely a little coarser across contexts.
        i = 0
        while i < k:
            reach = i + 1 + max_free_rel(entries[i][1])
            if reach > k:
                k = reach if reach < size else size
            i += 1
        return ((id(term), ctx.type_ids()[:k]), (term, ctx))

    def get(self, key: Tuple) -> Optional[Term]:
        if not self.enabled:
            return None
        entry = self._store.get(key[0])
        if entry is None:
            self.misses += 1
            _TRANSFORM_COUNTER.misses += 1
            return None
        self.hits += 1
        _TRANSFORM_COUNTER.hits += 1
        return entry[1]

    def put(self, key: Tuple, value: Term) -> None:
        if self.enabled:
            # Store the pinned referents alongside the result so the ids
            # in the lookup tuple stay valid while the entry lives.
            self._store[key[0]] = (key[1], value)

    def clear(self) -> None:
        self._store.clear()
        self._keys.clear()
        self.hits = 0
        self.misses = 0

    @property
    def size(self) -> int:
        return len(self._store)
