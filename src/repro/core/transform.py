"""The configurable proof term transformation (Figure 10).

:class:`Transformer` ports a term defined over ``A`` to a term defined
over ``B``, given a :class:`~repro.core.config.Configuration`.  The rules
of Figure 10 appear here directly:

* **Dep-Constr** — an application of ``DepConstr(j, A)`` (recognized by
  the A side's unification heuristic) becomes ``DepConstr(j, B)`` applied
  to the recursively transformed arguments;
* **Dep-Elim** — likewise for dependent eliminators;
* **Eta**/**Iota** — likewise for the equality configuration terms;
* **Equivalence** — the type ``A`` applied to parameters becomes ``B``;
* the remaining rules are structural recursion.

Before constructing the output, every component is transformed
recursively, and the final result is beta/iota-reduced without delta
(step 4 of Figure 11), which contracts the applied configuration terms.
Transformed subterms are cached (Section 4.4).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..kernel.context import Context
from ..kernel.env import Environment
from ..kernel.reduce import nf
from ..obs import span, term_depth, term_size, tracing_enabled
from ..kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
    mk_app,
)
from ..analysis.gate import rule_gate
from .caching import TransformCache
from .config import Configuration, ElimMatch


class TransformError(TermError):
    """Raised when a term cannot be ported across the equivalence."""


class Transformer:
    """Applies the Figure 10 transformation for a fixed configuration.

    ``config`` may also be a sequence of configurations, in which case
    their rules are tried in order at every subterm — the "multiple
    equivalences" extension the paper's Section 8 sketches.  With one
    configuration per nested type (e.g. Handshake and Connection in the
    Galois case study) a whole stack of changes ports in a single pass.
    """

    def __init__(
        self,
        env: Environment,
        config,
        cache: Optional[TransformCache] = None,
        reduce_output: bool = True,
    ) -> None:
        self.env = env
        if isinstance(config, Configuration):
            self.configs = (config,)
        else:
            self.configs = tuple(config)
            if not self.configs:
                raise TransformError("need at least one configuration")
        self.config = self.configs[0]
        self.cache = cache if cache is not None else TransformCache()
        self.reduce_output = reduce_output
        self._const_map: Dict[str, str] = {}
        for configuration in self.configs:
            self._const_map.update(configuration.const_map)

    # -- Public API -----------------------------------------------------------

    def __call__(self, term: Term) -> Term:
        """Transform a closed term and reduce the result."""
        with span("transform") as sp:
            if tracing_enabled():
                sp.gauge("term_size_in", term_size(term))
                sp.gauge("term_depth_in", term_depth(term))
            result = self.transform(term, Context.empty())
            if self.reduce_output:
                with span("reduce"):
                    result = nf(self.env, result, delta=False)
            if tracing_enabled():
                sp.gauge("term_size_out", term_size(result))
                sp.gauge("term_depth_out", term_depth(result))
        return result

    # -- The transformation -----------------------------------------------------

    def transform(self, term: Term, ctx: Context) -> Term:
        key = self.cache.key_for(term, ctx)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        result = self._transform(term, ctx)
        self.cache.put(key, result)
        return result

    def _transform(self, term: Term, ctx: Context) -> Term:
        for config in self.configs:
            result = self._try_rules(config, term, ctx)
            if result is not None:
                return result
        # Structural rules.
        return self._structural(term, ctx)

    def _try_rules(
        self, config: Configuration, term: Term, ctx: Context
    ) -> Optional[Term]:
        """Try the Figure 10 rules of one configuration; None if no match."""
        a = config.a
        b = config.b
        env = self.env

        # Iota (explicit marks take precedence: they wrap eliminations).
        iota = a.match_iota(env, ctx, term)
        if iota is not None:
            j, args = iota
            new_args = [self.transform(arg, ctx) for arg in args]
            built = b.make_iota(j, new_args)
            if built is not None:
                return self._gated("Iota", built, ctx)
            # Definitional iota on the B side: the cast disappears and the
            # proof being cast (the final argument) stands on its own.
            if not new_args:
                raise TransformError(
                    "iota mark with no arguments cannot be erased"
                )
            return self._gated("Iota", new_args[-1], ctx)

        # Dep-Constr.
        constr = a.match_constr(env, ctx, term)
        if constr is not None:
            j, params, args = constr
            new_params = [self.transform(p, ctx) for p in params]
            new_args = [self.transform(arg, ctx) for arg in args]
            return self._gated(
                "Dep-Constr", b.make_constr(j, new_params, new_args), ctx
            )

        # Projections (degenerate dependent eliminations; Section 6.4).
        proj = a.match_proj(env, ctx, term)
        if proj is not None:
            i, base = proj
            return self._gated(
                "Proj", b.make_proj(i, self.transform(base, ctx)), ctx
            )

        # Dep-Elim.
        elim = a.match_elim(env, ctx, term)
        if elim is not None:
            return self._gated(
                "Dep-Elim",
                b.make_elim(self._transform_elim_parts(elim, ctx)),
                ctx,
            )

        # Equivalence: the type itself.
        params = a.match_type(env, term)
        if params is not None:
            return self._gated(
                "Equivalence",
                b.make_type([self.transform(p, ctx) for p in params]),
                ctx,
            )

        return None

    def _gated(self, rule: str, result: Term, ctx: Context) -> Term:
        """Scope-check a rule's output under ``REPRO_ANALYZE=1``.

        A no-op when analysis is off; when on, a malformed result fails
        here, naming the Figure 10 rule, instead of deep in the kernel.
        """
        rule_gate(self.env, rule, result, len(ctx))
        return result

    def _transform_elim_parts(self, match: ElimMatch, ctx: Context) -> ElimMatch:
        return ElimMatch(
            params=tuple(self.transform(p, ctx) for p in match.params),
            motive=self.transform(match.motive, ctx),
            cases=tuple(self.transform(c, ctx) for c in match.cases),
            scrut=self.transform(match.scrut, ctx),
            extra_args=tuple(
                self.transform(e, ctx) for e in match.extra_args
            ),
        )

    def _structural(self, term: Term, ctx: Context) -> Term:
        if isinstance(term, (Rel, Sort)):
            return term

        if isinstance(term, Const):
            mapped = self._const_map.get(term.name)
            if mapped is not None:
                return Const(mapped)
            return term

        if isinstance(term, Ind):
            # A bare (unapplied or partially applied) reference to the old
            # family; only legal when a side can express it.
            for config in self.configs:
                params = config.a.match_type(self.env, term)
                if params is not None:
                    return config.b.make_type(list(params))
            return term

        if isinstance(term, Constr):
            return term

        if isinstance(term, App):
            return App(
                self.transform(term.fn, ctx), self.transform(term.arg, ctx)
            )

        if isinstance(term, Lam):
            domain = self.transform(term.domain, ctx)
            body = self.transform(term.body, ctx.push(term.name, term.domain))
            body = self._eta_expand_binder(domain, body)
            return Lam(term.name, domain, body)

        if isinstance(term, Pi):
            domain = self.transform(term.domain, ctx)
            codomain = self.transform(
                term.codomain, ctx.push(term.name, term.domain)
            )
            codomain = self._eta_expand_binder(domain, codomain)
            return Pi(term.name, domain, codomain)

        if isinstance(term, Elim):
            return Elim(
                term.ind,
                self.transform(term.motive, ctx),
                tuple(self.transform(c, ctx) for c in term.cases),
                self.transform(term.scrut, ctx),
            )

        raise TransformError(f"cannot transform {term!r}")

    def _eta_expand_binder(self, domain: Term, body: Term) -> Term:
        """Apply the B side's Eta to every occurrence of a new binder.

        When the B side declares a propositional Eta (e.g. sigma packing,
        Section 4.1.2) and the binder's domain is the B type, every
        occurrence of the bound variable is replaced with its
        eta-expansion.  This is the unification step that keeps
        eliminations of variables and iota-exposed recursions
        definitionally aligned, so transformed proofs type check without
        sigma eta in the kernel.
        """
        b = None
        params = None
        for config in self.configs:
            if config.b.eta is None:
                continue
            params = config.b.match_type(self.env, domain)
            if params is not None:
                b = config.b
                break
        if b is None or params is None:
            return body
        from ..kernel.reduce import beta_reduce
        from ..kernel.term import lift

        def expand(t: Term, cutoff: int) -> Term:
            if isinstance(t, Rel):
                if t.index == cutoff:
                    applied = mk_app(
                        b.eta,
                        tuple(lift(p, cutoff + 1) for p in params) + (t,),
                    )
                    return beta_reduce(applied)
                return t
            if isinstance(t, (Sort, Const, Ind, Constr)):
                return t
            if isinstance(t, App):
                return App(expand(t.fn, cutoff), expand(t.arg, cutoff))
            if isinstance(t, Lam):
                return Lam(
                    t.name, expand(t.domain, cutoff), expand(t.body, cutoff + 1)
                )
            if isinstance(t, Pi):
                return Pi(
                    t.name,
                    expand(t.domain, cutoff),
                    expand(t.codomain, cutoff + 1),
                )
            if isinstance(t, Elim):
                return Elim(
                    t.ind,
                    expand(t.motive, cutoff),
                    tuple(expand(c, cutoff) for c in t.cases),
                    expand(t.scrut, cutoff),
                )
            raise TransformError(f"eta expansion: unknown term {t!r}")

        return expand(body, 0)


def transform_term(
    env: Environment,
    config: Configuration,
    term: Term,
    cache: Optional[TransformCache] = None,
    reduce_output: bool = True,
) -> Term:
    """Convenience wrapper: transform a closed term across ``config``."""
    return Transformer(env, config, cache=cache, reduce_output=reduce_output)(
        term
    )
