"""The configurable proof term transformation (Figure 10).

:class:`Transformer` ports a term defined over ``A`` to a term defined
over ``B``, given a :class:`~repro.core.config.Configuration`.  The rules
of Figure 10 appear here directly:

* **Dep-Constr** — an application of ``DepConstr(j, A)`` (recognized by
  the A side's unification heuristic) becomes ``DepConstr(j, B)`` applied
  to the recursively transformed arguments;
* **Dep-Elim** — likewise for dependent eliminators;
* **Eta**/**Iota** — likewise for the equality configuration terms;
* **Equivalence** — the type ``A`` applied to parameters becomes ``B``;
* the remaining rules are structural recursion.

Before constructing the output, every component is transformed
recursively, and the final result is beta/iota-reduced without delta
(step 4 of Figure 11), which contracts the applied configuration terms.
Transformed subterms are cached (Section 4.4).

Two drivers implement the same pass.  The default is a single memoized
bottom-up sweep over the hash-consed arena: an explicit-stack post-order
driver (like ``reduce``/``machine``) whose depth is heap-bounded, which
consults the :class:`~repro.core.caching.TransformCache` exactly once
per (term, pruned-context) pair, skips unification heuristics whose
head-class hints rule them out, fuses the binder eta-expansion walk into
the pass via :func:`~repro.kernel.term._transform_rels` (per-node memo,
no Python-stack recursion), and reuses untouched subtrees by object
identity so downstream kernel caches stay hot.  The original recursive
driver is kept behind ``REPRO_DISABLE_TRANSFORM_FAST=1`` /
:func:`~repro.kernel.fastpath.set_transform_fast` as the escape hatch
and as the reference for the differential fuzz suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..kernel.context import Context
from ..kernel.env import Environment
from ..kernel.fastpath import transform_fast_enabled
from ..kernel.reduce import beta_reduce, nf
from ..kernel.stats import KERNEL_STATS
from ..obs import span, term_depth, term_size, tracing_enabled
from ..kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
    _transform_rels,
    collect_globals,
    lift,
    max_free_rel,
    mk_app,
    term_memo_enabled,
)
from ..analysis.gate import rule_gate
from .caching import TransformCache
from .config import Configuration, ElimMatch, Side


class TransformError(TermError):
    """Raised when a term cannot be ported across the equivalence."""


_ETA_COUNTER = KERNEL_STATS.counter("eta_expand")

_VISIT, _BUILD = 0, 1

#: The Figure 10 rules of one configuration, in application order.  Each
#: entry names the matcher method and the optional head-class hint
#: attribute a :class:`~repro.core.config.Side` may declare; matchers a
#: side does not override are dropped from its plan entirely.
_RULE_METHODS = (
    ("match_iota", "match_iota_heads"),
    ("match_constr", "match_constr_heads"),
    ("match_proj", "match_proj_heads"),
    ("match_elim", "match_elim_heads"),
    ("match_type", "match_type_heads"),
)


class _RulePlan:
    """Pre-resolved matchers of one configuration's A side.

    Resolving ``getattr`` chains and default-matcher checks once per
    transformer (instead of five times per node) is part of the hot-path
    rewrite: a matcher the side's class does not override can only
    return ``None`` (the :class:`Side` defaults), so it is dropped here,
    and a declared head-class hint lets the driver skip the call when
    the term's application head cannot possibly match.
    """

    __slots__ = (
        "config",
        "iota",
        "iota_heads",
        "constr",
        "constr_heads",
        "proj",
        "proj_heads",
        "elim",
        "elim_heads",
        "type",
        "type_heads",
    )

    def __init__(self, config: Configuration) -> None:
        self.config = config
        a = config.a
        cls = type(a)
        for (method, heads_attr), slot in zip(
            _RULE_METHODS, ("iota", "constr", "proj", "elim", "type")
        ):
            if getattr(cls, method) is getattr(Side, method):
                setattr(self, slot, None)
                setattr(self, slot + "_heads", None)
            else:
                setattr(self, slot, getattr(a, method))
                heads = getattr(a, heads_attr, None)
                setattr(
                    self,
                    slot + "_heads",
                    tuple(heads) if heads is not None else None,
                )


class Transformer:
    """Applies the Figure 10 transformation for a fixed configuration.

    ``config`` may also be a sequence of configurations, in which case
    their rules are tried in order at every subterm — the "multiple
    equivalences" extension the paper's Section 8 sketches.  With one
    configuration per nested type (e.g. Handshake and Connection in the
    Galois case study) a whole stack of changes ports in a single pass.
    """

    def __init__(
        self,
        env: Environment,
        config,
        cache: Optional[TransformCache] = None,
        reduce_output: bool = True,
    ) -> None:
        self.env = env
        if isinstance(config, Configuration):
            self.configs = (config,)
        else:
            self.configs = tuple(config)
            if not self.configs:
                raise TransformError("need at least one configuration")
        self.config = self.configs[0]
        self.cache = cache if cache is not None else TransformCache()
        self.reduce_output = reduce_output
        self._const_map: Dict[str, str] = {}
        for configuration in self.configs:
            self._const_map.update(configuration.const_map)
        self._rule_plans = tuple(_RulePlan(c) for c in self.configs)
        # Per-head-class rule lists, computed lazily: only the matchers
        # whose head hints admit the class, in configuration-then-rule
        # order.  Most head classes end up with an empty tuple, letting
        # the driver skip the rule loop entirely.
        self._head_rules: Dict[type, tuple] = {}
        # Trigger-global prune set: a subtree mentioning none of these
        # names can match no rule anywhere inside (every side promised
        # so via trigger_globals), renames no constant, and eta-expands
        # no binder, so it transforms to itself.  None disables the
        # skip (some side made no promise).
        names: Optional[set] = set()
        for configuration in self.configs:
            for side in (configuration.a, configuration.b):
                if side is configuration.b and side.eta is None:
                    # A B side without an Eta never matches during the
                    # pass (its matchers are only consulted for binder
                    # eta-expansion), so it cannot block the skip.
                    continue
                triggers = side.trigger_globals()
                if triggers is None:
                    names = None
                    break
                names.update(triggers)
            if names is None:
                break
        if names is not None:
            names.update(self._const_map)
        self._skip_names: Optional[frozenset] = (
            frozenset(names) if names is not None else None
        )
        # Fused eta-expansion memos, one per (Eta, params) instance; the
        # pinned (eta, params) tuple keeps the ids in live memo keys valid.
        self._eta_memos: Dict[Tuple, Tuple] = {}

    # -- Public API -----------------------------------------------------------

    def __call__(self, term: Term) -> Term:
        """Transform a closed term and reduce the result."""
        with span("transform") as sp:
            hits0, misses0 = self.cache.hits, self.cache.misses
            if tracing_enabled():
                sp.gauge("term_size_in", term_size(term))
                sp.gauge("term_depth_in", term_depth(term))
            result = self.transform(term, Context.empty())
            if self.reduce_output:
                with span("reduce"):
                    result = nf(self.env, result, delta=False)
            if tracing_enabled():
                sp.gauge("term_size_out", term_size(result))
                sp.gauge("term_depth_out", term_depth(result))
                lookups = (self.cache.hits - hits0) + (
                    self.cache.misses - misses0
                )
                if lookups:
                    sp.gauge(
                        "transform_cache_hit_rate",
                        round((self.cache.hits - hits0) / lookups, 4),
                    )
        return result

    # -- The transformation -----------------------------------------------------

    def transform(self, term: Term, ctx: Context) -> Term:
        if transform_fast_enabled():
            return self._transform_stack(term, ctx)
        key = self.cache.key_for(term, ctx)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        result = self._transform(term, ctx)
        self.cache.put(key, result)
        return result

    # -- The explicit-stack driver (the default) --------------------------------

    def _transform_stack(self, term: Term, ctx: Context) -> Term:
        """One memoized post-order pass; transform depth is heap-bounded.

        ``_VISIT`` frames consult the cache and plan the node — either a
        Figure 10 rule (whose matcher ran on the *untransformed* term,
        exactly like the recursive driver) or structural recursion; a
        planned node pushes a ``_BUILD`` frame holding its finisher
        closure below the child visits, so children complete first in
        the same depth-first order the recursive driver used.
        """
        cache = self.cache
        key_for = cache.key_for
        get = cache.get
        put = cache.put
        skip_names = self._skip_names
        stack: List[tuple] = [(_VISIT, term, ctx)]
        results: List[Term] = []
        append = results.append
        while stack:
            frame = stack.pop()
            if frame[0] == _VISIT:
                _tag, t, c = frame
                if skip_names is not None and skip_names.isdisjoint(
                    collect_globals(t)
                ):
                    append(t)
                    continue
                key = key_for(t, c)
                cached = get(key)
                if cached is not None:
                    append(cached)
                    continue
                self._plan_node(t, c, key, stack, results)
            else:
                _tag, build, key, nargs = frame
                if nargs:
                    vals = results[-nargs:]
                    del results[-nargs:]
                else:
                    vals = []
                out = build(vals)
                put(key, out)
                append(out)
        return results[0]

    def _plan_node(
        self,
        t: Term,
        ctx: Context,
        key: tuple,
        stack: List[tuple],
        results: List[Term],
    ) -> None:
        head = t
        while type(head) is App:
            head = head.fn
        head_cls = type(head)
        env = self.env

        rules = self._head_rules.get(head_cls)
        if rules is None:
            rules = self._head_rules[head_cls] = tuple(
                (slot, getattr(plan, slot), plan.config.b)
                for plan in self._rule_plans
                for slot in ("iota", "constr", "proj", "elim", "type")
                if getattr(plan, slot) is not None
                and (
                    getattr(plan, slot + "_heads") is None
                    or head_cls in getattr(plan, slot + "_heads")
                )
            )

        for kind, matcher, b in rules:
            if kind == "iota":
                iota = matcher(env, ctx, t)
                if iota is not None:
                    j, args = iota

                    def build(vals, j=j, b=b, ctx=ctx):
                        built = b.make_iota(j, vals)
                        if built is not None:
                            return self._gated("Iota", built, ctx)
                        # Definitional iota on the B side: the cast
                        # disappears and the proof being cast (the final
                        # argument) stands on its own.
                        if not vals:
                            raise TransformError(
                                "iota mark with no arguments cannot be "
                                "erased"
                            )
                        return self._gated("Iota", vals[-1], ctx)

                    self._push_children(stack, build, key, args, ctx)
                    return

            elif kind == "constr":
                constr = matcher(env, ctx, t)
                if constr is not None:
                    j, params, args = constr
                    n_params = len(params)

                    def build(vals, j=j, b=b, n_params=n_params, ctx=ctx):
                        return self._gated(
                            "Dep-Constr",
                            b.make_constr(
                                j, vals[:n_params], vals[n_params:]
                            ),
                            ctx,
                        )

                    self._push_children(
                        stack, build, key, tuple(params) + tuple(args), ctx
                    )
                    return

            elif kind == "proj":
                proj = matcher(env, ctx, t)
                if proj is not None:
                    i, base = proj

                    def build(vals, i=i, b=b, ctx=ctx):
                        return self._gated(
                            "Proj", b.make_proj(i, vals[0]), ctx
                        )

                    self._push_children(stack, build, key, (base,), ctx)
                    return

            elif kind == "elim":
                elim = matcher(env, ctx, t)
                if elim is not None:
                    n_params = len(elim.params)
                    n_cases = len(elim.cases)
                    pieces = (
                        elim.params
                        + (elim.motive,)
                        + elim.cases
                        + (elim.scrut,)
                        + elim.extra_args
                    )

                    def build(
                        vals, b=b, n_params=n_params, n_cases=n_cases, ctx=ctx
                    ):
                        match = ElimMatch(
                            params=tuple(vals[:n_params]),
                            motive=vals[n_params],
                            cases=tuple(
                                vals[n_params + 1 : n_params + 1 + n_cases]
                            ),
                            scrut=vals[n_params + 1 + n_cases],
                            extra_args=tuple(vals[n_params + 2 + n_cases :]),
                        )
                        return self._gated("Dep-Elim", b.make_elim(match), ctx)

                    self._push_children(stack, build, key, pieces, ctx)
                    return

            else:
                params = matcher(env, t)
                if params is not None:

                    def build(vals, b=b, ctx=ctx):
                        return self._gated(
                            "Equivalence", b.make_type(vals), ctx
                        )

                    self._push_children(stack, build, key, params, ctx)
                    return

        # Structural rules.  Leaves finish immediately (Ind cannot match
        # a side here: every match_type already ran above, so a bare
        # family reference passes through unchanged, like the recursive
        # driver's fall-through).
        if isinstance(t, (Rel, Sort, Ind, Constr)):
            self.cache.put(key, t)
            results.append(t)
            return

        if isinstance(t, Const):
            mapped = self._const_map.get(t.name)
            out = Const(mapped) if mapped is not None else t
            self.cache.put(key, out)
            results.append(out)
            return

        if isinstance(t, App):

            def build(vals, t=t):
                fn, arg = vals
                if fn is t.fn and arg is t.arg:
                    return t
                return App(fn, arg)

            stack.append((_BUILD, build, key, 2))
            stack.append((_VISIT, t.arg, ctx))
            stack.append((_VISIT, t.fn, ctx))
            return

        if isinstance(t, Lam):

            def build(vals, t=t):
                domain, body = vals
                body = self._eta_expand_fast(domain, body)
                if domain is t.domain and body is t.body:
                    return t
                return Lam(t.name, domain, body)

            stack.append((_BUILD, build, key, 2))
            stack.append((_VISIT, t.body, ctx.push(t.name, t.domain)))
            stack.append((_VISIT, t.domain, ctx))
            return

        if isinstance(t, Pi):

            def build(vals, t=t):
                domain, codomain = vals
                codomain = self._eta_expand_fast(domain, codomain)
                if domain is t.domain and codomain is t.codomain:
                    return t
                return Pi(t.name, domain, codomain)

            stack.append((_BUILD, build, key, 2))
            stack.append((_VISIT, t.codomain, ctx.push(t.name, t.domain)))
            stack.append((_VISIT, t.domain, ctx))
            return

        if isinstance(t, Elim):

            def build(vals, t=t):
                motive = vals[0]
                cases = vals[1:-1]
                scrut = vals[-1]
                if (
                    motive is t.motive
                    and scrut is t.scrut
                    and all(a is b for a, b in zip(cases, t.cases))
                ):
                    return t
                return Elim(t.ind, motive, tuple(cases), scrut)

            stack.append((_BUILD, build, key, 2 + len(t.cases)))
            stack.append((_VISIT, t.scrut, ctx))
            for case in reversed(t.cases):
                stack.append((_VISIT, case, ctx))
            stack.append((_VISIT, t.motive, ctx))
            return

        raise TransformError(f"cannot transform {t!r}")

    @staticmethod
    def _push_children(
        stack: List[tuple], build, key: tuple, children, ctx: Context
    ) -> None:
        children = tuple(children)
        stack.append((_BUILD, build, key, len(children)))
        for child in reversed(children):
            stack.append((_VISIT, child, ctx))

    def _eta_expand_fast(self, domain: Term, body: Term) -> Term:
        """The fused eta-expansion of binders (see `_eta_expand_binder`).

        Same contract as the recursive walk, but runs on the shared
        explicit-stack rebuilder: heap-bounded on deep bodies, short-
        circuits subtrees that cannot contain the bound variable, reuses
        untouched nodes, and memoizes per (node, cutoff) under the
        (Eta, params) pair — the old walk re-traversed every nested
        binder body from scratch, quadratically.
        """
        b = None
        params = None
        for config in self.configs:
            if config.b.eta is None:
                continue
            params = config.b.match_type(self.env, domain)
            if params is not None:
                b = config.b
                break
        if b is None or params is None:
            return body
        if max_free_rel(body) == 0:
            return body
        eta = b.eta
        params = tuple(params)

        def on_rel(index: int, cut: int) -> Term:
            if index != cut:
                return Rel(index)
            applied = mk_app(
                eta,
                tuple(lift(p, cut + 1) for p in params) + (Rel(cut),),
            )
            return beta_reduce(applied)

        if not term_memo_enabled():
            return _transform_rels(body, 0, on_rel)
        memo_key = (id(eta),) + tuple(id(p) for p in params)
        entry = self._eta_memos.get(memo_key)
        if entry is None:
            entry = self._eta_memos[memo_key] = ((eta, params), {})
        return _transform_rels(body, 0, on_rel, entry[1], None, _ETA_COUNTER)

    # -- The recursive driver (the escape hatch) ---------------------------------

    def _transform(self, term: Term, ctx: Context) -> Term:
        for config in self.configs:
            result = self._try_rules(config, term, ctx)
            if result is not None:
                return result
        # Structural rules.
        return self._structural(term, ctx)

    def _try_rules(
        self, config: Configuration, term: Term, ctx: Context
    ) -> Optional[Term]:
        """Try the Figure 10 rules of one configuration; None if no match."""
        a = config.a
        b = config.b
        env = self.env

        # Iota (explicit marks take precedence: they wrap eliminations).
        iota = a.match_iota(env, ctx, term)
        if iota is not None:
            j, args = iota
            new_args = [self.transform(arg, ctx) for arg in args]
            built = b.make_iota(j, new_args)
            if built is not None:
                return self._gated("Iota", built, ctx)
            # Definitional iota on the B side: the cast disappears and the
            # proof being cast (the final argument) stands on its own.
            if not new_args:
                raise TransformError(
                    "iota mark with no arguments cannot be erased"
                )
            return self._gated("Iota", new_args[-1], ctx)

        # Dep-Constr.
        constr = a.match_constr(env, ctx, term)
        if constr is not None:
            j, params, args = constr
            new_params = [self.transform(p, ctx) for p in params]
            new_args = [self.transform(arg, ctx) for arg in args]
            return self._gated(
                "Dep-Constr", b.make_constr(j, new_params, new_args), ctx
            )

        # Projections (degenerate dependent eliminations; Section 6.4).
        proj = a.match_proj(env, ctx, term)
        if proj is not None:
            i, base = proj
            return self._gated(
                "Proj", b.make_proj(i, self.transform(base, ctx)), ctx
            )

        # Dep-Elim.
        elim = a.match_elim(env, ctx, term)
        if elim is not None:
            return self._gated(
                "Dep-Elim",
                b.make_elim(self._transform_elim_parts(elim, ctx)),
                ctx,
            )

        # Equivalence: the type itself.
        params = a.match_type(env, term)
        if params is not None:
            return self._gated(
                "Equivalence",
                b.make_type([self.transform(p, ctx) for p in params]),
                ctx,
            )

        return None

    def _gated(self, rule: str, result: Term, ctx: Context) -> Term:
        """Scope-check a rule's output under ``REPRO_ANALYZE=1``.

        A no-op when analysis is off; when on, a malformed result fails
        here, naming the Figure 10 rule, instead of deep in the kernel.
        """
        rule_gate(self.env, rule, result, len(ctx))
        return result

    def _transform_elim_parts(self, match: ElimMatch, ctx: Context) -> ElimMatch:
        return ElimMatch(
            params=tuple(self.transform(p, ctx) for p in match.params),
            motive=self.transform(match.motive, ctx),
            cases=tuple(self.transform(c, ctx) for c in match.cases),
            scrut=self.transform(match.scrut, ctx),
            extra_args=tuple(
                self.transform(e, ctx) for e in match.extra_args
            ),
        )

    def _structural(self, term: Term, ctx: Context) -> Term:
        if isinstance(term, (Rel, Sort)):
            return term

        if isinstance(term, Const):
            mapped = self._const_map.get(term.name)
            if mapped is not None:
                return Const(mapped)
            return term

        if isinstance(term, Ind):
            # A bare (unapplied or partially applied) reference to the old
            # family; only legal when a side can express it.
            for config in self.configs:
                params = config.a.match_type(self.env, term)
                if params is not None:
                    return config.b.make_type(list(params))
            return term

        if isinstance(term, Constr):
            return term

        if isinstance(term, App):
            return App(
                self.transform(term.fn, ctx), self.transform(term.arg, ctx)
            )

        if isinstance(term, Lam):
            domain = self.transform(term.domain, ctx)
            body = self.transform(term.body, ctx.push(term.name, term.domain))
            body = self._eta_expand_binder(domain, body)
            return Lam(term.name, domain, body)

        if isinstance(term, Pi):
            domain = self.transform(term.domain, ctx)
            codomain = self.transform(
                term.codomain, ctx.push(term.name, term.domain)
            )
            codomain = self._eta_expand_binder(domain, codomain)
            return Pi(term.name, domain, codomain)

        if isinstance(term, Elim):
            return Elim(
                term.ind,
                self.transform(term.motive, ctx),
                tuple(self.transform(c, ctx) for c in term.cases),
                self.transform(term.scrut, ctx),
            )

        raise TransformError(f"cannot transform {term!r}")

    def _eta_expand_binder(self, domain: Term, body: Term) -> Term:
        """Apply the B side's Eta to every occurrence of a new binder.

        When the B side declares a propositional Eta (e.g. sigma packing,
        Section 4.1.2) and the binder's domain is the B type, every
        occurrence of the bound variable is replaced with its
        eta-expansion.  This is the unification step that keeps
        eliminations of variables and iota-exposed recursions
        definitionally aligned, so transformed proofs type check without
        sigma eta in the kernel.
        """
        b = None
        params = None
        for config in self.configs:
            if config.b.eta is None:
                continue
            params = config.b.match_type(self.env, domain)
            if params is not None:
                b = config.b
                break
        if b is None or params is None:
            return body

        def expand(t: Term, cutoff: int) -> Term:
            if isinstance(t, Rel):
                if t.index == cutoff:
                    applied = mk_app(
                        b.eta,
                        tuple(lift(p, cutoff + 1) for p in params) + (t,),
                    )
                    return beta_reduce(applied)
                return t
            if isinstance(t, (Sort, Const, Ind, Constr)):
                return t
            if isinstance(t, App):
                return App(expand(t.fn, cutoff), expand(t.arg, cutoff))
            if isinstance(t, Lam):
                return Lam(
                    t.name, expand(t.domain, cutoff), expand(t.body, cutoff + 1)
                )
            if isinstance(t, Pi):
                return Pi(
                    t.name,
                    expand(t.domain, cutoff),
                    expand(t.codomain, cutoff + 1),
                )
            if isinstance(t, Elim):
                return Elim(
                    t.ind,
                    expand(t.motive, cutoff),
                    tuple(expand(c, cutoff) for c in t.cases),
                    expand(t.scrut, cutoff),
                )
            raise TransformError(f"eta expansion: unknown term {t!r}")

        return expand(body, 0)


def transform_term(
    env: Environment,
    config: Configuration,
    term: Term,
    cache: Optional[TransformCache] = None,
    reduce_output: bool = True,
) -> Term:
    """Convenience wrapper: transform a closed term across ``config``."""
    return Transformer(env, config, cache=cache, reduce_output=reduce_output)(
        term
    )
