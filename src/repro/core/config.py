"""Configurations: ``((DepConstr, DepElim), (Eta, Iota))`` (Section 4.1).

A configuration instantiates the proof term transformation to a specific
equivalence ``A ~= B``.  Each side of the equivalence is described by a
:class:`Side`:

* *construction* methods (``make_type``, ``make_constr``, ``make_elim``,
  ``make_eta``, ``make_iota``) say how to build the side's dependent
  constructors, eliminators, eta, and iota — these are the configuration
  terms of the paper;
* *matching* methods (``match_type``, ``match_constr``, ``match_elim``,
  ``match_iota``) are the side's **unification heuristics**
  (Section 4.2.1): they recognize implicit applications of the
  configuration terms inside real proof terms.  Matching is only required
  on the side being transformed *from*; construct-only sides return
  ``None`` from every matcher, exactly like a manual configuration whose
  unification is left to the engine's fallbacks.

Two concrete sides cover most of the paper's case studies:

* :class:`AlignedSide` — the side is an inductive type whose dependent
  constructors/eliminator are the real ones up to a permutation of
  constructors (swap/rename/permute, Section 6.1, and the "old" side of
  nearly every change);
* :class:`TermSide` — a fully generic side built from closed
  configuration terms (the *manual configuration* of Figure 6 right, used
  for N in Section 6.3 and for factored constructors in Section 3.1.1).

The ornament and tuple/record sides live with their search procedures in
:mod:`repro.core.search`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..kernel.context import Context
from ..kernel.env import Environment
from ..kernel.fastpath import transform_fast_enabled
from ..kernel.reduce import beta_reduce, whnf
from ..kernel.term import (
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Term,
    mk_app,
    subst_many,
    unfold_app,
)
from ..kernel.typecheck import infer


def _applied(fn: Term, args: Sequence[Term]) -> Term:
    """Apply a configuration term and beta-reduce (Figure 11, step 4).

    On the fast path the head ``Lam``-spine is contracted with a single
    parallel :func:`subst_many` before handing the remainder to
    :func:`beta_reduce` — one arena walk instead of one substitution
    pass per binder.  Parallel spine contraction equals the sequential
    beta steps (each argument lives outside every contracted binder),
    and beta normal forms are unique, so the output is identical;
    ``REPRO_DISABLE_TRANSFORM_FAST=1`` restores the one-at-a-time path.
    """
    applied = mk_app(fn, args)
    if transform_fast_enabled():
        head, rest = unfold_app(applied)
        if isinstance(head, Lam) and rest:
            body = head
            n = 0
            while isinstance(body, Lam) and n < len(rest):
                body = body.body
                n += 1
            if n > 1:
                applied = mk_app(
                    subst_many(body, tuple(reversed(rest[:n]))), rest[n:]
                )
    return beta_reduce(applied)


class ConfigError(Exception):
    """Raised for malformed configurations."""


@dataclass(frozen=True)
class ElimMatch:
    """A recognized dependent-eliminator application.

    ``params`` are the type-family parameters, ``cases`` are in the
    configuration's *common* case order, and ``extra_args`` are arguments
    applied after the scrutinee (when the motive is a function type).
    """

    params: Tuple[Term, ...]
    motive: Term
    cases: Tuple[Term, ...]
    scrut: Term
    extra_args: Tuple[Term, ...] = ()


class Side:
    """One side of the equivalence: configuration terms plus heuristics.

    A side that overrides a matcher may also declare a *head-class
    hint* — ``match_<rule>_heads``, a tuple of term classes — promising
    the matcher can only succeed when the term's application head is an
    instance of one of them.  The single-pass transformer computes the
    head class once per node and skips hinted matchers that cannot
    fire; a side without hints is always consulted, so hints are purely
    an opt-in dispatch optimization.
    """

    #: number of type-family parameters (shared by both sides)
    n_params: int = 0
    #: number of dependent constructors / eliminator cases (shared)
    n_constrs: int = 0
    #: the side's Eta as a closed term ``Pi params (x : T params), T params``,
    #: or None when eta is definitional (the identity)
    eta: Optional[Term] = None

    # -- Construction -------------------------------------------------------

    def make_type(self, params: Sequence[Term]) -> Term:
        raise NotImplementedError

    def make_constr(
        self, j: int, params: Sequence[Term], args: Sequence[Term]
    ) -> Term:
        raise NotImplementedError

    def make_elim(self, match: ElimMatch) -> Term:
        raise NotImplementedError

    def constr_arity(self, j: int) -> int:
        """Number of (non-parameter) arguments of dependent constructor j."""
        raise NotImplementedError

    def make_iota(self, j: int, args: Sequence[Term]) -> Optional[Term]:
        """Apply the side's Iota for case ``j``; None when definitional."""
        return None

    # -- Unification heuristics (matching) -----------------------------------

    def trigger_globals(self) -> Optional[frozenset]:
        """Global names at least one of which every match mentions.

        A side may promise that none of its matchers (``match_type``,
        ``match_constr``, ``match_proj``, ``match_elim``, ``match_iota``)
        can succeed on a term unless the term references — in the
        :func:`~repro.kernel.term.collect_globals` sense — at least one
        of the returned names.  The single-pass transformer uses this to
        pass whole subtrees through unchanged: a subtree mentioning no
        trigger of any configuration (and no renamed constant) cannot
        match a rule anywhere inside, so it transforms to itself.
        ``None`` (the default) makes no promise and disables that skip.
        """
        return None

    def match_type(
        self, env: Environment, term: Term
    ) -> Optional[Tuple[Term, ...]]:
        """Recognize the type family applied to parameters."""
        return None

    def match_constr(
        self, env: Environment, ctx: Context, term: Term
    ) -> Optional[Tuple[int, Tuple[Term, ...], Tuple[Term, ...]]]:
        """Recognize ``DepConstr(j)`` applied to params and args."""
        return None

    def match_elim(
        self, env: Environment, ctx: Context, term: Term
    ) -> Optional[ElimMatch]:
        """Recognize ``DepElim`` applied to a motive, cases, and scrutinee."""
        return None

    def match_iota(
        self, env: Environment, ctx: Context, term: Term
    ) -> Optional[Tuple[int, Tuple[Term, ...]]]:
        """Recognize an explicit ``Iota(j)`` application."""
        return None

    def match_proj(
        self, env: Environment, ctx: Context, term: Term
    ) -> Optional[Tuple[int, Term]]:
        """Recognize a field projection (a degenerate dependent elimination).

        Projections out of product-like types are eliminations with a
        constant motive selecting one field; recognizing them directly is
        the unification heuristic the tuples<->records search procedure
        needs (Section 6.4).
        """
        return None

    def make_proj(self, i: int, base: Term) -> Term:
        raise NotImplementedError


class AlignedSide(Side):
    """A side whose configuration is an inductive type up to permutation.

    ``perm[j]`` is the declared constructor index corresponding to
    dependent constructor ``j``.  With the identity permutation this is
    the trivial configuration (the usual "old" side); with a permutation
    it is the swap/rename configuration of Figure 8.
    """

    # Every matcher guards on its application head first; declare that
    # as dispatch hints so the fast transformer can skip the calls.
    match_type_heads = (Ind,)
    match_constr_heads = (Constr,)
    match_elim_heads = (Elim,)

    def __init__(self, env: Environment, ind_name: str, perm=None) -> None:
        decl = env.inductive(ind_name)
        self.ind_name = ind_name
        self.decl = decl
        self.n_params = decl.n_params
        self.n_constrs = decl.n_constructors
        self.perm = tuple(perm) if perm is not None else tuple(
            range(decl.n_constructors)
        )
        if sorted(self.perm) != list(range(decl.n_constructors)):
            raise ConfigError(
                f"invalid constructor permutation {self.perm} for {ind_name}"
            )
        self._inv = tuple(
            self.perm.index(c) for c in range(decl.n_constructors)
        )
        self._arities = tuple(
            len(decl.constructors[self.perm[j]].args)
            for j in range(decl.n_constructors)
        )

    # -- Construction -------------------------------------------------------

    def make_type(self, params: Sequence[Term]) -> Term:
        return mk_app(Ind(self.ind_name), params)

    def make_constr(
        self, j: int, params: Sequence[Term], args: Sequence[Term]
    ) -> Term:
        return mk_app(
            Constr(self.ind_name, self.perm[j]), tuple(params) + tuple(args)
        )

    def make_elim(self, match: ElimMatch) -> Term:
        # Cases arrive in common (dependent) order; permute to declaration
        # order for the primitive eliminator.
        decl_cases: List[Term] = [None] * self.n_constrs  # type: ignore
        for j, case in enumerate(match.cases):
            decl_cases[self.perm[j]] = case
        return mk_app(
            Elim(self.ind_name, match.motive, tuple(decl_cases), match.scrut),
            match.extra_args,
        )

    def constr_arity(self, j: int) -> int:
        return self._arities[j]

    # -- Matching -----------------------------------------------------------

    def trigger_globals(self) -> Optional[frozenset]:
        # Every matcher requires an Ind/Constr/Elim head naming the family.
        return frozenset((self.ind_name,))

    def match_type(self, env: Environment, term: Term):
        head, args = unfold_app(term)
        if isinstance(head, Ind) and head.name == self.ind_name:
            if len(args) == self.n_params:
                return tuple(args)
        return None

    def match_constr(self, env: Environment, ctx: Context, term: Term):
        head, args = unfold_app(term)
        if not (isinstance(head, Constr) and head.ind == self.ind_name):
            return None
        j = self._inv[head.index]
        expected = self.n_params + len(self.decl.constructors[head.index].args)
        if len(args) != expected:
            return None
        params = tuple(args[: self.n_params])
        ctor_args = tuple(args[self.n_params :])
        return (j, params, ctor_args)

    def match_elim(self, env: Environment, ctx: Context, term: Term):
        head, extra = unfold_app(term)
        if not (isinstance(head, Elim) and head.ind == self.ind_name):
            return None
        scrut_ty = whnf(env, infer(env, ctx, head.scrut))
        ty_head, ty_args = unfold_app(scrut_ty)
        if not (isinstance(ty_head, Ind) and ty_head.name == self.ind_name):
            return None
        params = tuple(ty_args[: self.n_params])
        # Permute declared cases into the common (dependent) order.
        dep_cases = tuple(head.cases[self.perm[j]] for j in range(self.n_constrs))
        return ElimMatch(
            params=params,
            motive=head.motive,
            cases=dep_cases,
            scrut=head.scrut,
            extra_args=tuple(extra),
        )


class TermSide(Side):
    """A construct-only side built from closed configuration terms.

    This realizes the *manual configuration* workflow (Figure 6, right):
    the proof engineer supplies ``DepConstr``, ``DepElim``, ``Eta`` and
    ``Iota`` as plain terms and the transformation applies them.  Calling
    conventions:

    * ``type_fn``           : ``Pi params, sort``-shaped term (or a bare type)
    * ``dep_constr[j]``     : ``Pi params args_j, T params``
    * ``dep_elim``          : ``Pi params motive cases... (x : T params), ...``
    * ``iota[j]`` (optional): applied as-is to transformed arguments

    Construction beta-reduces the applied configuration terms, which is
    the "reduce" step of Figure 11.
    """

    def __init__(
        self,
        n_params: int,
        type_fn: Term,
        dep_constr: Sequence[Term],
        dep_elim: Term,
        constr_arities: Sequence[int],
        eta: Optional[Term] = None,
        iota: Optional[Sequence[Optional[Term]]] = None,
        match_type_fn=None,
    ) -> None:
        self.n_params = n_params
        self.n_constrs = len(dep_constr)
        self.type_fn = type_fn
        self.dep_constr = tuple(dep_constr)
        self.dep_elim = dep_elim
        self.eta = eta
        self.iota = tuple(iota) if iota is not None else (None,) * self.n_constrs
        self._arities = tuple(constr_arities)
        self._match_type_fn = match_type_fn

    def match_type(self, env: Environment, term: Term):
        if self._match_type_fn is not None:
            return self._match_type_fn(env, term)
        return None

    def make_type(self, params: Sequence[Term]) -> Term:
        return _applied(self.type_fn, params)

    def make_constr(
        self, j: int, params: Sequence[Term], args: Sequence[Term]
    ) -> Term:
        return _applied(self.dep_constr[j], tuple(params) + tuple(args))

    def make_elim(self, match: ElimMatch) -> Term:
        return _applied(
            self.dep_elim,
            tuple(match.params)
            + (match.motive,)
            + tuple(match.cases)
            + (match.scrut,)
            + tuple(match.extra_args),
        )

    def constr_arity(self, j: int) -> int:
        return self._arities[j]

    def make_iota(self, j: int, args: Sequence[Term]) -> Optional[Term]:
        if self.iota[j] is None:
            return None
        return _applied(self.iota[j], args)


class MarkedIotaSide(AlignedSide):
    """An aligned side whose proofs carry *explicit* iota marks.

    Section 6.3 requires a "manual expansion step, turning implicit casts
    in the inductive case into explicit applications of Iota over A".
    This side recognizes those marks: applications of the named constants
    ``iota_names[j]`` are matched as ``Iota(j, A)`` so the transformation
    can replace them with ``Iota(j, B)``.
    """

    match_iota_heads = (Const,)

    def __init__(
        self,
        env: Environment,
        ind_name: str,
        iota_names: Sequence[Optional[str]],
        perm=None,
    ) -> None:
        super().__init__(env, ind_name, perm)
        self.iota_names = tuple(iota_names)

    def trigger_globals(self) -> Optional[frozenset]:
        # The aligned matchers need the family name; the iota matcher
        # needs one of the mark constants.
        return frozenset((self.ind_name,)) | frozenset(
            name for name in self.iota_names if name is not None
        )

    def match_iota(self, env: Environment, ctx: Context, term: Term):
        head, args = unfold_app(term)
        if isinstance(head, Const) and head.name in self.iota_names:
            j = self.iota_names.index(head.name)
            return (j, tuple(args))
        return None

    def make_iota(self, j: int, args: Sequence[Term]) -> Optional[Term]:
        name = self.iota_names[j]
        if name is None:
            return None
        return mk_app(Const(name), args)


@dataclass
class Equivalence:
    """The functions and proofs of Figure 3: ``f``, ``g``, and roundtrips."""

    f: Term
    g: Term
    section: Optional[Term] = None
    retraction: Optional[Term] = None


@dataclass
class Configuration:
    """A configuration of the transformation for ``A ~= B``."""

    a: Side
    b: Side
    equivalence: Optional[Equivalence] = None
    #: mapping of repaired dependency constants, applied to Const heads
    const_map: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.a.n_params != self.b.n_params:
            raise ConfigError("sides disagree on the number of parameters")
        if self.a.n_constrs != self.b.n_constrs:
            raise ConfigError(
                "sides disagree on the number of dependent constructors"
            )

    def check(self, env: Environment) -> None:
        """Check the configuration's correctness criteria (Figure 12).

        Verifies what is checkable without a univalent metatheory, in the
        paper's spirit ("the proof engineer does not need to prove these
        in order to use Pumpkin Pi; the correctness criteria simply need
        to hold"):

        * the sides agree on parameter and constructor counts and on the
          per-constructor arities;
        * when an equivalence is attached, ``f``/``g`` and the
          ``section``/``retraction`` proofs type check and the roundtrip
          statements have the expected shapes (an ``eq`` whose sides are
          the roundtrip and the identity).
        """
        from ..kernel.context import Context
        from ..kernel.typecheck import infer
        from ..kernel.term import Pi, unfold_pis

        for j in range(self.a.n_constrs):
            if self.a.constr_arity(j) != self.b.constr_arity(j):
                raise ConfigError(
                    f"dependent constructor {j} has different arities on "
                    "the two sides"
                )
        if self.equivalence is None:
            return
        eqv = self.equivalence
        infer(env, Context.empty(), eqv.f)
        infer(env, Context.empty(), eqv.g)
        for label, proof in (("section", eqv.section), ("retraction", eqv.retraction)):
            if proof is None:
                continue
            ty = infer(env, Context.empty(), proof)
            _binders, conclusion = unfold_pis(ty)
            head, args = unfold_app(conclusion)
            if not (isinstance(head, Ind) and head.name == "eq" and len(args) == 3):
                raise ConfigError(
                    f"{label} proof does not conclude with an equality"
                )
            from ..kernel.term import Rel as _Rel

            if args[2] != _Rel(0):
                raise ConfigError(
                    f"{label} proof does not conclude at the roundtrip "
                    "argument itself"
                )

    def reversed(self) -> "Configuration":
        """The configuration for the opposite direction ``B ~= A``."""
        equivalence = None
        if self.equivalence is not None:
            equivalence = Equivalence(
                f=self.equivalence.g,
                g=self.equivalence.f,
                section=self.equivalence.retraction,
                retraction=self.equivalence.section,
            )
        return Configuration(
            a=self.b,
            b=self.a,
            equivalence=equivalence,
            const_map={v: k for k, v in self.const_map.items()},
        )
