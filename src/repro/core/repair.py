"""The ``Repair`` and ``Repair module`` commands (Figure 6).

:func:`repair` ports one definition or proof across a configuration;
:func:`repair_module` ports every global that depends on the old type, in
declaration order, threading repaired dependencies through the
configuration's constant map — this is what lets the paper's Section 2
example update ``rev``, ``++``, ``app_assoc`` and ``app_nil_r``
automatically while repairing ``rev_app_distr``.

After a successful repair the old type can be removed: results are
checked to contain no reference to the old globals, and
:meth:`RepairSession.remove_old` deletes them from the environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..analysis.gate import repair_gate
from ..kernel.context import Context
from ..kernel.env import Environment
from ..kernel.term import Term, collect_globals, mentions_global
from ..kernel.typecheck import check, typecheck_closed
from ..obs import span
from .caching import TransformCache
from .config import Configuration
from .transform import Transformer


class RepairError(Exception):
    """Raised when a repair fails or leaves references to the old type."""


@dataclass
class RepairResult:
    """One repaired definition: the new term, its type, and a script."""

    old_name: str
    new_name: str
    term: Term
    type: Term
    script: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.old_name} ~> {self.new_name}"


class RepairSession:
    """Shared state for repairing a development across one equivalence."""

    def __init__(
        self,
        env: Environment,
        config: Configuration,
        old_globals: Sequence[str],
        rename: Optional[Callable[[str], str]] = None,
        cache: Optional[TransformCache] = None,
        skip: Optional[Sequence[str]] = None,
    ) -> None:
        self.env = env
        self.config = config
        self.old_globals = tuple(old_globals)
        self.rename = rename or (lambda name: f"{name}'")
        self.cache = cache if cache is not None else TransformCache()
        self.results: Dict[str, RepairResult] = {}
        # Configuration constants (explicit iota marks, packing helpers)
        # are translated by the transformation itself, never repaired as
        # dependencies.
        self.skip = set(skip or ())
        self.skip.update(
            name for name in getattr(config.a, "iota_names", ()) or () if name
        )

    # -- Single definitions ---------------------------------------------------

    def repair_term(self, term: Term, expected_type: Optional[Term] = None) -> Term:
        """Transform a closed term, check it, and verify old-type removal."""
        with span("repair_term"):
            transformer = Transformer(self.env, self.config, cache=self.cache)
            result = transformer(term)
            for old in self.old_globals:
                if mentions_global(result, old):
                    raise RepairError(
                        f"repaired term still mentions {old!r}; the "
                        "configuration's unification heuristics did not cover "
                        "some occurrence"
                    )
            repair_gate(
                self.env, result, self.old_globals, self.skip, "repair_term"
            )
            with span("typecheck"):
                if expected_type is not None:
                    check(self.env, Context.empty(), result, expected_type)
                else:
                    typecheck_closed(self.env, result)
        return result

    def repair_constant(
        self, name: str, new_name: Optional[str] = None, define: bool = True
    ) -> RepairResult:
        """Repair one constant (body and type), defining the new one."""
        self._repair_dependencies(name)
        return self._repair_constant_now(name, new_name, define)

    def _repair_constant_now(
        self, name: str, new_name: Optional[str] = None, define: bool = True
    ) -> RepairResult:
        if name in self.results:
            return self.results[name]
        decl = self.env.constant(name)
        if decl.body is None:
            raise RepairError(f"cannot repair bodyless constant {name!r}")
        with span("repair", constant=name):
            transformer = Transformer(self.env, self.config, cache=self.cache)
            new_type = transformer(decl.type)
            new_body = transformer(decl.body)
            for old in self.old_globals:
                if mentions_global(new_body, old) or mentions_global(
                    new_type, old
                ):
                    raise RepairError(
                        f"repair of {name!r} left references to {old!r}"
                    )
            repair_gate(
                self.env, new_body, self.old_globals, self.skip, name
            )
            repair_gate(
                self.env, new_type, self.old_globals, self.skip, name
            )
            target = new_name or self.rename(name)
            with span("typecheck", constant=name):
                check(self.env, Context.empty(), new_body, new_type)
            if define:
                self.env.define(target, new_body, type=new_type)
        result = RepairResult(
            old_name=name, new_name=target, term=new_body, type=new_type
        )
        self.results[name] = result
        self.config.const_map[name] = target
        return result

    # -- Dependency management -------------------------------------------------

    def _needs_repair(self, name: str) -> bool:
        if name in self.results or name in self.skip:
            return False
        if not self.env.has_constant(name):
            return False
        if name.endswith("_rect") and self.env.has_inductive(name[: -len("_rect")]):
            # Auto-generated recursors are regenerated with their
            # inductive; they are never repaired.
            return False
        decl = self.env.constant(name)
        if decl.body is None:
            return False
        for old in self.old_globals:
            if mentions_global(decl.body, old) or mentions_global(
                decl.type, old
            ):
                return True
        return False

    def _repair_dependencies(self, name: str) -> None:
        """Repair (recursively) every dependency that mentions the old type."""
        decl = self.env.constant(name)
        if decl.body is None:
            raise RepairError(f"cannot repair bodyless constant {name!r}")
        deps = collect_globals(decl.body) | collect_globals(decl.type)
        # One pass over the declaration order instead of one `.index`
        # scan per dependency; setdefault keeps first-occurrence
        # positions, matching `.index` on duplicate names.
        order: Dict[str, int] = {}
        for i, declared in enumerate(self.env.declaration_order()):
            order.setdefault(declared, i)
        fallback = len(order)
        for dep in sorted(deps, key=lambda n: order.get(n, fallback)):
            if dep == name:
                continue
            if dep in self.config.const_map:
                continue
            if self._needs_repair(dep):
                self.repair_constant(dep)

    # -- Whole modules -----------------------------------------------------------

    def repair_module(
        self, names: Optional[Iterable[str]] = None
    ) -> List[RepairResult]:
        """Repair every (selected) constant that depends on the old type."""
        with span("repair_module"):
            if names is None:
                names = [
                    name
                    for name in self.env.declaration_order()
                    if self._needs_repair(name)
                ]
            results = []
            for name in names:
                if self._needs_repair(name):
                    results.append(self.repair_constant(name))
        return results

    def remove_old(self) -> None:
        """Delete the old globals — the end goal of proof repair."""
        for name in self.old_globals:
            self.env.remove(name)
            rect = f"{name}_rect"
            if self.env.has_constant(rect):
                self.env.remove(rect)


def repair(
    env: Environment,
    config: Configuration,
    name: str,
    old_globals: Sequence[str],
    new_name: Optional[str] = None,
    rename: Optional[Callable[[str], str]] = None,
    cache: Optional[TransformCache] = None,
) -> RepairResult:
    """Repair one constant (and its dependencies) across ``config``."""
    session = RepairSession(
        env, config, old_globals, rename=rename, cache=cache
    )
    return session.repair_constant(name, new_name=new_name)


def repair_module(
    env: Environment,
    config: Configuration,
    old_globals: Sequence[str],
    names: Optional[Iterable[str]] = None,
    rename: Optional[Callable[[str], str]] = None,
    cache: Optional[TransformCache] = None,
) -> List[RepairResult]:
    """Repair a whole module's worth of definitions (``Repair module``)."""
    session = RepairSession(
        env, config, old_globals, rename=rename, cache=cache
    )
    return session.repair_module(names)
