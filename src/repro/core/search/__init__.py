"""Search procedures for automatic configuration (the ``Configure`` of
Figure 6, left).

The four procedures of Section 3.3:

1. :mod:`~repro.core.search.tuples_records` — tuples and records,
2. :mod:`~repro.core.search.swap` — renaming and permuting constructors,
3. :mod:`~repro.core.search.ornaments` — algebraic ornaments to packed
   indexed types (from Devoid), and
4. :mod:`~repro.core.search.unpack` — unpacking to a particular index.

:func:`configure` dispatches between them from just the two type names,
as the ``Repair`` command does.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ...kernel.env import Environment
from ...obs import span
from ..config import ConfigError, Configuration
from .ornaments import ornament_configuration
from .swap import find_constructor_mappings, swap_configuration
from .tuples_records import tuples_records_configuration
from .unpack import declare_unpack_support


def configure(
    env: Environment,
    a_name: str,
    b_name: str,
    mapping: Optional[Sequence[int]] = None,
    prove: bool = True,
) -> Configuration:
    """Automatically configure the transformation for ``A ~= B``.

    Tries the search procedures in turn: constructor permutation/renaming
    when both names are compatible inductives, tuples-to-records when the
    target is a record and the source a tuple-type constant, and the
    ornament configuration for ``list``/``vector``-style pairs.
    """
    with span("configure", a=a_name, b=b_name):
        if env.has_inductive(a_name) and env.has_inductive(b_name):
            a = env.inductive(a_name)
            b = env.inductive(b_name)
            if (
                a.n_constructors == b.n_constructors
                and a.n_params == b.n_params
                and not a.n_indices
                and not b.n_indices
            ):
                try:
                    return swap_configuration(
                        env, a_name, b_name, mapping=mapping, prove=prove
                    )
                except ConfigError:
                    pass
            if a.n_constructors == 2 and b.n_indices == 1 and not a.n_indices:
                # list-to-vector style ornament.
                return ornament_configuration(
                    env, list_name=a_name, vector_name=b_name, prove=prove
                )
        if env.has_constant(a_name) and env.has_inductive(b_name):
            b = env.inductive(b_name)
            if b.n_constructors == 1 and not b.params and not b.indices:
                return tuples_records_configuration(
                    env, b_name, tuple_alias=a_name, prove=prove
                )
        raise ConfigError(
            f"no automatic configuration found for {a_name!r} ~= {b_name!r}; "
            "supply a manual configuration (TermSide) instead"
        )


__all__ = [
    "configure",
    "declare_unpack_support",
    "find_constructor_mappings",
    "ornament_configuration",
    "swap_configuration",
    "tuples_records_configuration",
]
