"""The ``refine_unit.v`` configuration: any A is equivalent to unit
refined by A (Section 4.3).

The paper uses ``A ~= Σ (u : unit). A`` to illustrate that "there can be
infinitely many equivalences that correspond to a given change in
specification, only some of which are useful" — and, in Section 4.4, that
naive rule application can loop forever, "if B is a refinement of A"
(``B`` mentions ``A``, so the Equivalence rule matches its own output).

This module builds that configuration for any non-parametric,
non-indexed inductive.  The transformation terminates on it by
construction — rules fire on *input* subterms only, and constructed
output is never re-examined — which is this reproduction's realization of
the paper's termination checks (``liftrules.ml``).
"""

from __future__ import annotations

from typing import List

from ...kernel.env import Environment
from ...kernel.inductive import analyze_recursive_args, case_type
from ...kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Rel,
    Term,
    lift,
    mk_app,
    mk_lams,
    unfold_app,
)
from ..config import AlignedSide, Configuration, TermSide


def _packed_type(ind_name: str) -> Term:
    """``Σ (u : unit). A`` as a term."""
    return Ind("sigT").app(Ind("unit"), Lam("_", Ind("unit"), Ind(ind_name)))


def _pack(ind_name: str, value: Term) -> Term:
    return Constr("sigT", 0).app(
        Ind("unit"),
        Lam("_", Ind("unit"), Ind(ind_name)),
        Constr("unit", 0),
        value,
    )


def _unpack(ind_name: str, packed: Term) -> Term:
    return Const("projT2").app(
        Ind("unit"), Lam("_", Ind("unit"), Ind(ind_name)), packed
    )


def refine_unit_configuration(
    env: Environment, ind_name: str
) -> Configuration:
    """Configure ``A ~= Σ (u : unit). A`` for a simple inductive ``A``."""
    decl = env.inductive(ind_name)
    if decl.params or decl.indices:
        raise ValueError(
            "refine_unit supports non-parametric, non-indexed inductives"
        )
    packed_ty = _packed_type(ind_name)

    # Dependent constructors: pack the real constructor, unpacking any
    # recursive arguments (which arrive packed on the B side).
    dep_constrs: List[Term] = []
    arities: List[int] = []
    for j, ctor in enumerate(decl.constructors):
        rec = analyze_recursive_args(decl, j)
        binders = []
        values = []
        n = len(ctor.args)
        for i, (arg_name, arg_ty) in enumerate(ctor.args):
            if rec[i] is not None:
                binders.append((arg_name, packed_ty))
            else:
                binders.append((arg_name, arg_ty))
        for i in range(n):
            var = Rel(n - 1 - i)
            if rec[i] is not None:
                values.append(_unpack(ind_name, var))
            else:
                values.append(var)
        body = _pack(ind_name, mk_app(Constr(ind_name, j), values))
        dep_constrs.append(mk_lams(binders, body))
        arities.append(n)

    # Dependent eliminator: eliminate the projection, re-packing in the
    # motive and handing cases packed recursive values.
    #   dep_elim P case... s :=
    #     Elim[A](projT2 s; fun x => P (pack x)) { wrapped cases } : P (eta s)
    nc = decl.n_constructors
    # Binders: P, case_0..case_{nc-1}, s.
    elim_cases: List[Term] = []
    for j, ctor in enumerate(decl.constructors):
        rec = analyze_recursive_args(decl, j)
        # Under [P, cases..., s], the case constant for j is at
        # Rel(nc - j); build a wrapper with the original A-side binders
        # (args + IHs) that re-packs recursive args for the config case.
        inner_motive = Lam(
            "x", Ind(ind_name), App(Rel(nc + 2), _pack(ind_name, Rel(0)))
        )
        ct = case_type(decl, j, (), inner_motive)
        binders = []
        rec_count = sum(1 for r in rec if r is not None)
        n_binders = len(ctor.args) + rec_count
        body_ty = ct
        for _ in range(n_binders):
            binders.append((body_ty.name, body_ty.domain))
            body_ty = body_ty.codomain
        # Map binder positions: arg i sits at a computable height.
        heights = []
        height = 0
        for i in range(len(ctor.args)):
            heights.append(height)
            height += 2 if rec[i] is not None else 1
        args_for_case: List[Term] = []
        for i in range(len(ctor.args)):
            var = Rel(n_binders - 1 - heights[i])
            if rec[i] is not None:
                args_for_case.append(_pack(ind_name, var))
                ih = Rel(n_binders - 1 - (heights[i] + 1))
                args_for_case.append(ih)
            else:
                args_for_case.append(var)
        case_var = Rel(n_binders + 1 + (nc - 1 - j))
        elim_cases.append(mk_lams(binders, mk_app(case_var, args_for_case)))

    # Assemble: fun (P : packed -> Type2) (case...) (s : packed) => Elim ...
    from ...kernel.term import Pi, type_sort

    p_ty = Pi("_", packed_ty, type_sort(2))
    binder_list = [("P", p_ty)]
    for j in range(nc):
        # The case's expected type against the *packed* constructors: use
        # the config's own shape — we reuse the kernel's case_type on the
        # motive fun x => P (pack x), then rename the recursive binders to
        # packed types.
        inner_motive_j = Lam(
            "x", Ind(ind_name), App(Rel(1 + j), _pack(ind_name, Rel(0)))
        )
        ct = case_type(decl, j, (), inner_motive_j)
        ct = _packify_case_type(env, ind_name, decl, j, ct)
        binder_list.append((f"case{j}", ct))
    binder_list.append(("s", packed_ty))
    elim_body = Elim(
        ind_name,
        Lam("x", Ind(ind_name), App(Rel(nc + 2), _pack(ind_name, Rel(0)))),
        tuple(elim_cases),
        _unpack(ind_name, Rel(0)),
    )
    dep_elim = mk_lams(binder_list, elim_body)

    eta = Lam(
        "s", packed_ty, _pack(ind_name, _unpack(ind_name, Rel(0)))
    )

    def match_packed(env_, term):
        head, args = unfold_app(term)
        if (
            isinstance(head, Ind)
            and head.name == "sigT"
            and len(args) == 2
            and args[0] == Ind("unit")
            and isinstance(args[1], Lam)
            and args[1].body == Ind(ind_name)
        ):
            return ()
        return None

    side_b = TermSide(
        n_params=0,
        type_fn=packed_ty,
        dep_constr=tuple(dep_constrs),
        dep_elim=dep_elim,
        constr_arities=tuple(arities),
        eta=eta,
        match_type_fn=match_packed,
    )
    return Configuration(a=AlignedSide(env, ind_name), b=side_b)


def _packify_case_type(env, ind_name, decl, j, ct: Term) -> Term:
    """Replace recursive binder domains ``A`` with ``Σ(u:unit).A`` and fix
    up the corresponding occurrences inside the case type."""
    # The transformation-facing case signature binds packed recursive
    # arguments; the simplest faithful construction is to rebuild from
    # the constructor shape.
    from ...kernel.term import Pi as _Pi, subst

    rec = analyze_recursive_args(decl, j)
    ctor = decl.constructors[j]
    packed_ty = _packed_type(ind_name)

    # Walk the Pi telescope of ct: binders appear as arg/IH interleaved.
    binders = []
    body = ct
    positions = []
    height = 0
    for i in range(len(ctor.args)):
        assert isinstance(body, _Pi)
        domain = body.domain
        if rec[i] is not None:
            domain = packed_ty
        binders.append((body.name, domain))
        body = body.codomain
        positions.append(height)
        height += 1
        if rec[i] is not None:
            assert isinstance(body, _Pi)
            # IH type: P (pack x) with x the packed binder unpacked.
            ih_domain = body.domain
            ih_domain = _replace_rel(ih_domain, 0, _unpack(ind_name, Rel(0)))
            binders.append((body.name, ih_domain))
            body = body.codomain
            height += 1
    # Conclusion: P (pack (Constr j args)) with recursive args unpacked.
    conclusion = body
    for i in reversed(range(len(ctor.args))):
        if rec[i] is not None:
            # Occurrences of the (now packed) binder inside the
            # conclusion must be unpacked.
            depth = height - 1 - positions[i]
            conclusion = _replace_rel(
                conclusion, depth, _unpack(ind_name, Rel(depth))
            )
    result = conclusion
    for name, dom in reversed(binders):
        result = _Pi(name, dom, result)
    return result


def _replace_rel(term: Term, index: int, replacement: Term) -> Term:
    """Replace ``Rel(index)`` (cutoff-adjusted) with ``replacement``.

    The replacement itself mentions the same variable, so it is lifted as
    binders are crossed but never re-visited.
    """
    from ...kernel.term import Pi as _Pi, Sort

    def go(t: Term, cutoff: int) -> Term:
        if isinstance(t, Rel):
            if t.index == index + cutoff:
                return lift(replacement, cutoff)
            return t
        if isinstance(t, App):
            return App(go(t.fn, cutoff), go(t.arg, cutoff))
        if isinstance(t, Lam):
            return Lam(t.name, go(t.domain, cutoff), go(t.body, cutoff + 1))
        if isinstance(t, _Pi):
            return _Pi(
                t.name, go(t.domain, cutoff), go(t.codomain, cutoff + 1)
            )
        if isinstance(t, Elim):
            return Elim(
                t.ind,
                go(t.motive, cutoff),
                tuple(go(c, cutoff) for c in t.cases),
                go(t.scrut, cutoff),
            )
        return t

    return go(term, 0)
