"""Search procedure: anonymous tuples to named records (Section 6.4).

The Galois workflow ports compiler-generated nested tuples (Figure 17,
left) to named records (right) and proofs about records back to proofs
about tuples.  The configuration recognizes:

* nested ``pair`` applications against the record's field shape — with
  *eta-expansion* of components that arrive as opaque sub-tuples (the
  ``snd (snd c)`` tail in the paper's ``cork``), exactly the unification
  challenge Section 4.2.1 describes;
* ``fst``/``snd`` projection chains, mapped to named record projections
  (and back);
* record eliminations, mapped to nested dependent ``prod`` eliminations.

Both directions are supported (``Configuration.reversed()``), which is
what lets the proof engineer port ``corkLemma`` about records back to the
original tuples.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ...kernel.context import Context
from ...kernel.env import Environment
from ...kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Rel,
    Term,
    lift,
    mk_app,
    mk_lams,
    unfold_app,
)
from ..config import Configuration, ElimMatch, Equivalence, Side


class TupleSide(Side):
    """The anonymous-tuple side: right-nested binary products."""

    def __init__(
        self,
        env: Environment,
        fields: Sequence[Term],
        alias: Optional[str] = None,
    ) -> None:
        if len(fields) < 2:
            raise ValueError("a tuple needs at least two fields")
        self.env = env
        self.fields = tuple(fields)
        self.alias = alias
        self.n_params = 0
        self.n_constrs = 1

    # -- Shape helpers --------------------------------------------------------

    def rest_type(self, i: int) -> Term:
        """The type of the sub-tuple starting at field ``i``."""
        k = len(self.fields)
        if i == k - 1:
            return self.fields[i]
        return Ind("prod").app(self.fields[i], self.rest_type(i + 1))

    def tuple_type(self) -> Term:
        return self.rest_type(0)

    # -- Construction ----------------------------------------------------------

    def make_type(self, params: Sequence[Term]) -> Term:
        if self.alias is not None:
            return Const(self.alias)
        return self.tuple_type()

    def make_constr(
        self, j: int, params: Sequence[Term], args: Sequence[Term]
    ) -> Term:
        k = len(self.fields)
        if len(args) != k:
            raise ValueError(f"tuple constructor expects {k} components")
        value = args[k - 1]
        for i in reversed(range(k - 1)):
            value = Constr("prod", 0).app(
                self.fields[i], self.rest_type(i + 1), args[i], value
            )
        return value

    def constr_arity(self, j: int) -> int:
        return len(self.fields)

    def make_proj(self, i: int, base: Term) -> Term:
        k = len(self.fields)
        value = base
        for j in range(i):
            value = Const("snd").app(
                self.fields[j], self.rest_type(j + 1), value
            )
        if i < k - 1:
            value = Const("fst").app(
                self.fields[i], self.rest_type(i + 1), value
            )
        return value

    def make_elim(self, match: ElimMatch) -> Term:
        """Nested dependent elimination of the tuple.

        At every level the motive re-packs the components, so the
        conclusion is ``P scrut`` on the nose (no eta needed).
        """
        return _nested_elim(
            self, match.motive, match.cases[0], match.scrut, match.extra_args
        )

    # -- Matching ----------------------------------------------------------------

    # Head-class hints for the fast transformer driver; each mirrors the
    # matcher's own first guard (the tuple type's head is ``Ind("prod")``,
    # an alias is a ``Const``).
    match_type_heads = (Const, Ind)
    match_constr_heads = (Constr,)
    match_proj_heads = (Const,)

    def trigger_globals(self):
        # Tuple types and pairs are headed by the ``prod`` family, and
        # projections by ``fst``/``snd``; an alias adds its constant.
        names = {"prod", "fst", "snd"}
        if self.alias is not None:
            names.add(self.alias)
        return frozenset(names)

    def match_type(self, env: Environment, term: Term):
        if self.alias is not None and term == Const(self.alias):
            return ()
        if term == self.tuple_type():
            return ()
        return None

    def match_constr(self, env: Environment, ctx: Context, term: Term):
        head, args = unfold_app(term)
        if not (
            isinstance(head, Constr)
            and head.ind == "prod"
            and head.index == 0
            and len(args) == 4
        ):
            return None
        if args[0] != self.fields[0] or args[1] != self.rest_type(1):
            return None
        leaves = self._collect(term, 0)
        return (0, (), tuple(leaves))

    def _collect(self, term: Term, level: int) -> List[Term]:
        """Flatten a (partial) nested pair into field components.

        Components that are not literal pairs are eta-expanded with
        projections, which is how ``snd (snd c)`` tails are unified with
        the constructor shape.
        """
        k = len(self.fields)
        if level == k - 1:
            return [term]
        head, args = unfold_app(term)
        if (
            isinstance(head, Constr)
            and head.ind == "prod"
            and head.index == 0
            and len(args) == 4
            and args[0] == self.fields[level]
            and args[1] == self.rest_type(level + 1)
        ):
            return [args[2]] + self._collect(args[3], level + 1)
        # Opaque tail: eta-expand with projections relative to this level.
        leaves = []
        value = term
        for i in range(level, k - 1):
            leaves.append(
                Const("fst").app(self.fields[i], self.rest_type(i + 1), value)
            )
            value = Const("snd").app(
                self.fields[i], self.rest_type(i + 1), value
            )
        leaves.append(value)
        return leaves

    def match_proj(self, env: Environment, ctx: Context, term: Term):
        # Walk a chain of fst/snd from the outside in.
        ops: List[str] = []
        current = term
        while True:
            head, args = unfold_app(current)
            if (
                isinstance(head, Const)
                and head.name in ("fst", "snd")
                and len(args) == 3
            ):
                ops.append(head.name)
                current = args[2]
                continue
            break
        if not ops:
            return None
        ops.reverse()  # innermost first
        # Interpret: snd* then optionally fst, landing on a leaf.
        level = 0
        k = len(self.fields)
        for pos, op in enumerate(ops):
            is_last = pos == len(ops) - 1
            if op == "snd":
                level += 1
                if level > k - 1:
                    return None
                if is_last:
                    if level == k - 1:
                        return (k - 1, current) if self._base_ok(current, term, ops) else None
                    return None  # partial chain: not a leaf
            else:  # fst
                if not is_last or level >= k - 1:
                    return None
                return (level, current) if self._base_ok(current, term, ops) else None
        return None

    def _base_ok(self, base: Term, term: Term, ops: List[str]) -> bool:
        """Check the chain's type annotations against the tuple shape."""
        # Re-walk the original term, verifying the (A, B) arguments at
        # each level match the declared field shape.
        current = term
        expected_level = len([op for op in ops if op == "snd"])
        level = 0
        chain: List[Tuple[str, Term, Term]] = []
        while True:
            head, args = unfold_app(current)
            if (
                isinstance(head, Const)
                and head.name in ("fst", "snd")
                and len(args) == 3
            ):
                chain.append((head.name, args[0], args[1]))
                current = args[2]
                continue
            break
        chain.reverse()
        for i, (op, a_ty, b_ty) in enumerate(chain):
            if a_ty != self.fields[i] or b_ty != self.rest_type(i + 1):
                return False
        return True


def _nested_elim(
    side: TupleSide,
    motive: Term,
    case: Term,
    scrut: Term,
    extra_args: Tuple[Term, ...],
) -> Term:
    """Dependent elimination of a nested tuple with a k-field case.

    Builds ``Elim[prod](scrut; fun p => motive (ctx p)) { fun a r => ... }``
    one level at a time; the innermost body applies ``case`` to all
    collected components, and every motive re-packs the components so each
    level's conclusion lines up definitionally.
    """
    k = len(side.fields)

    def rebuild(components: List[Term], tail: Term, level: int) -> Term:
        """The full tuple from components[0..level-1] and the tail value."""
        value = tail
        for i in reversed(range(level)):
            value = Constr("prod", 0).app(
                side.fields[i], side.rest_type(i + 1), components[i], value
            )
        return value

    def build(
        level: int, scrut_term: Term, components: List[Term], depth: int
    ) -> Term:
        # components: values of fields 0..level-1, in the current context;
        # depth counts binders added below the original context (the
        # outer ``motive`` and ``case`` must be lifted by it).
        if level == k - 1:
            return mk_app(lift(case, depth), components + [scrut_term])
        field_ty = side.fields[level]
        rest_ty = side.rest_type(level + 1)
        # Motive: fun (p : prod field rest) => motive (rebuild comps p).
        lifted_components = [lift(c, 1) for c in components]
        level_motive = Lam(
            "p",
            Ind("prod").app(field_ty, rest_ty),
            App(
                lift(motive, depth + 1),
                rebuild(lifted_components, Rel(0), level),
            ),
        )
        # Case: fun (a : field) (r : rest) => <recurse>.
        inner_components = [lift(c, 2) for c in components] + [Rel(1)]
        inner = build(level + 1, Rel(0), inner_components, depth + 2)
        level_case = Lam("a", field_ty, Lam("r", rest_ty, inner))
        return Elim("prod", level_motive, (level_case,), scrut_term)

    return mk_app(build(0, scrut, [], 0), extra_args)


class RecordSide(Side):
    """The named-record side: a single-constructor inductive."""

    def __init__(self, env: Environment, record_name: str) -> None:
        decl = env.inductive(record_name)
        if decl.n_constructors != 1 or decl.params or decl.indices:
            raise ValueError(f"{record_name!r} is not a record")
        self.env = env
        self.record_name = record_name
        self.decl = decl
        self.field_names = tuple(
            fname for fname, _ in decl.constructors[0].args
        )
        self.field_types = tuple(ty for _f, ty in decl.constructors[0].args)
        self.n_params = 0
        self.n_constrs = 1

    # -- Construction -----------------------------------------------------------

    def make_type(self, params: Sequence[Term]) -> Term:
        return Ind(self.record_name)

    def make_constr(
        self, j: int, params: Sequence[Term], args: Sequence[Term]
    ) -> Term:
        return mk_app(Constr(self.record_name, 0), args)

    def constr_arity(self, j: int) -> int:
        return len(self.field_names)

    def make_proj(self, i: int, base: Term) -> Term:
        return Const(self.field_names[i]).app(base)

    def make_elim(self, match: ElimMatch) -> Term:
        return mk_app(
            Elim(self.record_name, match.motive, match.cases, match.scrut),
            match.extra_args,
        )

    # -- Matching ------------------------------------------------------------------

    match_type_heads = (Ind,)
    match_constr_heads = (Constr,)
    match_proj_heads = (Const,)
    match_elim_heads = (Elim,)

    def trigger_globals(self):
        # Record terms are headed by the record family, projections by
        # the field-name constants.
        return frozenset((self.record_name,)) | frozenset(self.field_names)

    def match_type(self, env: Environment, term: Term):
        if term == Ind(self.record_name):
            return ()
        return None

    def match_constr(self, env: Environment, ctx: Context, term: Term):
        head, args = unfold_app(term)
        if (
            isinstance(head, Constr)
            and head.ind == self.record_name
            and len(args) == len(self.field_names)
        ):
            return (0, (), tuple(args))
        return None

    def match_proj(self, env: Environment, ctx: Context, term: Term):
        head, args = unfold_app(term)
        if (
            isinstance(head, Const)
            and head.name in self.field_names
            and len(args) == 1
        ):
            return (self.field_names.index(head.name), args[0])
        return None

    def match_elim(self, env: Environment, ctx: Context, term: Term):
        head, extra = unfold_app(term)
        if isinstance(head, Elim) and head.ind == self.record_name:
            return ElimMatch(
                params=(),
                motive=head.motive,
                cases=head.cases,
                scrut=head.scrut,
                extra_args=tuple(extra),
            )
        return None


def tuples_records_configuration(
    env: Environment,
    record_name: str,
    tuple_alias: Optional[str] = None,
    prove: bool = True,
) -> Configuration:
    """Configure tuple -> record repair for ``record_name``.

    The tuple shape is derived from the record's declared fields; when
    ``tuple_alias`` names a constant definition of the tuple type, it is
    recognized and replaced as well.
    """
    record = RecordSide(env, record_name)
    tup = TupleSide(env, record.field_types, alias=tuple_alias)
    config = Configuration(a=tup, b=record)
    if prove:
        config.equivalence = prove_tuple_record_equivalence(env, tup, record)
    return config


def prove_tuple_record_equivalence(
    env: Environment, tup: TupleSide, record: RecordSide
) -> Equivalence:
    """Generate and prove the tuple <-> record equivalence.

    The proofs are constructed directly (not via the tactic engine): both
    roundtrips reduce to reflexivity after full destructuring, so the
    section proof is one nested dependent elimination with ``eq_refl`` at
    the leaf, and the retraction is a single record elimination.  This
    keeps configuring wide records (Connection has nine fields) fast.
    """
    from ...kernel.context import Context
    from ...kernel.term import Pi
    from ...kernel.typecheck import check, typecheck_closed

    k = len(tup.fields)
    tuple_ty = tup.tuple_type()
    record_ty = Ind(record.record_name)

    f = Lam(
        "t",
        tuple_ty,
        mk_app(
            Constr(record.record_name, 0),
            [tup.make_proj(i, Rel(0)) for i in range(k)],
        ),
    )
    g = Lam(
        "r",
        record_ty,
        tup.make_constr(
            0, (), [record.make_proj(i, Rel(0)) for i in range(k)]
        ),
    )
    typecheck_closed(env, f)
    typecheck_closed(env, g)

    # section : forall t, g (f t) = t, by one nested elimination whose
    # leaf is reflexivity at the rebuilt tuple.
    section_stmt = Pi(
        "t",
        tuple_ty,
        Ind("eq").app(
            lift(tuple_ty, 1), App(lift(g, 1), App(lift(f, 1), Rel(0))), Rel(0)
        ),
    )
    motive = Lam(
        "p",
        tuple_ty,
        Ind("eq").app(
            lift(tuple_ty, 1),
            App(lift(g, 1), App(lift(f, 1), Rel(0))),
            Rel(0),
        ),
    )
    # Leaf case: fun (f0 : T0) .. (f_{k-1} : T_{k-1}) => eq_refl (rebuild).
    leaf_args = [Rel(k - 1 - i) for i in range(k)]
    leaf = mk_lams(
        [(f"f{i}", tup.fields[i]) for i in range(k)],
        Constr("eq", 0).app(tuple_ty, tup.make_constr(0, (), leaf_args)),
    )
    section_body = _nested_elim(tup, motive, leaf, Rel(0), ())
    section = Lam("t", tuple_ty, section_body)
    check(env, Context.empty(), section, section_stmt)

    # retraction : forall r, f (g r) = r, by one record elimination.
    retraction_stmt = Pi(
        "r",
        record_ty,
        Ind("eq").app(
            record_ty, App(lift(f, 1), App(lift(g, 1), Rel(0))), Rel(0)
        ),
    )
    r_motive = Lam(
        "r",
        record_ty,
        Ind("eq").app(
            record_ty, App(lift(f, 1), App(lift(g, 1), Rel(0))), Rel(0)
        ),
    )
    r_leaf = mk_lams(
        [(f"f{i}", tup.fields[i]) for i in range(k)],
        Constr("eq", 0).app(
            record_ty,
            mk_app(Constr(record.record_name, 0), leaf_args),
        ),
    )
    retraction = Lam(
        "r",
        record_ty,
        Elim(record.record_name, r_motive, (r_leaf,), Rel(0)),
    )
    check(env, Context.empty(), retraction, retraction_stmt)
    return Equivalence(f=f, g=g, section=section, retraction=retraction)
