"""Support for unpacking to vectors at a *particular* index (Section 6.2).

The second configuration of Section 6.2 transports along::

    Sigma (s : Sigma (m : nat). vector T m). projT1 s = n  ~=  vector T n

From the proof engineer's perspective the new information is the index
equality; everything else is automated.  Our realization mirrors the
paper's ``smartelim`` custom eliminators: we generate

* ``vector_cast`` — the ``eta`` of the configuration: the identity
  "generalized over any equal index" (the paper's ``eq_rect m (vector T)
  v n H``);
* ``unpack`` — project a packed vector to a particular index, given a
  proof about the projection;
* ``unpack_coherence`` — the custom reasoning principle: two unpackings
  agree whenever the packed values agree and the index proofs are
  *threaded* through that agreement.  This is what discharges the final
  ``zip_with_is_zip`` at a particular length without any axiom (no UIP),
  proved here by double equality induction.
"""

from __future__ import annotations

from ...kernel.env import Environment
from ...syntax.parser import parse


def declare_unpack_support(env: Environment, vector_name: str = "vector") -> None:
    """Define ``vector_cast``, ``unpack``, and ``unpack_coherence``."""
    if env.has_constant("unpack_coherence"):
        return
    from ...tactics.engine import prove
    from ...tactics.tactics import induction, intros, reflexivity

    packed = f"sigT nat (fun (n : nat) => {vector_name} T n)"
    proj1 = f"projT1 nat (fun (n : nat) => {vector_name} T n)"
    proj2 = f"projT2 nat (fun (n : nat) => {vector_name} T n)"

    # The identity function generalized over any equal index (the second
    # configuration's eta, Section 6.2.1).
    env.define(
        "vector_cast",
        parse(
            env,
            f"""
            fun (T : Type1) (m n : nat) (e : eq nat m n)
                (v : {vector_name} T m) =>
              eq_ind nat m (fun (k : nat) => {vector_name} T k) v n e
            """,
        ),
    )
    env.define(
        "unpack",
        parse(
            env,
            f"""
            fun (T : Type1) (n : nat) (s : {packed})
                (pf : eq nat ({proj1} s) n) =>
              vector_cast T ({proj1} s) n pf ({proj2} s)
            """,
        ),
    )

    # Coherence: unpacking equal packed values with threaded index proofs
    # gives equal vectors.  Proved by induction on the packed equality and
    # then on the index proof — both are equality eliminations over an
    # indexed family, handled by the generalized induction tactic.
    stmt = parse(
        env,
        f"""
        forall (T : Type1) (s1 s2 : {packed})
               (e : eq ({packed}) s1 s2)
               (n : nat) (pf : eq nat ({proj1} s2) n),
          eq ({vector_name} T n)
             (unpack T n s1
                (eq_trans nat ({proj1} s1) ({proj1} s2) n
                   (f_equal ({packed}) nat
                      (fun (s : {packed}) => {proj1} s) s1 s2 e)
                   pf))
             (unpack T n s2 pf)
        """,
    )
    env.define(
        "unpack_coherence",
        prove(
            env,
            stmt,
            intros("T", "s1", "s2", "e"),
            induction("e", names=[[]]),
            intros("n", "pf"),
            induction("pf", names=[[]]),
            reflexivity(),
        ),
        type=stmt,
    )
