"""Custom eliminators for refinement types (Section 4.4, ``smartelim.ml``).

The paper: "we implemented special search procedures to generate custom
eliminators to make it easier to reason about types refined by equalities
like ``Σ(l : list T).length l = n`` by breaking them into parts and
reasoning separately about the projections."

Given a *measure* ``f : Pi params, A -> nat`` this module generates, for
the refinement ``Refined params n := Σ (x : A params). f x = n``:

* ``<name>.intro``  — pack a carrier and its measure proof,
* ``<name>.elim``   — the smart eliminator: prove ``Q s`` for every packed
  ``s`` by reasoning about the carrier and the equality *separately*
  (its conclusion is ``Q s`` on the nose — the sigma is eliminated first,
  so no sigma eta is needed),
* ``<name>.proj1`` / ``<name>.proj2`` — the projections, with ``proj2``
  carrying the measure equality.

All four are defined in the environment and kernel checked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from ...kernel.env import Environment
from ...syntax.parser import parse


@dataclass(frozen=True)
class SmartEliminator:
    """Names of the generated refinement vocabulary."""

    refined: str
    intro: str
    elim: str
    proj1: str
    proj2: str


def generate_refinement_eliminator(
    env: Environment,
    name: str,
    carrier: str,
    measure: str,
    param_binders: Sequence[Tuple[str, str]] = (("T", "Type1"),),
) -> SmartEliminator:
    """Generate the smart-eliminator vocabulary for ``Σ (x : A). f x = n``.

    ``carrier`` and ``measure`` are surface-syntax expressions over the
    parameters of ``param_binders`` (e.g. carrier ``"list T"`` with
    measure ``"length T"``).
    """
    binders = " ".join(f"({p} : {ty})" for p, ty in param_binders)
    params = " ".join(p for p, _ty in param_binders)

    refined = f"{name}.Refined"
    env.define(
        refined,
        parse(
            env,
            f"""
            fun {binders} (n : nat) =>
              sigT ({carrier})
                (fun (x : {carrier}) => eq nat ({measure} x) n)
            """,
        ),
    )
    intro = f"{name}.intro"
    env.define(
        intro,
        parse(
            env,
            f"""
            fun {binders} (n : nat) (x : {carrier})
                (H : eq nat ({measure} x) n) =>
              existT ({carrier})
                (fun (x0 : {carrier}) => eq nat ({measure} x0) n)
                x H
            """,
        ),
    )
    elim = f"{name}.elim"
    env.define(
        elim,
        parse(
            env,
            f"""
            fun {binders} (n : nat)
                (Q : {refined} {params} n -> Type2)
                (case : forall (x : {carrier})
                          (H : eq nat ({measure} x) n),
                        Q ({intro} {params} n x H))
                (s : {refined} {params} n) =>
              Elim[sigT](s;
                  fun (s0 : {refined} {params} n) => Q s0)
                {{ fun (x : {carrier})
                      (H : eq nat ({measure} x) n) =>
                    case x H }}
            """,
        ),
    )
    proj1 = f"{name}.proj1"
    env.define(
        proj1,
        parse(
            env,
            f"""
            fun {binders} (n : nat) (s : {refined} {params} n) =>
              projT1 ({carrier})
                (fun (x : {carrier}) => eq nat ({measure} x) n) s
            """,
        ),
    )
    proj2 = f"{name}.proj2"
    env.define(
        proj2,
        parse(
            env,
            f"""
            fun {binders} (n : nat) (s : {refined} {params} n) =>
              projT2 ({carrier})
                (fun (x : {carrier}) => eq nat ({measure} x) n) s
            """,
        ),
    )
    return SmartEliminator(
        refined=refined, intro=intro, elim=elim, proj1=proj1, proj2=proj2
    )
