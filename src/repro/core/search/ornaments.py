"""Search procedure: algebraic ornaments (Section 6.2, first configuration).

Ports functions and proofs from ``list T`` to the *packed* indexed form
``Sigma (n : nat). vector T n`` — the Devoid transformation, which the
Pumpkin Pi transformation generalizes.  The configuration discovered here
is the one shown in Section 6.2.1:

* ``DepConstr`` packs the index into an existential
  (``dep_constr_1 t s = existT (S (projT1 s)) (vcons t (projT1 s)
  (projT2 s))``),
* ``DepElim`` eliminates the sigma and then the vector, re-packing the
  index in the motive,
* ``Eta`` and ``Iota`` are definitional with this choice of ``DepElim``
  (eliminating the sigma first means the conclusion is ``P s`` on the
  nose, so the propositional sigma eta of the paper is not needed — a
  configuration choice the paper's Section 4.3 explicitly allows).

The equivalence (promotion/forgetting plus section/retraction) is
generated and proved automatically, as Devoid does.
"""

from __future__ import annotations


from ...kernel.env import Environment
from ...syntax.parser import parse
from ..config import AlignedSide, Configuration, Equivalence, TermSide


def ornament_configuration(
    env: Environment,
    list_name: str = "list",
    vector_name: str = "vector",
    prove: bool = True,
) -> Configuration:
    """The ``list T ~= Sigma (n : nat). vector T n`` configuration."""
    _ensure_support(env, list_name, vector_name)
    packed = f"sigT nat (fun (n : nat) => {vector_name} T n)"

    type_fn = parse(env, f"fun (T : Type1) => {packed}")
    # DepElim is the paper's Section 6.2.1 term: eliminate the projections,
    # re-packing the index in the motive.  Its conclusion is ``P (eta s)``,
    # which is why the configuration also carries a propositional Eta that
    # the transformation applies to every binder of the packed type.
    dep_elim = parse(
        env,
        f"""
        fun (T : Type1) (P : {packed} -> Type2)
            (pnil : P (ornament.dep_constr_0 T))
            (pcons : forall (t : T) (s : {packed}),
                       P (ornament.eta T s) ->
                       P (ornament.dep_constr_1 T t s))
            (s : {packed}) =>
          Elim[vector](
              projT2 nat (fun (n : nat) => {vector_name} T n) s;
              fun (m : nat) (w : {vector_name} T m) =>
                P (existT nat (fun (i : nat) => {vector_name} T i) m w))
            {{ pnil,
              fun (t : T) (m : nat) (w : {vector_name} T m)
                  (IH : P (existT nat
                             (fun (i : nat) => {vector_name} T i) m w)) =>
                pcons t
                  (existT nat (fun (i : nat) => {vector_name} T i) m w)
                  IH }}
        """,
    )

    from ...kernel.term import Const, Ind, Lam, Rel, unfold_app

    def match_packed_type(env_, term):
        """Recognize ``sigT nat (fun n => vector T n)`` and return (T,)."""
        head, args = unfold_app(term)
        if not (isinstance(head, Ind) and head.name == "sigT"):
            return None
        if len(args) != 2:
            return None
        nat_arg, fam = args
        if nat_arg != Ind("nat") or not isinstance(fam, Lam):
            return None
        fhead, fargs = unfold_app(fam.body)
        if not (isinstance(fhead, Ind) and fhead.name == vector_name):
            return None
        if len(fargs) != 2 or fargs[1] != Rel(0):
            return None
        elem = fargs[0]
        from ...kernel.term import free_rels, lift

        if 0 in free_rels(elem):
            return None
        return (lift(elem, -1, 0),)

    side_b = TermSide(
        n_params=1,
        type_fn=type_fn,
        dep_constr=(
            Const("ornament.dep_constr_0"),
            Const("ornament.dep_constr_1"),
        ),
        dep_elim=dep_elim,
        constr_arities=(0, 2),
        eta=Const("ornament.eta"),
        match_type_fn=match_packed_type,
    )
    config = Configuration(a=AlignedSide(env, list_name), b=side_b)
    if prove:
        config.equivalence = prove_ornament_equivalence(
            env, list_name, vector_name
        )
    return config


def _ensure_support(env: Environment, list_name: str, vector_name: str) -> None:
    """Define the named dep_constr/eta constants the dep_elim mentions."""
    packed = f"sigT nat (fun (n : nat) => {vector_name} T n)"
    if not env.has_constant("ornament.eta"):
        env.define(
            "ornament.eta",
            parse(
                env,
                f"""
                fun (T : Type1) (s : {packed}) =>
                  existT nat (fun (n : nat) => {vector_name} T n)
                    (projT1 nat (fun (n : nat) => {vector_name} T n) s)
                    (projT2 nat (fun (n : nat) => {vector_name} T n) s)
                """,
            ),
        )
    if not env.has_constant("ornament.dep_constr_0"):
        env.define(
            "ornament.dep_constr_0",
            parse(
                env,
                f"fun (T : Type1) => existT nat "
                f"(fun (n : nat) => {vector_name} T n) O (vnil T)",
            ),
        )
    if not env.has_constant("ornament.dep_constr_1"):
        env.define(
            "ornament.dep_constr_1",
            parse(
                env,
                f"""
                fun (T : Type1) (t : T) (s : {packed}) =>
                  existT nat (fun (n : nat) => {vector_name} T n)
                    (S (projT1 nat (fun (n : nat) => {vector_name} T n) s))
                    (vcons T t
                       (projT1 nat (fun (n : nat) => {vector_name} T n) s)
                       (projT2 nat (fun (n : nat) => {vector_name} T n) s))
                """,
            ),
        )


def prove_ornament_equivalence(
    env: Environment,
    list_name: str = "list",
    vector_name: str = "vector",
) -> Equivalence:
    """Promotion/forgetting functions with section/retraction proofs."""
    from ...kernel.typecheck import typecheck_closed
    from ...tactics.engine import prove
    from ...tactics.tactics import (
        induction,
        intros,
        reflexivity,
        rewrite,
        simpl,
    )

    packed = f"sigT nat (fun (n : nat) => {vector_name} T n)"
    nil = f"{list_name}.nil"
    cons = f"{list_name}.cons"

    promote = parse(
        env,
        f"""
        fun (T : Type1) (l : {list_name} T) =>
          Elim[{list_name}](l; fun (_ : {list_name} T) => {packed})
            {{ ornament.dep_constr_0 T,
              fun (t : T) (rest : {list_name} T) (IH : {packed}) =>
                ornament.dep_constr_1 T t IH }}
        """,
    )
    # Forgetting goes through a vector fold applied to the projections, so
    # that ``forget (dep_constr_1 t s)`` reduces to ``cons t (forget s)``
    # *definitionally* — the projections of ``dep_constr_1``'s existential
    # cancel against the fold.
    if not env.has_constant("ornament.forget_vec"):
        env.define(
            "ornament.forget_vec",
            parse(
                env,
                f"""
                fun (T : Type1) (n : nat) (v : {vector_name} T n) =>
                  Elim[vector](v;
                      fun (m : nat) (_ : {vector_name} T m) => {list_name} T)
                    {{ {nil} T,
                      fun (t : T) (m : nat) (w : {vector_name} T m)
                          (IH : {list_name} T) =>
                        {cons} T t IH }}
                """,
            ),
        )
    forget = parse(
        env,
        f"""
        fun (T : Type1) (s : {packed}) =>
          ornament.forget_vec T
            (projT1 nat (fun (n : nat) => {vector_name} T n) s)
            (projT2 nat (fun (n : nat) => {vector_name} T n) s)
        """,
    )
    typecheck_closed(env, promote)
    typecheck_closed(env, forget)

    if not env.has_constant("ornament.promote"):
        env.define("ornament.promote", promote)
    if not env.has_constant("ornament.forget"):
        env.define("ornament.forget", forget)

    section_stmt = parse(
        env,
        f"forall (T : Type1) (l : {list_name} T), "
        f"eq ({list_name} T) (ornament.forget T (ornament.promote T l)) l",
    )
    section = prove(
        env,
        section_stmt,
        intros("T", "l"),
        induction("l", names=[[], ["t", "rest", "IHl"]]),
        reflexivity(),
        simpl(),
        rewrite("IHl"),
        reflexivity(),
    )

    retraction_stmt = parse(
        env,
        f"forall (T : Type1) (s : {packed}), "
        f"eq ({packed}) (ornament.promote T (ornament.forget T s)) s",
    )
    retraction = prove(
        env,
        retraction_stmt,
        intros("T", "s"),
        induction("s", names=[["n", "v"]]),
        induction("v", names=[[], ["t", "m", "w", "IHw"]]),
        reflexivity(),
        simpl(),
        rewrite("IHw"),
        reflexivity(),
    )
    return Equivalence(
        f=promote, g=forget, section=section, retraction=retraction
    )
