"""Search procedure: renaming and permuting constructors (Section 6.1).

Given two inductive families with the same parameters and compatible
constructors up to a bijection, this module

* enumerates the *type-correct* constructor mappings lazily, most
  plausible first (the paper reports discovering "all other 23
  type-correct permutations" for the REPLICA ``Term`` benchmark and
  handling "a large and ambiguous permutation of a 30 constructor Enum" —
  lazy enumeration is what makes the latter feasible),
* builds the :class:`~repro.core.config.Configuration` of Figure 8 for a
  chosen mapping, and
* generates and *proves* the equivalence of Figure 3 (``swap``,
  ``swap^-1``, ``section``, ``retraction``) — the ``Configure``
  component's equivalence.ml.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ...kernel.env import Environment
from ...kernel.inductive import InductiveDecl, analyze_recursive_args
from ...kernel.term import (
    Constr,
    Elim,
    Ind,
    Lam,
    Rel,
    Term,
    mk_app,
    mk_lams,
    mk_pis,
    replace_subterm,
)
from ..config import AlignedSide, ConfigError, Configuration, Equivalence


def find_constructor_mappings(
    env: Environment, a_name: str, b_name: str
) -> Iterator[Tuple[int, ...]]:
    """Yield type-correct constructor mappings, most plausible first.

    A mapping ``m`` sends dependent-constructor index ``j`` (= the j-th
    constructor of ``A``) to the ``m[j]``-th constructor of ``B``.
    Constructors are grouped by argument-type signature; only
    within-group permutations are type correct.  Within each group,
    name-preserving assignments are tried first, then positional order,
    so the intended mapping is the first one yielded for every variant of
    the REPLICA benchmark (swap, rename, permute, permute + rename).
    """
    a = env.inductive(a_name)
    b = env.inductive(b_name)
    if a.n_params != b.n_params or a.n_constructors != b.n_constructors:
        return
    if [ty for _n, ty in a.params] != [ty for _n, ty in b.params]:
        return
    if a.n_indices or b.n_indices:
        return

    def signature(decl: InductiveDecl, j: int, self_name: str) -> Tuple:
        ctor = decl.constructors[j]
        # Canonicalize recursive occurrences so signatures are comparable
        # across the two families.
        return tuple(
            replace_subterm(ty, Ind(self_name), Ind("<self>"))
            for _n, ty in ctor.args
        )

    groups: Dict[Tuple, Tuple[List[int], List[int]]] = {}
    for j in range(a.n_constructors):
        groups.setdefault(signature(a, j, a_name), ([], []))[0].append(j)
    for j in range(b.n_constructors):
        sig = signature(b, j, b_name)
        if sig not in groups:
            return
        groups[sig][1].append(j)
    if any(len(ja) != len(jb) for ja, jb in groups.values()):
        return

    group_list = list(groups.values())

    def group_assignments(
        a_members: List[int], b_members: List[int]
    ) -> Iterator[Tuple[Tuple[int, int], ...]]:
        # Plausibility order: name-preserving first, then positional.
        def plausibility(perm: Sequence[int]) -> Tuple[int, int]:
            name_mismatches = 0
            moves = 0
            for i, bi in enumerate(perm):
                if (
                    a.constructors[a_members[i]].name
                    != b.constructors[b_members[bi]].name
                ):
                    name_mismatches += 1
                if bi != i:
                    moves += 1
            return (name_mismatches, moves)

        if len(a_members) <= 7:
            perms = sorted(
                itertools.permutations(range(len(a_members))),
                key=plausibility,
            )
            for perm in perms:
                yield tuple(
                    (a_members[i], b_members[perm[i]])
                    for i in range(len(a_members))
                )
        else:
            # Too many to sort eagerly (e.g. a 30-constructor Enum):
            # yield the name-preserving assignment first when it exists,
            # then stream raw permutations lazily.
            by_name = {}
            for bi in b_members:
                by_name.setdefault(b.constructors[bi].name, []).append(bi)
            named: List[Tuple[int, int]] = []
            ok = True
            used = set()
            for ai in a_members:
                candidates = [
                    bi
                    for bi in by_name.get(a.constructors[ai].name, [])
                    if bi not in used
                ]
                if not candidates:
                    ok = False
                    break
                named.append((ai, candidates[0]))
                used.add(candidates[0])
            if ok:
                yield tuple(named)
            for perm in itertools.permutations(range(len(a_members))):
                assignment = tuple(
                    (a_members[i], b_members[perm[i]])
                    for i in range(len(a_members))
                )
                if ok and assignment == tuple(named):
                    continue
                yield assignment

    for combo in _lazy_product(
        [group_assignments(ja, jb) for ja, jb in group_list]
    ):
        mapping = [None] * a.n_constructors
        for pairs in combo:
            for ai, bi in pairs:
                mapping[ai] = bi
        yield tuple(mapping)  # type: ignore


class _Memo:
    """A re-iterable, lazily memoized view of an iterator."""

    def __init__(self, iterator: Iterator) -> None:
        self._iterator = iterator
        self._cache: List = []

    def __iter__(self):
        index = 0
        while True:
            if index < len(self._cache):
                yield self._cache[index]
            else:
                try:
                    item = next(self._iterator)
                except StopIteration:
                    return
                self._cache.append(item)
                yield item
            index += 1


def _lazy_product(iterators: List[Iterator]) -> Iterator[Tuple]:
    """itertools.product that does not exhaust its inputs eagerly.

    The first element of the product is available after pulling only one
    element from each input — essential when a group has 30 constructors
    of the same signature (30! permutations).
    """
    pools = [_Memo(iterator) for iterator in iterators]

    def rec(i: int) -> Iterator[Tuple]:
        if i == len(pools):
            yield ()
            return
        for item in pools[i]:
            for rest in rec(i + 1):
                yield (item,) + rest

    return rec(0)


def swap_configuration(
    env: Environment,
    a_name: str,
    b_name: str,
    mapping: Optional[Sequence[int]] = None,
    prove: bool = True,
) -> Configuration:
    """Build (and prove) the swap/rename configuration of Figure 8.

    Without an explicit ``mapping``, the most plausible type-correct one
    is used (the first option in the list the tool would present).
    """
    if mapping is None:
        try:
            mapping = next(iter(find_constructor_mappings(env, a_name, b_name)))
        except StopIteration:
            raise ConfigError(
                f"no type-correct constructor mapping between {a_name!r} "
                f"and {b_name!r}"
            ) from None
    config = Configuration(
        a=AlignedSide(env, a_name),
        b=AlignedSide(env, b_name, perm=tuple(mapping)),
    )
    if prove:
        config.equivalence = prove_swap_equivalence(env, a_name, b_name, mapping)
    return config


def build_map_function(
    env: Environment,
    a_name: str,
    b_name: str,
    mapping: Sequence[int],
) -> Term:
    """The function ``swap : Pi params, A -> B`` of Figure 3 (top left).

    Folds over ``A``, rebuilding each constructor with the corresponding
    constructor of ``B`` and the induction hypotheses in recursive
    positions.
    """
    from ...kernel.inductive import case_type

    a = env.inductive(a_name)
    np = a.n_params

    def param_vars_at(depth: int) -> Tuple[Term, ...]:
        """Parameter variables under ``depth`` binders beyond the params."""
        return tuple(Rel(depth + np - 1 - m) for m in range(np))

    def b_at(depth: int) -> Term:
        return mk_app(Ind(b_name), param_vars_at(depth))

    def a_at(depth: int) -> Term:
        return mk_app(Ind(a_name), param_vars_at(depth))

    # The eliminator sits under the binders [params..., x], i.e. depth 1.
    motive = Lam("_", a_at(1), b_at(2))
    cases: List[Term] = []
    for j, ctor in enumerate(a.constructors):
        rec = analyze_recursive_args(a, j)
        # Each case binds the constructor args with an IH directly after
        # every recursive arg; the ported value of a recursive arg is its
        # IH, of any other arg the arg itself.
        value_positions: List[int] = []  # bottom-height of ported values
        height = 0
        for i in range(len(ctor.args)):
            if rec[i] is not None:
                value_positions.append(height + 1)
                height += 2
            else:
                value_positions.append(height)
                height += 1
        args_for_b = [Rel(height - 1 - pos) for pos in value_positions]
        body = mk_app(
            Constr(b_name, mapping[j]),
            param_vars_at(1 + height) + tuple(args_for_b),
        )
        # Take precise binder types from the kernel's case-type machinery.
        ct = case_type(a, j, param_vars_at(1), motive)
        binders: List[Tuple[str, Term]] = []
        for _ in range(height):
            binders.append((ct.name, ct.domain))
            ct = ct.codomain
        cases.append(mk_lams(binders, body))

    body = Elim(a_name, motive, tuple(cases), Rel(0))
    return mk_lams(list(a.params) + [("x", a_at(0))], body)


def prove_swap_equivalence(
    env: Environment,
    a_name: str,
    b_name: str,
    mapping: Sequence[int],
) -> Equivalence:
    """Generate ``f``/``g`` and prove ``section``/``retraction``.

    The proofs are found exactly as sketched in Section 4.3: induct,
    rewrite along each induction hypothesis, finish with reflexivity.
    """
    from ...kernel.typecheck import typecheck_closed
    from ...tactics.engine import Proof
    from ...tactics.tactics import (
        induction,
        intros,
        reflexivity,
        rewrite,
        simpl,
    )
    from ...kernel.pretty import pretty

    a = env.inductive(a_name)
    inverse = [0] * len(mapping)
    for j, bj in enumerate(mapping):
        inverse[bj] = j

    f = build_map_function(env, a_name, b_name, mapping)
    g = build_map_function(env, b_name, a_name, inverse)
    typecheck_closed(env, f)
    typecheck_closed(env, g)

    def roundtrip_statement(src: str, fwd: Term, bwd: Term) -> Term:
        decl = env.inductive(src)
        np = decl.n_params
        params = [Rel(np - m) for m in range(np)]  # under params..., x
        src_ty = mk_app(Ind(src), tuple(Rel(np - 1 - m) for m in range(np)))
        x = Rel(0)
        applied = mk_app(bwd, tuple(params) + (mk_app(fwd, tuple(params) + (x,)),))
        return mk_pis(
            list(decl.params) + [("x", src_ty)],
            mk_app(Ind("eq"), (mk_app(Ind(src), tuple(params)), applied, x)),
        )

    def prove_roundtrip(src: str, statement: Term) -> Term:
        decl = env.inductive(src)
        proof = Proof(env, statement)
        binder_names = [name for name, _ in decl.params] + ["x"]
        proof.run(intros(*binder_names))
        # Name case binders so the script can rewrite along each IH.
        names = []
        ih_names_per_case = []
        for j, ctor in enumerate(decl.constructors):
            rec = analyze_recursive_args(decl, j)
            case_names: List[str] = []
            ih_names: List[str] = []
            for i, (arg_name, _ty) in enumerate(ctor.args):
                case_names.append(f"a{j}_{i}")
                if rec[i] is not None:
                    ih = f"IH{j}_{i}"
                    case_names.append(ih)
                    ih_names.append(ih)
            names.append(case_names)
            ih_names_per_case.append(ih_names)
        proof.run(induction("x", names=names))
        for j in range(decl.n_constructors):
            ihs = ih_names_per_case[j]
            if ihs:
                proof.run(simpl())
                for ih in ihs:
                    proof.run(rewrite(ih))
            proof.run(reflexivity())
        return proof.qed()

    section_stmt = roundtrip_statement(a_name, f, g)
    retraction_stmt = roundtrip_statement(b_name, g, f)
    section = prove_roundtrip(a_name, section_stmt)
    retraction = prove_roundtrip(b_name, retraction_stmt)
    return Equivalence(f=f, g=g, section=section, retraction=retraction)
