"""Server metrics: counters, latency histograms, and ``/metrics`` text.

Everything the server knows about itself, rendered in the
Prometheus/OpenMetrics text flavour (``name{label="v"} value``) that
every scraper and human alike can read:

* **request counters** — one per (route, status) pair, plus the
  rate-limiter's rejection count;
* **latency histograms** — one :class:`~repro.obs.hist.Histogram` per
  route, exposed as cumulative ``_bucket``/``_sum``/``_count`` series;
* **server gauges** — queue depth, active sessions, worker reuse rate,
  live pool width — registered as zero-argument callables so the
  exposition always reads the *current* value, never a stale copy;
* **kernel counters** — the process-global
  :data:`~repro.kernel.stats.KERNEL_STATS` tables (constructions,
  interning, every memo table's hits/misses, machine events), because
  the repair engine's cache behaviour is exactly what a server operator
  tunes against.

The registry is thread-safe: handler threads record while the metrics
endpoint renders.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Tuple

from ..kernel.stats import KERNEL_STATS
from ..obs.hist import Histogram

_PREFIX = "repro"


def _fmt(value: float) -> str:
    """A metric value: integers bare, floats with up to 6 places."""
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6f}".rstrip("0").rstrip(".")


def _labels(pairs: Dict[str, str]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(pairs.items())
    )
    return "{" + inner + "}"


class ServerMetrics:
    """The server-wide metric registry behind ``/metrics``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[Tuple[str, int], int] = {}
        self._latency: Dict[str, Histogram] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}

    # -- Recording ---------------------------------------------------------

    def record_request(
        self, route: str, status: int, wall_s: float
    ) -> None:
        """Count one finished request and observe its latency."""
        with self._lock:
            key = (route, status)
            self._requests[key] = self._requests.get(key, 0) + 1
            hist = self._latency.get(route)
            if hist is None:
                hist = self._latency[route] = Histogram()
        hist.observe(wall_s)

    def register_gauge(
        self, name: str, read: Callable[[], float]
    ) -> None:
        """Expose ``read()`` as gauge ``repro_server_<name>``."""
        with self._lock:
            self._gauges[name] = read

    # -- Introspection -----------------------------------------------------

    def request_counts(self) -> Dict[str, int]:
        """Total finished requests per route (the app's summary view)."""
        with self._lock:
            totals: Dict[str, int] = {}
            for (route, _status), count in self._requests.items():
                totals[route] = totals.get(route, 0) + count
            return totals

    def status_counts(self) -> Dict[int, int]:
        """Total finished requests per status code."""
        with self._lock:
            totals: Dict[int, int] = {}
            for (_route, status), count in self._requests.items():
                totals[status] = totals.get(status, 0) + count
            return totals

    def latency(self, route: str) -> Histogram:
        """The latency histogram for ``route`` (created on first use)."""
        with self._lock:
            hist = self._latency.get(route)
            if hist is None:
                hist = self._latency[route] = Histogram()
            return hist

    # -- Exposition --------------------------------------------------------

    def render(self) -> str:
        """The full ``/metrics`` payload (text/plain)."""
        with self._lock:
            requests = dict(self._requests)
            latency = dict(self._latency)
            gauges = dict(self._gauges)
        lines: List[str] = []

        lines.append(f"# TYPE {_PREFIX}_http_requests_total counter")
        for (route, status), count in sorted(requests.items()):
            labels = _labels({"route": route, "status": str(status)})
            lines.append(
                f"{_PREFIX}_http_requests_total{labels} {count}"
            )

        lines.append(
            f"# TYPE {_PREFIX}_http_request_duration_seconds histogram"
        )
        for route, hist in sorted(latency.items()):
            snap = hist.snapshot()
            for bucket in snap["buckets"]:  # type: ignore[union-attr]
                labels = _labels(
                    {"route": route, "le": str(bucket["le"])}
                )
                lines.append(
                    f"{_PREFIX}_http_request_duration_seconds_bucket"
                    f"{labels} {bucket['count']}"
                )
            labels = _labels({"route": route})
            lines.append(
                f"{_PREFIX}_http_request_duration_seconds_sum{labels} "
                f"{_fmt(float(snap['sum']))}"  # type: ignore[arg-type]
            )
            lines.append(
                f"{_PREFIX}_http_request_duration_seconds_count{labels} "
                f"{snap['count']}"
            )

        for name, read in sorted(gauges.items()):
            try:
                value = float(read())
            except Exception:  # noqa: BLE001 — a broken gauge must not
                continue  # take down the whole exposition
            lines.append(f"# TYPE {_PREFIX}_server_{name} gauge")
            lines.append(f"{_PREFIX}_server_{name} {_fmt(value)}")

        lines.extend(_kernel_lines())
        return "\n".join(lines) + "\n"


def _kernel_lines() -> List[str]:
    """The process-global kernel counters as metric lines."""
    snap: Dict[str, Any] = KERNEL_STATS.snapshot()
    lines = [
        f"# TYPE {_PREFIX}_kernel_constructions_total counter",
        f"{_PREFIX}_kernel_constructions_total {snap['constructions']}",
        f"# TYPE {_PREFIX}_kernel_intern_hits_total counter",
        f"{_PREFIX}_kernel_intern_hits_total {snap['intern_hits']}",
        f"# TYPE {_PREFIX}_kernel_cache_total counter",
    ]
    tables: Dict[str, Dict[str, Any]] = snap["tables"]
    for table, counts in sorted(tables.items()):
        for kind in ("hits", "misses"):
            labels = _labels({"table": table, "kind": kind})
            lines.append(
                f"{_PREFIX}_kernel_cache_total{labels} {counts[kind]}"
            )
    events: Dict[str, int] = snap["events"]
    if events:
        lines.append(f"# TYPE {_PREFIX}_kernel_events_total counter")
        for event, count in sorted(events.items()):
            labels = _labels({"event": event})
            lines.append(
                f"{_PREFIX}_kernel_events_total{labels} {count}"
            )
    return lines


__all__ = ["ServerMetrics"]
