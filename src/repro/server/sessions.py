"""Named persistent vernacular sessions behind the HTTP front end.

A session is one long-lived :class:`~repro.commands.CommandSession` —
environment, configuration cache, transform cache, history — addressed
by name, so an interactive client (the holpy ``server/`` model: a
prover kept warm between JSON requests) pays environment boot once and
then streams vernacular commands at it.

Concurrency and lifetime rules, all enforced here so the HTTP layer
stays a thin adapter:

* **per-session lock** — commands against one session serialize; a
  request that cannot take the lock within ``busy_timeout_s`` is
  answered ``409 busy`` rather than queueing unboundedly behind a
  slow repair;
* **bounded count** — at most ``max_sessions`` live sessions; creating
  one past the bound first sweeps idle sessions, then answers
  ``503 session-limit``;
* **idle TTL** — a session untouched for ``idle_ttl_s`` is evicted by
  the sweep (periodic via the server's housekeeping thread, inline on
  every create).  A session whose lock is held is never evicted, no
  matter how old its timestamp — in-flight work wins.

Sessions boot through :func:`repro.service.worker.boot_environment`,
so a snapshot pack configured on the server warm-starts them exactly
like it warm-starts pool workers.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..commands import CommandError, CommandSession
from ..service.worker import boot_environment

#: Default bound on live sessions.
DEFAULT_MAX_SESSIONS = 32

#: Default idle TTL before a session is evicted, in seconds.
DEFAULT_IDLE_TTL_S = 900.0

#: Default time a command request waits for a busy session's lock.
DEFAULT_BUSY_TIMEOUT_S = 30.0

#: The environment a session boots when the client names none.
DEFAULT_SETUP = "repro.service.cases:quickstart_env"

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class SessionRejected(Exception):
    """A session operation refused; carries the HTTP status and code."""

    def __init__(self, status: int, code: str, detail: str) -> None:
        super().__init__(detail)
        self.status = status
        self.code = code
        self.detail = detail


class ManagedSession:
    """One named session plus its lock and lifetime bookkeeping."""

    def __init__(
        self, name: str, setup: str, session: CommandSession, boot: str
    ) -> None:
        self.name = name
        self.setup = setup
        self.session = session
        self.boot = boot
        self.lock = threading.Lock()
        self.created = time.time()
        self.last_used = time.monotonic()
        self.commands = 0

    def info(self, now: Optional[float] = None) -> Dict[str, Any]:
        now = time.monotonic() if now is None else now
        return {
            "name": self.name,
            "setup": self.setup,
            "env_boot": self.boot,
            "created_at": self.created,
            "idle_s": round(max(0.0, now - self.last_used), 3),
            "commands": self.commands,
        }


class SessionManager:
    """The bounded, TTL-swept table of live sessions."""

    def __init__(
        self,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
        idle_ttl_s: float = DEFAULT_IDLE_TTL_S,
        busy_timeout_s: float = DEFAULT_BUSY_TIMEOUT_S,
        snapshot: Optional[str] = None,
        boot: Optional[Callable[[str], Tuple[Any, str]]] = None,
    ) -> None:
        self.max_sessions = max(1, int(max_sessions))
        self.idle_ttl_s = float(idle_ttl_s)
        self.busy_timeout_s = float(busy_timeout_s)
        self._snapshot = snapshot
        # Injectable boot for tests; the default goes through the same
        # snapshot-or-scratch path pool workers use.
        self._boot = boot or (
            lambda setup: boot_environment(setup, self._snapshot)
        )
        # ``None`` marks a slot reserved by an in-flight create (the
        # boot happens outside the table lock).
        self._table: Dict[str, Optional[ManagedSession]] = {}
        self._lock = threading.Lock()
        #: Lifetime counters for the metrics endpoint.
        self.created_total = 0
        self.evicted_total = 0

    # -- Lifecycle ---------------------------------------------------------

    def create(
        self, name: str, setup: Optional[str] = None
    ) -> Dict[str, Any]:
        """Boot a new named session; returns its info dict."""
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise SessionRejected(
                400,
                "bad-name",
                "session names are 1-64 chars of [A-Za-z0-9._-], "
                "starting alphanumeric",
            )
        setup = setup or DEFAULT_SETUP
        self.sweep()
        with self._lock:
            if name in self._table:
                raise SessionRejected(
                    409, "exists", f"session {name!r} already exists"
                )
            if len(self._table) >= self.max_sessions:
                raise SessionRejected(
                    503,
                    "session-limit",
                    f"session limit ({self.max_sessions}) reached",
                )
            # Reserve the slot before the (slow) boot so two concurrent
            # creates of one name cannot both pass the table check.
            self._table[name] = None
        try:
            env, boot = self._boot(setup)
            managed = ManagedSession(
                name, setup, CommandSession(env), boot
            )
        except BaseException:
            with self._lock:
                self._table.pop(name, None)
            raise
        with self._lock:
            self._table[name] = managed
            self.created_total += 1
        return managed.info()

    def close(self, name: str) -> Dict[str, Any]:
        """Drop a session by name; returns its final info."""
        managed = self._live(name)
        with self._lock:
            self._table.pop(name, None)
        return managed.info()

    def close_all(self) -> int:
        """Drop every session (server drain); returns how many."""
        with self._lock:
            count = len(self._table)
            self._table.clear()
        return count

    def sweep(self, now: Optional[float] = None) -> List[str]:
        """Evict sessions idle past the TTL; returns evicted names.

        A session whose lock cannot be taken without blocking is in
        use and is skipped regardless of its timestamp.
        """
        if self.idle_ttl_s <= 0:
            return []
        now = time.monotonic() if now is None else now
        with self._lock:
            candidates = [
                m
                for m in self._table.values()
                if m is not None and now - m.last_used > self.idle_ttl_s
            ]
        evicted: List[str] = []
        for managed in candidates:
            if not managed.lock.acquire(blocking=False):
                continue
            try:
                if now - managed.last_used <= self.idle_ttl_s:
                    continue
                with self._lock:
                    if self._table.get(managed.name) is managed:
                        del self._table[managed.name]
                        self.evicted_total += 1
                        evicted.append(managed.name)
            finally:
                managed.lock.release()
        return evicted

    # -- Commands ----------------------------------------------------------

    def run(self, name: str, script: str) -> Dict[str, Any]:
        """Run vernacular lines against a session, under its lock."""
        managed = self._live(name)
        if not managed.lock.acquire(timeout=self.busy_timeout_s):
            raise SessionRejected(
                409,
                "busy",
                f"session {name!r} is busy (waited "
                f"{self.busy_timeout_s:g}s for its lock)",
            )
        try:
            started = time.perf_counter()
            try:
                results = managed.session.run(script)
            except CommandError as exc:
                raise SessionRejected(422, "command-error", str(exc))
            managed.commands += len(results)
            managed.last_used = time.monotonic()
            return {
                "session": name,
                "wall_time_s": round(
                    time.perf_counter() - started, 6
                ),
                "results": [
                    {
                        "command": r.command,
                        "summary": r.summary,
                        "new_names": [
                            res.new_name for res in r.results
                        ],
                        "text": r.text,
                    }
                    for r in results
                ],
            }
        finally:
            managed.lock.release()

    # -- Introspection -----------------------------------------------------

    def _live(self, name: str) -> ManagedSession:
        with self._lock:
            managed = self._table.get(name)
        if managed is None:
            raise SessionRejected(
                404, "unknown-session", f"no session named {name!r}"
            )
        return managed

    def info(self, name: str) -> Dict[str, Any]:
        return self._live(name).info()

    def list(self) -> List[Dict[str, Any]]:
        now = time.monotonic()
        with self._lock:
            live = [m for m in self._table.values() if m is not None]
        return sorted(
            (m.info(now) for m in live), key=lambda i: str(i["name"])
        )

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._table)


__all__ = [
    "DEFAULT_BUSY_TIMEOUT_S",
    "DEFAULT_IDLE_TTL_S",
    "DEFAULT_MAX_SESSIONS",
    "DEFAULT_SETUP",
    "ManagedSession",
    "SessionManager",
    "SessionRejected",
]
