"""Per-client token-bucket rate limiting.

Auth-free does not mean unbounded: every client (keyed by the
``X-Repro-Client`` header when present, else the peer address) gets a
token bucket of ``burst`` capacity refilled at ``rate`` tokens per
second.  A request that finds the bucket empty is answered ``429`` with
a ``Retry-After`` naming when one token will exist again — clients that
honour it converge on the sustainable rate instead of thundering.

Buckets for clients idle long enough to have refilled completely are
pruned on the way through, so the table is bounded by the *active*
client set, not by everyone ever seen — a server meant to stay up for
weeks cannot leak a dict entry per curl invocation.

``rate <= 0`` disables limiting (the load bench's accounting mode);
the health and metrics probes are exempted by the app layer, never
here — this module does not know what a route is.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Tuple

#: Default sustained request rate per client (tokens/second).
DEFAULT_RATE = 50.0

#: Default burst capacity per client (bucket size).
DEFAULT_BURST = 100.0


class TokenBucket:
    """One client's bucket: a float token count plus its last refill."""

    __slots__ = ("tokens", "stamp")

    def __init__(self, tokens: float, stamp: float) -> None:
        self.tokens = tokens
        self.stamp = stamp


class RateLimiter:
    """A table of per-client token buckets behind one lock."""

    def __init__(
        self,
        rate: float = DEFAULT_RATE,
        burst: float = DEFAULT_BURST,
        clock: Optional[object] = None,
    ) -> None:
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        # Injectable clock for deterministic tests.
        self._clock = clock if callable(clock) else time.monotonic
        #: Requests refused since start (the metrics counter's source).
        self.rejected = 0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def allow(self, client: str) -> Tuple[bool, float]:
        """Take one token for ``client``.

        Returns ``(allowed, retry_after_s)``; ``retry_after_s`` is 0.0
        when allowed, else the seconds until one token will exist.
        """
        if not self.enabled:
            return True, 0.0
        now = float(self._clock())  # type: ignore[operator]
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = TokenBucket(
                    self.burst, now
                )
            else:
                elapsed = max(0.0, now - bucket.stamp)
                bucket.tokens = min(
                    self.burst, bucket.tokens + elapsed * self.rate
                )
                bucket.stamp = now
            if bucket.tokens >= 1.0:
                bucket.tokens -= 1.0
                self._prune(now)
                return True, 0.0
            self.rejected += 1
            retry_after = (1.0 - bucket.tokens) / self.rate
            return False, retry_after

    def _prune(self, now: float) -> None:
        """Drop buckets idle long enough to be full again (lock held).

        A full bucket is indistinguishable from a brand-new one, so
        forgetting it loses nothing; pruning only when the table has
        grown keeps the common case at zero extra work.
        """
        if len(self._buckets) <= 1024:
            return
        refill_s = self.burst / self.rate
        stale = [
            client
            for client, bucket in self._buckets.items()
            if now - bucket.stamp > refill_s
        ]
        for client in stale:
            del self._buckets[client]

    @property
    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)


__all__ = ["DEFAULT_BURST", "DEFAULT_RATE", "RateLimiter", "TokenBucket"]
