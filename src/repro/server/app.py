"""The repair server application: routes, handlers, shared state.

This is the whole server minus the sockets.  :class:`RepairApp` maps a
:class:`Request` to a :class:`Response` — the HTTP layer
(:mod:`repro.server.http`) is a thin adapter over :meth:`RepairApp.handle`,
so every handler, error path, and backpressure rule here is unit-testable
without binding a port.

State shared across requests, all owned here:

* one long-lived :class:`~repro.service.pool.WorkerPool` — every batch,
  sync or async, runs through ``run_batch(..., runner=pool.runner())``,
  so warm workers persist *across* HTTP requests instead of being
  drained per batch;
* one :class:`~repro.service.store.ResultStore` — the content-addressed
  cache tier in front of the pool; repeated manifests answer from disk;
* the :class:`~repro.server.sessions.SessionManager` of named
  vernacular sessions;
* the bounded :class:`~repro.server.queue.JobQueue` behind ``202``
  async submits;
* the per-client :class:`~repro.server.ratelimit.RateLimiter` (429s)
  and the :class:`~repro.server.metrics.ServerMetrics` registry.

Load shedding is layered: rate limit first (per client, 429), then the
drain flag (503 on everything but health/metrics), then the queue bound
(503 for async) or pool contention (sync requests queue on worker
checkout).  ``/healthz`` and ``/metrics`` are exempt from all of it —
an operator must be able to see a struggling server.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TextIO, Tuple

from ..service.job import JobError, RepairJob
from ..service.manifest import jobs_from_manifest
from ..service.pool import WorkerPool
from ..service.scheduler import (
    BatchOptions,
    Runner,
    inprocess_runner,
    run_batch,
)
from ..service.store import ResultStore
from .metrics import ServerMetrics
from .queue import (
    DEFAULT_MAX_PENDING,
    DEFAULT_WORKERS,
    JobQueue,
    QueueRejected,
)
from .ratelimit import DEFAULT_BURST, DEFAULT_RATE, RateLimiter
from .routes import Route, RouteError, Router
from .sessions import (
    DEFAULT_BUSY_TIMEOUT_S,
    DEFAULT_IDLE_TTL_S,
    DEFAULT_MAX_SESSIONS,
    SessionManager,
    SessionRejected,
)

#: Largest accepted request body, in bytes (the HTTP layer enforces it
#: too, before reading; this is the transport-independent backstop).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Largest ``jobs`` array accepted in one repair manifest.
DEFAULT_MAX_BATCH_JOBS = 128

#: Handlers exempt from rate limiting and the drain refusal.
EXEMPT_HANDLERS = frozenset({"healthz", "metrics"})

#: Header a client may set to identify itself to the rate limiter.
CLIENT_HEADER = "x-repro-client"


@dataclass
class ServerConfig:
    """Every knob of one server instance (CLI flags map onto this)."""

    host: str = "127.0.0.1"
    port: int = 8433
    #: Warm-worker pool width; ``1`` runs repairs in-process (tests).
    workers: int = 4
    #: Result-store directory; ``None`` uses the service default.
    store_dir: Optional[str] = None
    #: ``False`` disables the store entirely (every repair recomputes).
    store: bool = True
    #: LRU bound on stored records; ``None`` means unbounded.
    store_max_entries: Optional[int] = None
    snapshot: Optional[str] = None
    max_sessions: int = DEFAULT_MAX_SESSIONS
    idle_ttl_s: float = DEFAULT_IDLE_TTL_S
    busy_timeout_s: float = DEFAULT_BUSY_TIMEOUT_S
    #: Per-client sustained request rate; ``0`` disables limiting.
    rate: float = DEFAULT_RATE
    burst: float = DEFAULT_BURST
    queue_pending: int = DEFAULT_MAX_PENDING
    queue_workers: int = DEFAULT_WORKERS
    #: Per-job repair timeout passed to the scheduler.
    timeout_s: Optional[float] = None
    retries: int = 2
    max_batch_jobs: int = DEFAULT_MAX_BATCH_JOBS
    #: Session idle sweep period for the housekeeping thread.
    sweep_interval_s: float = 30.0
    #: Suppress structured request logs (tests, benchmarks).
    quiet: bool = False


@dataclass
class Request:
    """One transport-independent request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    client: str = "-"

    def header(self, name: str) -> Optional[str]:
        return self.headers.get(name.lower())


@dataclass
class Response:
    """One response: status, JSON-able payload, extra headers."""

    status: int
    payload: Any
    headers: Dict[str, str] = field(default_factory=dict)
    content_type: str = "application/json"

    def encoded(self) -> bytes:
        if self.content_type == "application/json":
            return (
                json.dumps(self.payload, sort_keys=True) + "\n"
            ).encode("utf-8")
        return str(self.payload).encode("utf-8")


class AppError(Exception):
    """A handler-raised error with its HTTP shape attached."""

    def __init__(
        self,
        status: int,
        code: str,
        detail: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(detail)
        self.status = status
        self.code = code
        self.detail = detail
        self.headers = dict(headers or {})


def _error(
    status: int,
    code: str,
    detail: str,
    headers: Optional[Dict[str, str]] = None,
) -> Response:
    return Response(
        status,
        {"error": {"code": code, "detail": detail}},
        dict(headers or {}),
    )


#: The route table.  Handler names resolve to ``handle_<name>`` methods;
#: the name doubles as the (bounded-cardinality) metrics route label.
ROUTES: Tuple[Route, ...] = (
    Route("GET", "/healthz", "healthz"),
    Route("GET", "/metrics", "metrics"),
    Route("GET", "/v1/status", "status"),
    Route("POST", "/v1/sessions", "session_create"),
    Route("GET", "/v1/sessions", "session_list"),
    Route("GET", "/v1/sessions/{name}", "session_info"),
    Route("DELETE", "/v1/sessions/{name}", "session_close"),
    Route("POST", "/v1/sessions/{name}/command", "session_command"),
    Route("POST", "/v1/repair", "repair"),
    Route("GET", "/v1/jobs", "job_list"),
    Route("GET", "/v1/jobs/{id}", "job_get"),
)


class RepairApp:
    """The repair service: all handlers and all cross-request state."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        log_stream: Optional[TextIO] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.router = Router(list(ROUTES))
        self.metrics = ServerMetrics()
        self.limiter = RateLimiter(self.config.rate, self.config.burst)
        self.sessions = SessionManager(
            max_sessions=self.config.max_sessions,
            idle_ttl_s=self.config.idle_ttl_s,
            busy_timeout_s=self.config.busy_timeout_s,
            snapshot=self.config.snapshot,
        )
        self.store: Optional[ResultStore] = (
            ResultStore(
                self.config.store_dir,
                max_entries=self.config.store_max_entries,
            )
            if self.config.store
            else None
        )
        self.pool: Optional[WorkerPool] = None
        self._runner: Runner
        if self.config.workers > 1:
            self.pool = WorkerPool(
                self.config.workers, snapshot=self.config.snapshot
            )
            self._runner = self.pool.runner()
        else:
            self._runner = inprocess_runner(
                snapshot=self.config.snapshot
            )
        self.queue = JobQueue(
            self._execute_work,
            max_pending=self.config.queue_pending,
            workers=self.config.queue_workers,
        )
        self._log_stream = log_stream if log_stream is not None else sys.stderr
        self._log_lock = threading.Lock()
        self._draining = False
        self._started_at = time.time()
        self._started_mono = time.monotonic()
        self._stop_sweeper = threading.Event()
        self._sweeper: Optional[threading.Thread] = None
        self._batches = 0
        self._batch_lock = threading.Lock()
        self._register_gauges()

    # -- Lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the queue dispatchers and the session sweeper."""
        self.queue.start()
        if self._sweeper is None and self.config.sweep_interval_s > 0:
            self._sweeper = threading.Thread(
                target=self._sweep_loop,
                name="repro-session-sweeper",
                daemon=True,
            )
            self._sweeper.start()

    def begin_drain(self) -> None:
        """Flip the drain flag: new work is refused, health stays up."""
        self._draining = True

    def drain(self, timeout_s: float = 30.0) -> Dict[str, int]:
        """Stop everything: queue, sessions, sweeper, worker pool."""
        self.begin_drain()
        self._stop_sweeper.set()
        stats = self.queue.drain(timeout_s)
        stats["sessions_closed"] = self.sessions.close_all()
        if self.pool is not None:
            self.pool.shutdown()
        return stats

    @property
    def draining(self) -> bool:
        return self._draining

    def _sweep_loop(self) -> None:
        while not self._stop_sweeper.wait(self.config.sweep_interval_s):
            try:
                self.sessions.sweep()
            except Exception:  # noqa: BLE001 — housekeeping must not die
                pass

    def _register_gauges(self) -> None:
        self.metrics.register_gauge(
            "queue_depth", lambda: float(self.queue.depth)
        )
        self.metrics.register_gauge(
            "queue_running", lambda: float(self.queue.running)
        )
        self.metrics.register_gauge(
            "active_sessions", lambda: float(self.sessions.count)
        )
        self.metrics.register_gauge(
            "ratelimit_clients", lambda: float(self.limiter.clients)
        )
        self.metrics.register_gauge(
            "ratelimit_rejected_total",
            lambda: float(self.limiter.rejected),
        )
        self.metrics.register_gauge(
            "uptime_seconds",
            lambda: time.monotonic() - self._started_mono,
        )
        if self.pool is not None:
            pool = self.pool
            self.metrics.register_gauge(
                "worker_reuse_rate",
                lambda: float(pool.stats()["reuse_rate"]),
            )
            self.metrics.register_gauge(
                "workers_spawned",
                lambda: float(pool.stats()["spawned"]),
            )
            self.metrics.register_gauge(
                "pool_jobs_total",
                lambda: float(pool.stats()["jobs"]),
            )
        if self.store is not None:
            store = self.store
            self.metrics.register_gauge(
                "store_hit_rate", lambda: float(store.hit_rate)
            )

    # -- Dispatch ----------------------------------------------------------

    def handle(self, request: Request) -> Response:
        """The whole request cycle: route, shed, dispatch, account."""
        started = time.perf_counter()
        label, response = self._dispatch(request)
        wall = time.perf_counter() - started
        self.metrics.record_request(label, response.status, wall)
        self._log_request(request, label, response.status, wall)
        return response

    def _dispatch(self, request: Request) -> Tuple[str, Response]:
        try:
            match = self.router.resolve(request.method, request.path)
        except RouteError as exc:
            headers = (
                {"Allow": ", ".join(exc.allow)} if exc.allow else {}
            )
            code = "not-found" if exc.status == 404 else "method-not-allowed"
            return "unrouted", _error(
                exc.status, code, exc.detail, headers
            )
        label = match.handler
        if label not in EXEMPT_HANDLERS:
            if self._draining:
                return label, _error(
                    503,
                    "draining",
                    "server is draining",
                    {"Retry-After": "30"},
                )
            client = request.header(CLIENT_HEADER) or request.client
            allowed, retry_after = self.limiter.allow(client)
            if not allowed:
                return label, _error(
                    429,
                    "rate-limited",
                    f"client {client!r} is over its request rate",
                    {"Retry-After": f"{max(retry_after, 0.001):.3f}"},
                )
        if len(request.body) > MAX_BODY_BYTES:
            return label, _error(
                413,
                "body-too-large",
                f"request body exceeds {MAX_BODY_BYTES} bytes",
            )
        handler: Callable[[Request, Dict[str, str]], Response] = getattr(
            self, f"handle_{label}"
        )
        try:
            return label, handler(request, match.params)
        except AppError as exc:
            return label, _error(
                exc.status, exc.code, exc.detail, exc.headers
            )
        except SessionRejected as exc:
            return label, _error(exc.status, exc.code, exc.detail)
        except QueueRejected as exc:
            return label, _error(
                exc.status,
                exc.code,
                exc.detail,
                {"Retry-After": f"{exc.retry_after:.3f}"},
            )
        except JobError as exc:
            return label, _error(400, "bad-manifest", str(exc))
        except Exception as exc:  # noqa: BLE001 — one broken request
            # must answer 500, never take down the handler thread.
            self.log_event(
                {
                    "event": "handler-error",
                    "handler": label,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(limit=8),
                }
            )
            return label, _error(
                500, "internal-error", f"{type(exc).__name__}: {exc}"
            )

    # -- Logging -----------------------------------------------------------

    def _log_request(
        self, request: Request, label: str, status: int, wall_s: float
    ) -> None:
        if self.config.quiet:
            return
        self.log_event(
            {
                "event": "request",
                "method": request.method,
                "path": request.path,
                "route": label,
                "status": status,
                "wall_ms": round(wall_s * 1000, 3),
                "client": request.header(CLIENT_HEADER)
                or request.client,
            }
        )

    def log_event(self, event: Dict[str, Any]) -> None:
        if self.config.quiet and event.get("event") != "handler-error":
            return
        line = json.dumps(event, sort_keys=True)
        with self._log_lock:
            try:
                self._log_stream.write(line + "\n")
                self._log_stream.flush()
            except (OSError, ValueError):
                pass

    # -- Plumbing ----------------------------------------------------------

    def _json_body(self, request: Request) -> Dict[str, Any]:
        if not request.body:
            return {}
        try:
            data = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise AppError(
                400, "bad-json", f"request body is not JSON: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise AppError(
                400, "bad-json", "request body must be a JSON object"
            )
        return data

    def _batch_options(self, overrides: Dict[str, Any]) -> BatchOptions:
        timeout_s = overrides.get("timeout_s", self.config.timeout_s)
        if timeout_s is not None and not isinstance(
            timeout_s, (int, float)
        ):
            raise AppError(400, "bad-manifest", "timeout_s must be a number")
        retries = overrides.get("retries", self.config.retries)
        if not isinstance(retries, int) or retries < 0:
            raise AppError(
                400, "bad-manifest", "retries must be a non-negative int"
            )
        refresh = bool(overrides.get("refresh", False))
        return BatchOptions(
            jobs=self.config.workers,
            timeout_s=float(timeout_s) if timeout_s is not None else None,
            retries=retries,
            refresh=refresh,
            store=self.store,
            snapshot=self.config.snapshot,
        )

    def _parse_repair(
        self, request: Request
    ) -> Tuple[str, List[RepairJob], Dict[str, Any]]:
        body = self._json_body(request)
        jobs = jobs_from_manifest(body, where="request")
        if len(jobs) > self.config.max_batch_jobs:
            raise AppError(
                413,
                "too-many-jobs",
                f"manifest has {len(jobs)} jobs; the limit is "
                f"{self.config.max_batch_jobs}",
            )
        batch = str(body.get("batch") or "batch")
        return batch, jobs, body

    def _run_manifest(
        self, batch: str, jobs: List[RepairJob], overrides: Dict[str, Any]
    ) -> Dict[str, Any]:
        """One batch through the scheduler on the *shared* pool."""
        options = self._batch_options(overrides)
        report = run_batch(
            jobs, options, runner=self._runner, batch=batch
        )
        with self._batch_lock:
            self._batches += 1
        out = report.to_dict()
        if self.pool is not None:
            out["pool"] = self.pool.stats()
        return out

    def _execute_work(self, work: Any) -> Dict[str, Any]:
        """The queue dispatcher's entry point (async submits)."""
        assert isinstance(work, dict)
        return self._run_manifest(
            work["batch"], work["jobs"], work["overrides"]
        )

    # -- Handlers ----------------------------------------------------------

    def handle_healthz(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        return Response(
            200,
            {
                "status": "draining" if self._draining else "ok",
                "uptime_s": round(
                    time.monotonic() - self._started_mono, 3
                ),
            },
        )

    def handle_metrics(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        return Response(
            200,
            self.metrics.render(),
            content_type="text/plain; version=0.0.4",
        )

    def handle_status(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        with self._batch_lock:
            batches = self._batches
        payload: Dict[str, Any] = {
            "status": "draining" if self._draining else "ok",
            "started_at": self._started_at,
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "workers": self.config.workers,
            "batches": batches,
            "sessions": {
                "active": self.sessions.count,
                "created": self.sessions.created_total,
                "evicted": self.sessions.evicted_total,
            },
            "queue": {
                "depth": self.queue.depth,
                "running": self.queue.running,
                "submitted": self.queue.submitted_total,
                "completed": self.queue.completed_total,
                "rejected": self.queue.rejected_total,
            },
            "ratelimit": {
                "enabled": self.limiter.enabled,
                "clients": self.limiter.clients,
                "rejected": self.limiter.rejected,
            },
        }
        if self.pool is not None:
            payload["pool"] = self.pool.stats()
        if self.store is not None:
            payload["store"] = {
                "hits": self.store.hits,
                "misses": self.store.misses,
                "hit_rate": round(self.store.hit_rate, 4),
            }
        return Response(200, payload)

    def handle_session_create(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        body = self._json_body(request)
        name = body.get("name")
        if not isinstance(name, str):
            raise AppError(
                400, "bad-request", "a session needs a string 'name'"
            )
        setup = body.get("setup")
        if setup is not None and not isinstance(setup, str):
            raise AppError(
                400, "bad-request", "'setup' must be a dotted reference"
            )
        info = self.sessions.create(name, setup)
        return Response(201, {"session": info})

    def handle_session_list(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        return Response(200, {"sessions": self.sessions.list()})

    def handle_session_info(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        return Response(
            200, {"session": self.sessions.info(params["name"])}
        )

    def handle_session_close(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        return Response(
            200, {"closed": self.sessions.close(params["name"])}
        )

    def handle_session_command(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        body = self._json_body(request)
        script = body.get("script", body.get("command"))
        if isinstance(script, list) and all(
            isinstance(line, str) for line in script
        ):
            script = "\n".join(script)
        if not isinstance(script, str) or not script.strip():
            raise AppError(
                400,
                "bad-request",
                "a command request needs a non-empty 'script' "
                "(string or list of lines)",
            )
        return Response(200, self.sessions.run(params["name"], script))

    def handle_repair(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        batch, jobs, body = self._parse_repair(request)
        if body.get("async"):
            record = self.queue.submit(
                batch,
                {"batch": batch, "jobs": jobs, "overrides": body},
            )
            return Response(
                202,
                {
                    "job": record.to_dict(with_report=False),
                    "poll": f"/v1/jobs/{record.id}",
                },
            )
        return Response(200, self._run_manifest(batch, jobs, body))

    def handle_job_list(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        return Response(200, {"jobs": self.queue.list()})

    def handle_job_get(
        self, request: Request, params: Dict[str, str]
    ) -> Response:
        record = self.queue.get(params["id"])
        if record is None:
            raise AppError(
                404, "unknown-job", f"no job with id {params['id']!r}"
            )
        return Response(200, record.to_dict())


__all__ = [
    "AppError",
    "CLIENT_HEADER",
    "DEFAULT_MAX_BATCH_JOBS",
    "EXEMPT_HANDLERS",
    "MAX_BODY_BYTES",
    "ROUTES",
    "RepairApp",
    "Request",
    "Response",
    "ServerConfig",
]
