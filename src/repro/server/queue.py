"""The bounded async-repair queue behind ``202 Accepted``.

A client that does not want to hold a connection open for a whole
batch submits with ``"async": true``; the app enqueues the work here,
answers ``202`` with a job id, and the client polls
``/v1/jobs/{id}``.  The queue is the server's load-shedding point:

* **bounded depth** — at most ``max_pending`` batches queued; a submit
  past the bound is refused (the app answers ``503`` with
  ``Retry-After``) instead of growing an unbounded backlog the server
  would still be chewing through long after every client gave up;
* **dedicated dispatchers** — ``workers`` daemon threads drain the
  queue through the app's shared batch executor (scheduler + warm
  pool + result store), so async work and sync requests share one
  worker pool rather than fighting over the machine;
* **bounded history** — finished records are kept for polling, capped
  at ``max_records`` (oldest finished evicted first), because a
  long-lived server cannot keep every job it ever ran;
* **drain** — :meth:`drain` stops intake, lets running jobs finish,
  and marks still-queued jobs ``cancelled`` (a drain that insisted on
  finishing a full backlog would turn SIGTERM into minutes).
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

#: Default bound on queued (not yet running) batches.
DEFAULT_MAX_PENDING = 64

#: Default number of dispatcher threads.
DEFAULT_WORKERS = 2

#: Default cap on retained finished job records.
DEFAULT_MAX_RECORDS = 512

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

_FINISHED = (STATE_DONE, STATE_FAILED, STATE_CANCELLED)


class QueueRejected(Exception):
    """A submit refused by the queue; carries status + retry hint."""

    def __init__(
        self, status: int, code: str, detail: str, retry_after: float
    ) -> None:
        super().__init__(detail)
        self.status = status
        self.code = code
        self.detail = detail
        self.retry_after = retry_after


class JobRecord:
    """One async batch: identity, state machine, and its outcome."""

    def __init__(self, job_id: str, batch: str, work: Any) -> None:
        self.id = job_id
        self.batch = batch
        self.work = work
        self.state = STATE_QUEUED
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.report: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None

    def to_dict(self, with_report: bool = True) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "id": self.id,
            "batch": self.batch,
            "state": self.state,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            out["started_at"] = self.started_at
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.error is not None:
            out["error"] = self.error
        if with_report and self.report is not None:
            out["report"] = self.report
        return out


class JobQueue:
    """Bounded FIFO of async batches plus their dispatcher threads."""

    def __init__(
        self,
        execute: Callable[[Any], Dict[str, Any]],
        max_pending: int = DEFAULT_MAX_PENDING,
        workers: int = DEFAULT_WORKERS,
        max_records: int = DEFAULT_MAX_RECORDS,
    ) -> None:
        self._execute = execute
        self.max_pending = max(1, int(max_pending))
        self.worker_count = max(1, int(workers))
        self.max_records = max(self.max_pending, int(max_records))
        self._pending: Deque[JobRecord] = deque()
        self._records: Dict[str, JobRecord] = {}
        self._order: Deque[str] = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._running = 0
        self._draining = False
        self._threads: List[threading.Thread] = []
        #: Lifetime counters for the metrics endpoint.
        self.submitted_total = 0
        self.completed_total = 0
        self.rejected_total = 0

    # -- Lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the dispatcher threads (idempotent)."""
        if self._threads:
            return
        for index in range(self.worker_count):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-queue-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout_s: float = 30.0) -> Dict[str, int]:
        """Stop intake, cancel queued work, wait for running jobs.

        Returns ``{"cancelled": n, "unfinished": m}``; ``unfinished``
        counts jobs still running when the wait timed out.
        """
        deadline = time.monotonic() + max(0.0, timeout_s)
        with self._wake:
            self._draining = True
            cancelled = 0
            while self._pending:
                record = self._pending.popleft()
                record.state = STATE_CANCELLED
                record.error = "server draining"
                record.finished_at = time.time()
                cancelled += 1
            self._wake.notify_all()
            while self._running:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._idle.wait(remaining)
            return {"cancelled": cancelled, "unfinished": self._running}

    # -- Submission and polling --------------------------------------------

    def submit(self, batch: str, work: Any) -> JobRecord:
        """Enqueue one batch; raises :class:`QueueRejected` when full."""
        with self._wake:
            if self._draining:
                self.rejected_total += 1
                raise QueueRejected(
                    503, "draining", "server is draining", 30.0
                )
            if len(self._pending) >= self.max_pending:
                self.rejected_total += 1
                raise QueueRejected(
                    503,
                    "queue-full",
                    f"job queue is full ({self.max_pending} pending)",
                    # A full queue empties one dispatch at a time; a
                    # short constant hint beats a fake estimate.
                    1.0,
                )
            job_id = secrets.token_hex(8)
            record = JobRecord(job_id, batch, work)
            self._pending.append(record)
            self._records[job_id] = record
            self._order.append(job_id)
            self.submitted_total += 1
            self._evict_records()
            self._wake.notify()
            return record

    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def list(self) -> List[Dict[str, Any]]:
        with self._lock:
            records = [self._records[i] for i in self._order]
        return [r.to_dict(with_report=False) for r in records]

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def running(self) -> int:
        with self._lock:
            return self._running

    # -- Dispatchers -------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._wake:
                while not self._pending and not self._draining:
                    self._wake.wait()
                if not self._pending:
                    return  # draining and nothing left to run
                record = self._pending.popleft()
                record.state = STATE_RUNNING
                record.started_at = time.time()
                self._running += 1
            try:
                report = self._execute(record.work)
            except Exception as exc:  # noqa: BLE001 — a failed batch
                # must surface in its record, never kill the dispatcher
                record.error = f"{type(exc).__name__}: {exc}"
                record.state = STATE_FAILED
            else:
                record.report = report
                record.state = STATE_DONE
            finally:
                record.finished_at = time.time()
                record.work = None  # the manifest is no longer needed
                with self._lock:
                    self._running -= 1
                    self.completed_total += 1
                    self._idle.notify_all()

    def _evict_records(self) -> None:
        """Cap retained records, oldest *finished* first (lock held)."""
        while len(self._records) > self.max_records:
            for job_id in list(self._order):
                record = self._records.get(job_id)
                if record is None:
                    self._order.remove(job_id)
                    break
                if record.state in _FINISHED:
                    self._order.remove(job_id)
                    del self._records[job_id]
                    break
            else:
                return  # everything live is queued or running: keep all


__all__ = [
    "DEFAULT_MAX_PENDING",
    "DEFAULT_MAX_RECORDS",
    "DEFAULT_WORKERS",
    "JobQueue",
    "JobRecord",
    "QueueRejected",
    "STATE_CANCELLED",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RUNNING",
]
