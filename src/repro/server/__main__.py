"""``python -m repro.server`` — run the repair server.

Examples::

    python -m repro.server --port 8433 --workers 4
    python -m repro.server --port 0 --store /tmp/repro-store --quiet
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..service.scheduler import default_jobs
from ..service.store import default_store_dir
from .app import DEFAULT_MAX_BATCH_JOBS, ServerConfig
from .http import serve
from .queue import DEFAULT_MAX_PENDING, DEFAULT_WORKERS
from .ratelimit import DEFAULT_BURST, DEFAULT_RATE
from .sessions import DEFAULT_IDLE_TTL_S, DEFAULT_MAX_SESSIONS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve proof repair over HTTP/JSON.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8433,
        help="bind port (0 picks a free one; see the 'listening' line)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=max(default_jobs(), 4),
        metavar="N",
        help="warm-worker pool width (1 repairs in-process)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=f"result store directory (default: {default_store_dir()})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the result-store cache tier",
    )
    parser.add_argument(
        "--store-max-entries",
        type=int,
        default=None,
        metavar="N",
        help="bound the store to N records (LRU eviction)",
    )
    parser.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="warm-start workers and sessions from this snapshot pack",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=DEFAULT_MAX_SESSIONS,
        metavar="N",
        help="bound on live named sessions",
    )
    parser.add_argument(
        "--idle-ttl",
        type=float,
        default=DEFAULT_IDLE_TTL_S,
        metavar="S",
        help="evict sessions idle this long",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=DEFAULT_RATE,
        metavar="R",
        help="per-client sustained requests/second (0 disables)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=DEFAULT_BURST,
        metavar="B",
        help="per-client burst capacity",
    )
    parser.add_argument(
        "--queue-pending",
        type=int,
        default=DEFAULT_MAX_PENDING,
        metavar="N",
        help="bound on queued async batches (503 past it)",
    )
    parser.add_argument(
        "--queue-workers",
        type=int,
        default=DEFAULT_WORKERS,
        metavar="N",
        help="async dispatcher threads",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-job repair timeout",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retry budget for crashed workers",
    )
    parser.add_argument(
        "--max-batch-jobs",
        type=int,
        default=DEFAULT_MAX_BATCH_JOBS,
        metavar="N",
        help="largest accepted manifest",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress structured request logs",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store_dir=args.store,
        store=not args.no_store,
        store_max_entries=args.store_max_entries,
        snapshot=args.snapshot,
        max_sessions=args.max_sessions,
        idle_ttl_s=args.idle_ttl,
        rate=args.rate,
        burst=args.burst,
        queue_pending=args.queue_pending,
        queue_workers=args.queue_workers,
        timeout_s=args.timeout,
        retries=args.retries,
        max_batch_jobs=args.max_batch_jobs,
        quiet=args.quiet,
    )
    return serve(config)


if __name__ == "__main__":
    sys.exit(main())
