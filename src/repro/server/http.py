"""The HTTP front end: stdlib threading server over :class:`RepairApp`.

One ``ThreadingHTTPServer`` (a thread per connection, stdlib only)
whose request handler does exactly three things: read the request,
call :meth:`RepairApp.handle`, write the response.  Every routing,
backpressure, and error decision lives in :mod:`repro.server.app`
where it is unit-testable; this module owns only the socket-facing
concerns:

* **body bounds before read** — a ``Content-Length`` past the app's
  limit is refused without reading the body, so a hostile client
  cannot make a handler thread buffer gigabytes;
* **the listening line** — :func:`serve` prints one JSON line
  (``{"event": "listening", "port": N}``) to stdout once bound, so a
  harness that started the server with ``--port 0`` learns the real
  port without racing log output;
* **graceful drain** — SIGTERM/SIGINT flip the app into draining
  (health stays green, work is refused with 503), stop the accept
  loop, drain the queue and sessions, shut the worker pool down, and
  only then exit.  A second signal skips the grace and hard-kills the
  worker groups (:func:`repro.service.pool.emergency_shutdown`).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from ..service.pool import emergency_shutdown
from .app import MAX_BODY_BYTES, RepairApp, Request, Response, ServerConfig

#: Grace period for the drain before the exit (seconds).
DEFAULT_DRAIN_TIMEOUT_S = 30.0


class ReproHTTPServer(ThreadingHTTPServer):
    """The threading server plus a reference to its application."""

    daemon_threads = True
    allow_reuse_address = True
    # The default listen backlog (5) resets connections the moment a
    # few hundred clients connect at once; the server is sized for
    # hundreds of concurrent clients, so queue their connects instead.
    request_queue_size = 512

    def __init__(
        self, address: Tuple[str, int], app: RepairApp
    ) -> None:
        super().__init__(address, _Handler)
        self.app = app


class _Handler(BaseHTTPRequestHandler):
    """Read → ``app.handle`` → write; nothing else."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-server"
    sys_version = ""

    # The app writes structured request logs itself; the default
    # per-request stderr line would just duplicate them unsorted.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    @property
    def _app(self) -> RepairApp:
        server = self.server
        assert isinstance(server, ReproHTTPServer)
        return server.app

    def _read_body(self) -> Optional[bytes]:
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length else 0
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            self._write(
                Response(
                    413,
                    {
                        "error": {
                            "code": "body-too-large",
                            "detail": (
                                f"request body exceeds "
                                f"{MAX_BODY_BYTES} bytes"
                            ),
                        }
                    },
                    {"Connection": "close"},
                )
            )
            return None
        return self.rfile.read(length) if length > 0 else b""

    def _write(self, response: Response) -> None:
        payload = response.encoded()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # the client hung up; its loss

    def _dispatch(self) -> None:
        body = self._read_body()
        if body is None:
            return
        request = Request(
            method=self.command,
            path=self.path.split("?", 1)[0],
            headers={
                key.lower(): value for key, value in self.headers.items()
            },
            body=body,
            client=self.client_address[0],
        )
        try:
            response = self._app.handle(request)
        except Exception as exc:  # noqa: BLE001 — last-resort guard;
            # the app's own 500 path normally catches everything.
            response = Response(
                500,
                {
                    "error": {
                        "code": "internal-error",
                        "detail": f"{type(exc).__name__}: {exc}",
                    }
                },
            )
        self._write(response)

    do_GET = _dispatch
    do_POST = _dispatch
    do_DELETE = _dispatch
    do_PUT = _dispatch
    do_PATCH = _dispatch


def serve(
    config: Optional[ServerConfig] = None,
    ready_stream: Any = None,
) -> int:
    """Run the server until SIGTERM/SIGINT; returns the exit status."""
    config = config or ServerConfig()
    app = RepairApp(config)
    app.start()
    server = ReproHTTPServer((config.host, config.port), app)
    host, port = server.server_address[:2]
    out = ready_stream if ready_stream is not None else sys.stdout
    out.write(
        json.dumps(
            {"event": "listening", "host": host, "port": port},
            sort_keys=True,
        )
        + "\n"
    )
    out.flush()

    stop = threading.Event()
    signals_seen = {"count": 0}

    def _on_signal(signum: int, frame: Any) -> None:
        signals_seen["count"] += 1
        if signals_seen["count"] > 1:
            # Second signal: the operator means it.  Kill the worker
            # groups and leave; no process may outlive this one.
            emergency_shutdown()
            os._exit(128 + signum)
        app.begin_drain()
        stop.set()
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(
            target=server.shutdown, name="repro-server-stop", daemon=True
        ).start()

    installed = (
        threading.current_thread() is threading.main_thread()
    )
    if installed:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        stats = app.drain(DEFAULT_DRAIN_TIMEOUT_S)
        emergency_shutdown()  # belt and braces: nothing may leak
        app.log_event(
            {
                "event": "drained",
                "cancelled": stats.get("cancelled", 0),
                "unfinished": stats.get("unfinished", 0),
                "sessions_closed": stats.get("sessions_closed", 0),
            }
        )
    return 0


__all__ = [
    "DEFAULT_DRAIN_TIMEOUT_S",
    "ReproHTTPServer",
    "serve",
]
