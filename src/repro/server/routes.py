"""The route table: method + path pattern -> handler name.

Patterns are segment-wise: a literal segment must match exactly, a
``{param}`` segment captures one non-empty path component (no slashes).
Matching distinguishes *unknown path* (404) from *known path, wrong
method* (405 with an ``Allow`` header) — a front end that answers 404
to a ``GET`` on a POST-only route sends clients hunting for typos that
are not there.

The table itself lives in :mod:`repro.server.app` next to the handlers
it names; this module is only the matching machinery, so it is testable
without an application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Route:
    """One route: an HTTP method, a segment pattern, a handler name."""

    method: str
    pattern: str
    handler: str

    def segments(self) -> Tuple[str, ...]:
        return tuple(s for s in self.pattern.split("/") if s)


@dataclass(frozen=True)
class Match:
    """A resolved route plus its captured path parameters."""

    handler: str
    params: Dict[str, str]


class RouteError(Exception):
    """No route matched; carries the HTTP status to answer with."""

    def __init__(self, status: int, detail: str, allow: Sequence[str] = ()):
        super().__init__(detail)
        self.status = status
        self.detail = detail
        #: Methods that *would* match the path (the 405 ``Allow`` header).
        self.allow = tuple(allow)


def _match_segments(
    pattern: Tuple[str, ...], path: Tuple[str, ...]
) -> Optional[Dict[str, str]]:
    if len(pattern) != len(path):
        return None
    params: Dict[str, str] = {}
    for want, got in zip(pattern, path):
        if want.startswith("{") and want.endswith("}"):
            params[want[1:-1]] = got
        elif want != got:
            return None
    return params


class Router:
    """Match ``(method, path)`` against an ordered route table."""

    def __init__(self, routes: Sequence[Route]) -> None:
        self.routes = list(routes)

    def resolve(self, method: str, path: str) -> Match:
        """The matching route, or :class:`RouteError` (404/405)."""
        segments = tuple(s for s in path.split("/") if s)
        allowed: List[str] = []
        for route in self.routes:
            params = _match_segments(route.segments(), segments)
            if params is None:
                continue
            if route.method == method:
                return Match(handler=route.handler, params=params)
            allowed.append(route.method)
        if allowed:
            raise RouteError(
                405,
                f"method {method} not allowed for {path!r}",
                allow=sorted(set(allowed)),
            )
        raise RouteError(404, f"no route for {path!r}")


__all__ = ["Match", "Route", "RouteError", "Router"]
