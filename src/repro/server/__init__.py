"""Repair-as-a-service: the HTTP/JSON front end over the repair engine.

The server multiplexes two kinds of work over one process:

* **named persistent sessions** — long-lived vernacular
  :class:`~repro.commands.CommandSession` instances addressed by name
  (``POST /v1/sessions``, ``POST /v1/sessions/{name}/command``), for
  interactive clients that want environment boot paid once;
* **stateless batch repair** — ``POST /v1/repair`` accepts the same
  manifest schema as ``python -m repro.service`` and schedules it onto
  a shared long-lived warm-worker pool with the content-addressed
  result store as a cache tier; ``"async": true`` turns the call into
  ``202`` + ``GET /v1/jobs/{id}`` polling behind a bounded queue.

Everything is stdlib (``http.server`` threading); see
:mod:`repro.server.app` for the transport-independent application and
``python -m repro.server --help`` for the knobs.
"""

from .app import (
    AppError,
    RepairApp,
    Request,
    Response,
    ServerConfig,
)
from .http import ReproHTTPServer, serve
from .queue import JobQueue, QueueRejected
from .ratelimit import RateLimiter
from .routes import Route, RouteError, Router
from .sessions import SessionManager, SessionRejected

__all__ = [
    "AppError",
    "JobQueue",
    "QueueRejected",
    "RateLimiter",
    "RepairApp",
    "ReproHTTPServer",
    "Request",
    "Response",
    "Route",
    "RouteError",
    "Router",
    "ServerConfig",
    "serve",
    "SessionManager",
    "SessionRejected",
]
