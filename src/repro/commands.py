"""The command front end: the plugin's vernacular, as text.

Pumpkin Pi is driven from Coq by vernacular commands::

    Repair Old.list New.list in rev_app_distr.
    Repair module Old.list New.list.
    Configure Old.list New.list { ... }.

:class:`CommandSession` provides the same surface for this reproduction.
Commands are plain strings; configurations found by ``Configure`` (or
implicitly by ``Repair``) are cached per type pair, and the transformed
subterm cache is shared across commands — matching the interactive
workflow the industrial proof engineer used (Section 6.4).

Supported commands::

    Configure <A> <B> [mapping <j0> <j1> ...]
    Repair <A> <B> in <name> [as <new_name>]
    Repair module <A> <B> [prefix <Prefix>]
    Repair Batch <A> <B> in <name> <name> ... [prefix <Prefix>]
        [impact | no-impact]
    Decompile <name>
    Replay <name>
    Analyze [<name>]
    Remove <A>

``Repair Batch`` schedules several targets through the
:mod:`repro.service` engine: jobs are ordered over the environment's
reverse-dependency graph, a failing target skips (rather than poisons)
its dependents, and when the session has a result ``store`` attached,
previously repaired targets replay from cache without redoing any
transformation work.  A trailing ``impact`` token (or
``$REPRO_IMPACT=1``) prunes targets a change-impact plan certifies
unaffected; ``no-impact`` runs everything and differentially asserts
the pruned set would have been byte-identical.

``Repair`` uses the automatic workflow of Figure 6 (left): when no
configuration was set up for the pair, the search procedures run first.
``Analyze`` runs the static-analysis passes (:mod:`repro.analysis`):
with a name, the scope checker over that constant plus the tactic
linter over its decompiled script; without, the scope checker over the
whole environment.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .analysis.diagnostics import Diagnostic, Severity
from .analysis.scope import check_constant, check_environment
from .analysis.tacticlint import lint_script
from .core.caching import TransformCache
from .core.config import Configuration
from .core.repair import RepairResult, RepairSession
from .core.search import configure
from .decompile.decompiler import decompile_to_script, print_script
from .decompile.run import run_script
from .kernel.env import Environment
from .obs import span


class CommandError(Exception):
    """Raised for unknown or malformed commands."""


@dataclass
class CommandResult:
    """What a command produced, plus a human-readable summary."""

    command: str
    summary: str
    results: List[RepairResult] = field(default_factory=list)
    config: Optional[Configuration] = None
    text: Optional[str] = None
    #: The batch report when the command was ``Repair Batch``.
    report: Optional[object] = None

    def __str__(self) -> str:
        return self.summary


class CommandSession:
    """An interactive session of repair commands over one environment."""

    def __init__(self, env: Environment, store=None) -> None:
        self.env = env
        self.cache = TransformCache()
        self._configs: Dict[Tuple[str, str], Configuration] = {}
        self._sessions: Dict[Tuple[str, str], RepairSession] = {}
        self.history: List[CommandResult] = []
        #: Optional :class:`repro.service.ResultStore` backing
        #: ``Repair Batch`` (no persistence when unset).
        self.store = store

    # -- Public API -------------------------------------------------------------

    def execute(self, command: str) -> CommandResult:
        """Parse and run one command; the result is also recorded."""
        words = shlex.split(command.strip().rstrip("."))
        if not words:
            raise CommandError("empty command")
        head = words[0]
        # Each command gets its own span, so kernel-counter deltas are
        # attributed per command rather than accumulating across the
        # session.
        with span("command", category="command", command=command.strip()):
            if head == "Configure":
                result = self._configure(words[1:], command)
            elif head == "Repair" and len(words) > 1 and words[1] == "module":
                result = self._repair_module(words[2:], command)
            elif head == "Repair" and len(words) > 1 and words[1] == "Batch":
                result = self._repair_batch(words[2:], command)
            elif head == "Repair":
                result = self._repair(words[1:], command)
            elif head == "Decompile":
                result = self._decompile(words[1:], command)
            elif head == "Replay":
                result = self._replay(words[1:], command)
            elif head == "Analyze":
                result = self._analyze(words[1:], command)
            elif head == "Remove":
                result = self._remove(words[1:], command)
            else:
                raise CommandError(f"unknown command {head!r}")
        self.history.append(result)
        return result

    def run(self, script: str) -> List[CommandResult]:
        """Run a batch of commands, one per non-empty line.

        A failing command reports its 1-based script line number, so an
        error deep in a long vernacular file points at the right line.
        """
        results = []
        for lineno, line in enumerate(script.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("(*"):
                continue
            try:
                results.append(self.execute(line))
            except CommandError as exc:
                raise CommandError(f"line {lineno}: {exc}") from exc
        return results

    # -- Individual commands ------------------------------------------------------

    def _get_config(
        self, a: str, b: str, mapping: Optional[Tuple[int, ...]] = None
    ) -> Configuration:
        key = (a, b)
        if key not in self._configs:
            self._configs[key] = configure(self.env, a, b, mapping=mapping)
        return self._configs[key]

    def _get_session(self, a: str, b: str, rename) -> RepairSession:
        key = (a, b)
        if key not in self._sessions:
            self._sessions[key] = RepairSession(
                self.env,
                self._get_config(a, b),
                old_globals=[a],
                rename=rename,
                cache=self.cache,
            )
        return self._sessions[key]

    def _configure(self, words: List[str], command: str) -> CommandResult:
        if len(words) < 2:
            raise CommandError("Configure needs two type names")
        a, b = words[0], words[1]
        mapping: Optional[Tuple[int, ...]] = None
        if len(words) > 2:
            if words[2] != "mapping":
                raise CommandError(
                    f"expected 'mapping', got {words[2]!r}"
                )
            mapping = tuple(int(w) for w in words[3:])
        config = configure(self.env, a, b, mapping=mapping)
        self._configs[(a, b)] = config
        return CommandResult(
            command=command,
            summary=f"configured {a} ~= {b}"
            + (f" with mapping {mapping}" if mapping else ""),
            config=config,
        )

    def _repair(self, words: List[str], command: str) -> CommandResult:
        # Repair <A> <B> in <name> [as <new>]
        if len(words) < 4 or words[2] != "in":
            raise CommandError("usage: Repair <A> <B> in <name> [as <new>]")
        a, b, name = words[0], words[1], words[3]
        new_name = None
        if len(words) >= 6 and words[4] == "as":
            new_name = words[5]
        session = self._get_session(a, b, rename=lambda n: f"{n}'")
        result = session.repair_constant(name, new_name=new_name)
        return CommandResult(
            command=command,
            summary=f"repaired {result.old_name} as {result.new_name} "
            f"({len(session.results)} constant(s) in session)",
            results=[result],
            config=session.config,
        )

    def _repair_module(self, words: List[str], command: str) -> CommandResult:
        if len(words) < 2:
            raise CommandError("usage: Repair module <A> <B> [prefix <P>]")
        a, b = words[0], words[1]
        prefix = None
        if len(words) >= 4 and words[2] == "prefix":
            prefix = words[3]
        rename = (
            (lambda n: f"{prefix}.{n}") if prefix else (lambda n: f"{n}'")
        )
        session = self._get_session(a, b, rename=rename)
        results = session.repair_module()
        return CommandResult(
            command=command,
            summary=f"repaired {len(results)} constants across {a} ~= {b}",
            results=results,
            config=session.config,
        )

    def _repair_batch(self, words: List[str], command: str) -> CommandResult:
        # Repair Batch <A> <B> in <name>... [prefix <P>] [impact|no-impact]
        usage = (
            "usage: Repair Batch <A> <B> in <name>... [prefix <P>] "
            "[impact|no-impact]"
        )
        if len(words) < 4 or words[2] != "in":
            raise CommandError(usage)
        a, b = words[0], words[1]
        targets = words[3:]
        from .service.planner import (
            MODE_CHECK,
            MODE_PRUNE,
            default_impact_mode,
        )

        impact_mode = default_impact_mode()
        if targets and targets[-1] in ("impact", "no-impact"):
            impact_mode = (
                MODE_PRUNE if targets[-1] == "impact" else MODE_CHECK
            )
            targets = targets[:-1]
        prefix = None
        if len(targets) >= 2 and targets[-2] == "prefix":
            prefix = targets[-1]
            targets = targets[:-2]
        if not targets:
            raise CommandError(usage)
        from .service.job import JobError
        from .service.live import live_jobs, run_live_batch
        from .service.planner import build_batch_impact, verify_impact
        from .service.scheduler import BatchOptions
        from .service.worker import make_rename

        rename_spec = (
            {"kind": "prefix", "value": f"{prefix}."}
            if prefix
            else {"kind": "suffix", "value": "'"}
        )
        session = self._get_session(a, b, rename=make_rename(rename_spec))
        try:
            jobs = live_jobs(self.env, a, b, targets, rename=rename_spec)
            impact = (
                build_batch_impact(jobs, env=self.env)
                if impact_mode is not None
                else None
            )
            report = run_live_batch(
                session,
                jobs,
                BatchOptions(
                    jobs=1,
                    store=self.store,
                    impact=impact if impact_mode == MODE_PRUNE else None,
                ),
                batch=f"{a}~{b}",
            )
        except JobError as exc:
            raise CommandError(str(exc)) from exc
        if impact is not None and impact_mode == MODE_CHECK:
            violations = verify_impact(report, impact)
            if violations:
                raise CommandError(
                    "impact soundness violation(s):\n"
                    + "\n".join(violations)
                )
        results = [
            session.results[o.job.target]
            for o in report.outcomes
            if o.ok and o.job.target in session.results
        ]
        counts = ", ".join(
            f"{n} {status}" for status, n in sorted(report.counts.items())
        )
        return CommandResult(
            command=command,
            summary=f"batch {a} ~= {b}: {len(report.outcomes)} job(s) — "
            f"{counts}",
            results=results,
            config=session.config,
            text=report.render_table(),
            report=report,
        )

    def _decompile(self, words: List[str], command: str) -> CommandResult:
        if len(words) != 1:
            raise CommandError("usage: Decompile <name>")
        name = words[0]
        decl = self.env.constant(name)
        if decl.body is None:
            raise CommandError(f"{name!r} has no body to decompile")
        script = decompile_to_script(self.env, decl.body)
        text = print_script(script, name=name)
        return CommandResult(
            command=command,
            summary=f"decompiled {name} "
            f"({len(text.splitlines())} lines of script)",
            text=text,
        )

    def _replay(self, words: List[str], command: str) -> CommandResult:
        if len(words) != 1:
            raise CommandError("usage: Replay <name>")
        name = words[0]
        decl = self.env.constant(name)
        if decl.body is None:
            raise CommandError(f"{name!r} has no body to replay")
        script = decompile_to_script(self.env, decl.body)
        run_script(self.env, decl.type, script)
        return CommandResult(
            command=command,
            summary=f"decompiled script for {name} replays and checks",
            text=print_script(script, name=name),
        )

    def _analyze(self, words: List[str], command: str) -> CommandResult:
        if len(words) > 1:
            raise CommandError("usage: Analyze [<name>]")
        diagnostics: List[Diagnostic]
        if words:
            name = words[0]
            decl = self.env.constant(name)
            diagnostics = check_constant(self.env, decl)
            if decl.body is not None:
                script = decompile_to_script(self.env, decl.body)
                diagnostics.extend(
                    lint_script(self.env, script, subject=name)
                )
            what = name
        else:
            diagnostics = check_environment(self.env)
            what = "environment"
        errors = sum(
            1 for d in diagnostics if d.severity is Severity.ERROR
        )
        text = "\n".join(d.render() for d in diagnostics) or None
        return CommandResult(
            command=command,
            summary=f"analyzed {what}: {errors} error(s), "
            f"{len(diagnostics) - errors} other finding(s)",
            text=text,
        )

    def _remove(self, words: List[str], command: str) -> CommandResult:
        if len(words) != 1:
            raise CommandError("usage: Remove <A>")
        name = words[0]
        self.env.remove(name)
        rect = f"{name}_rect"
        if self.env.has_constant(rect):
            self.env.remove(rect)
        return CommandResult(
            command=command, summary=f"removed {name} from the environment"
        )
