"""A goal-directed proof engine over the CIC_omega kernel.

A :class:`Proof` tracks a tree of goals.  Tactics (from
:mod:`repro.tactics.tactics`) transform the focused goal into subgoals and
record a *builder* that assembles the proof term for the goal from the
proof terms of its subgoals.  :meth:`Proof.qed` composes the builders and
type checks the result against the original statement, so a completed
proof is correct by kernel checking, exactly as in Coq.

This is the substrate that lets the reproduction *execute* the tactic
scripts produced by the decompiler (Section 5), turning the paper's
usability claim into a checkable property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..kernel.context import Context
from ..kernel.env import Environment
from ..kernel.term import Term
from ..kernel.typecheck import check


class TacticError(Exception):
    """Raised when a tactic does not apply to the focused goal."""


@dataclass(frozen=True)
class Goal:
    """One open goal: a local context and a target type."""

    ctx: Context
    target: Term

    def hypothesis_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.ctx)


Builder = Callable[[Sequence[Term]], Term]

# A tactic maps a goal to (subgoals, builder).
Tactic = Callable[[Environment, Goal], Tuple[List[Goal], Builder]]


@dataclass
class _Node:
    goal: Goal
    children: List["_Node"] = field(default_factory=list)
    builder: Optional[Builder] = None

    @property
    def closed(self) -> bool:
        return self.builder is not None and all(
            child.closed for child in self.children
        )

    def build(self) -> Term:
        if self.builder is None:
            raise TacticError("cannot build: proof has open goals")
        return self.builder([child.build() for child in self.children])


class Proof:
    """An in-progress proof of a closed statement."""

    def __init__(self, env: Environment, statement: Term) -> None:
        from ..kernel.typecheck import infer_sort

        infer_sort(env, Context.empty(), statement)
        self.env = env
        self.statement = statement
        self._root = _Node(Goal(Context.empty(), statement))
        self._open: List[_Node] = [self._root]

    # -- Introspection -------------------------------------------------------

    @property
    def goals(self) -> List[Goal]:
        """All open goals, focused goal first."""
        return [node.goal for node in self._open]

    @property
    def focused(self) -> Goal:
        if not self._open:
            raise TacticError("no goals left")
        return self._open[0].goal

    @property
    def complete(self) -> bool:
        return not self._open

    def show(self) -> str:
        """Render the focused goal Coq-style (hypotheses over a rule)."""
        from ..kernel.pretty import pretty

        if not self._open:
            return "No more goals."
        goal = self.focused
        lines = []
        # Print outermost hypotheses first.
        entries = list(goal.ctx.entries)
        for i in reversed(range(len(entries))):
            name = goal.ctx.name_of(i)
            ty = goal.ctx.type_of(i)
            sub = Context(tuple(entries[i + 1 :]))
            lines.append(f"  {name} : {pretty(ty, ctx=goal.ctx, env=self.env)}")
        lines.append("  " + "=" * 40)
        lines.append(f"  {pretty(goal.target, ctx=goal.ctx, env=self.env)}")
        extra = len(self._open) - 1
        header = f"1 goal ({extra} more)" if extra else "1 goal"
        return header + "\n" + "\n".join(lines)

    # -- Tactic application ---------------------------------------------------

    def run(self, tactic: Tactic) -> "Proof":
        """Apply ``tactic`` to the focused goal."""
        if not self._open:
            raise TacticError("no goals left")
        node = self._open[0]
        subgoals, builder = tactic(self.env, node.goal)
        node.children = [_Node(goal) for goal in subgoals]
        node.builder = builder
        self._open = node.children + self._open[1:]
        return self

    def run_all(self, *tactics: Tactic) -> "Proof":
        for tactic in tactics:
            self.run(tactic)
        return self

    def focus_next(self) -> "Proof":
        """Rotate the focused goal to the back."""
        if len(self._open) > 1:
            self._open = self._open[1:] + self._open[:1]
        return self

    # -- Completion -----------------------------------------------------------

    def qed(self) -> Term:
        """Assemble and kernel-check the final proof term."""
        if self._open:
            raise TacticError(
                f"proof is not complete: {len(self._open)} open goal(s)"
            )
        term = self._root.build()
        check(self.env, Context.empty(), term, self.statement)
        return term


def prove(env: Environment, statement: Term, *tactics: Tactic) -> Term:
    """Prove ``statement`` by running ``tactics`` in order; return the term."""
    proof = Proof(env, statement)
    for tactic in tactics:
        proof.run(tactic)
    return proof.qed()
