"""Tactic engine and tactics for the object language."""

from .engine import Goal, Proof, TacticError, prove
from . import tactics

__all__ = ["Goal", "Proof", "TacticError", "prove", "tactics"]
