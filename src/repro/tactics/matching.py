"""First-order pattern matching for the ``apply`` tactic.

Matches a *pattern* — the conclusion of a lemma, containing de Bruijn
variables for the lemma's Pi telescope — against a concrete goal,
producing an assignment of telescope variables to terms.  Matching is
first order (pattern variables must occur as heads of zero-argument
spines) and reduces with whnf when structural comparison fails, which is
exactly the fragment needed to apply the stdlib lemmas and the terms the
decompiler emits.
"""

from __future__ import annotations

from typing import Dict

from ..kernel.convert import conv
from ..kernel.env import Environment
from ..kernel.reduce import whnf
from ..kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    free_rels,
    lift,
    unfold_app,
)


class MatchFailure(Exception):
    """Raised when the pattern does not match the target."""


def match_conclusion(
    env: Environment,
    pattern: Term,
    n_vars: int,
    target: Term,
) -> Dict[int, Term]:
    """Match ``pattern`` (with ``n_vars`` pattern variables) to ``target``.

    Pattern variables are ``Rel(0) .. Rel(n_vars - 1)`` in ``pattern``;
    other free variables refer to the shared ambient context and appear in
    the pattern shifted up by ``n_vars``.  Returns a map from pattern
    variable index to the matched term (in the ambient context).
    """
    assign: Dict[int, Term] = {}
    _match(env, pattern, target, n_vars, 0, assign)
    return assign


def _match(
    env: Environment,
    pattern: Term,
    target: Term,
    n_vars: int,
    cutoff: int,
    assign: Dict[int, Term],
) -> None:
    # Pattern variable?
    if isinstance(pattern, Rel) and cutoff <= pattern.index < cutoff + n_vars:
        var = pattern.index - cutoff
        rels = free_rels(target)
        if any(r < cutoff for r in rels):
            raise MatchFailure(
                "matched value would capture a locally bound variable"
            )
        value = lift(target, -cutoff, 0) if cutoff else target
        if var in assign:
            if not conv(env, assign[var], value):
                raise MatchFailure(
                    f"conflicting assignment for pattern variable {var}"
                )
        else:
            assign[var] = value
        return

    snapshot = dict(assign)
    try:
        if _match_structural(env, pattern, target, n_vars, cutoff, assign):
            return
    except MatchFailure:
        # A deep structural mismatch may disappear after reduction (e.g.
        # a beta redex hiding a constructor); restore and retry below.
        assign.clear()
        assign.update(snapshot)

    # Retry after weak-head reduction of both sides.
    pattern_w = whnf(env, pattern)
    target_w = whnf(env, target)
    if pattern_w != pattern or target_w != target:
        _match(env, pattern_w, target_w, n_vars, cutoff, assign)
        return
    raise MatchFailure(f"pattern {pattern!r} does not match {target!r}")


def _match_structural(
    env: Environment,
    pattern: Term,
    target: Term,
    n_vars: int,
    cutoff: int,
    assign: Dict[int, Term],
) -> bool:
    """Try node-by-node matching; return False to trigger reduction."""
    if isinstance(pattern, Rel):
        # Ambient or locally bound variable (pattern vars handled earlier).
        if pattern.index >= cutoff + n_vars:
            expected = Rel(pattern.index - n_vars)
        else:
            expected = pattern  # locally bound
        if isinstance(target, Rel) and target.index == expected.index:
            return True
        return False

    if isinstance(pattern, Sort):
        return isinstance(target, Sort) and pattern.level == target.level

    if isinstance(pattern, (Const, Ind)):
        return type(pattern) is type(target) and pattern.name == target.name

    if isinstance(pattern, Constr):
        return (
            isinstance(target, Constr)
            and pattern.ind == target.ind
            and pattern.index == target.index
        )

    if isinstance(pattern, App):
        if not isinstance(target, App):
            return False
        phead, pargs = unfold_app(pattern)
        thead, targs = unfold_app(target)
        if isinstance(phead, Rel) and cutoff <= phead.index < cutoff + n_vars:
            # Higher-order occurrence.  First try instantiating (every
            # pattern variable already assigned) and comparing up to
            # conversion; otherwise fall back to rigid decomposition
            # (``f x =~ g y`` solved by ``f =~ g``, ``x =~ y``), which is
            # what makes ``apply f_equal`` work, as in Coq.
            try:
                instantiated = instantiate_pattern(
                    pattern, assign, n_vars, cutoff
                )
                if conv(env, instantiated, target):
                    return True
            except MatchFailure:
                pass
            if len(pargs) == len(targs):
                snapshot = dict(assign)
                try:
                    _match(env, phead, thead, n_vars, cutoff, assign)
                    for parg, targ in zip(pargs, targs):
                        _match(env, parg, targ, n_vars, cutoff, assign)
                    return True
                except MatchFailure:
                    assign.clear()
                    assign.update(snapshot)
            return False
        if len(pargs) != len(targs):
            return False
        _match(env, phead, thead, n_vars, cutoff, assign)
        for parg, targ in zip(pargs, targs):
            _match(env, parg, targ, n_vars, cutoff, assign)
        return True

    if isinstance(pattern, Pi) and isinstance(target, Pi):
        _match(env, pattern.domain, target.domain, n_vars, cutoff, assign)
        _match(
            env, pattern.codomain, target.codomain, n_vars, cutoff + 1, assign
        )
        return True

    if isinstance(pattern, Lam) and isinstance(target, Lam):
        _match(env, pattern.domain, target.domain, n_vars, cutoff, assign)
        _match(env, pattern.body, target.body, n_vars, cutoff + 1, assign)
        return True

    if isinstance(pattern, Elim) and isinstance(target, Elim):
        if pattern.ind != target.ind or len(pattern.cases) != len(target.cases):
            return False
        _match(env, pattern.motive, target.motive, n_vars, cutoff, assign)
        for pcase, tcase in zip(pattern.cases, target.cases):
            _match(env, pcase, tcase, n_vars, cutoff, assign)
        _match(env, pattern.scrut, target.scrut, n_vars, cutoff, assign)
        return True

    return False


def instantiate_pattern(
    pattern: Term, assign: Dict[int, Term], n_vars: int, cutoff: int = 0
) -> Term:
    """Substitute assigned pattern variables, yielding a target-side term.

    Raises :class:`MatchFailure` when an unassigned pattern variable is
    encountered.
    """
    if isinstance(pattern, Rel):
        if cutoff <= pattern.index < cutoff + n_vars:
            var = pattern.index - cutoff
            if var not in assign:
                raise MatchFailure(f"pattern variable {var} is unassigned")
            return lift(assign[var], cutoff)
        if pattern.index >= cutoff + n_vars:
            return Rel(pattern.index - n_vars)
        return pattern
    if isinstance(pattern, (Sort, Const, Ind, Constr)):
        return pattern
    if isinstance(pattern, App):
        return App(
            instantiate_pattern(pattern.fn, assign, n_vars, cutoff),
            instantiate_pattern(pattern.arg, assign, n_vars, cutoff),
        )
    if isinstance(pattern, Lam):
        return Lam(
            pattern.name,
            instantiate_pattern(pattern.domain, assign, n_vars, cutoff),
            instantiate_pattern(pattern.body, assign, n_vars, cutoff + 1),
        )
    if isinstance(pattern, Pi):
        return Pi(
            pattern.name,
            instantiate_pattern(pattern.domain, assign, n_vars, cutoff),
            instantiate_pattern(pattern.codomain, assign, n_vars, cutoff + 1),
        )
    if isinstance(pattern, Elim):
        return Elim(
            pattern.ind,
            instantiate_pattern(pattern.motive, assign, n_vars, cutoff),
            tuple(
                instantiate_pattern(c, assign, n_vars, cutoff)
                for c in pattern.cases
            ),
            instantiate_pattern(pattern.scrut, assign, n_vars, cutoff),
        )
    raise MatchFailure(f"instantiate_pattern: unknown term {pattern!r}")
