"""The tactic set: Qtac (Figure 13) scaled up to a usable Ltac subset.

Each tactic is a function from ``(env, goal)`` to ``(subgoals, builder)``,
usually produced by a combinator taking tactic arguments.  The set covers
what the decompiler emits (Section 5) — ``intro``, ``induction``,
``rewrite``, ``symmetry``, ``apply``, ``split``, ``left``, ``right`` —
plus the staples needed to write the standard library's proofs:
``exact``, ``assumption``, ``reflexivity``, ``simpl``, ``exists_``,
``auto``, and ``constructor``.

Term arguments can be given as strings in the surface syntax; they are
parsed in the goal's local context.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..kernel.convert import conv
from ..kernel.env import Environment
from ..kernel.inductive import case_type
from ..kernel.reduce import nf, whnf
from ..kernel.term import (
    App,
    Const,
    Constr,
    Sort,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Term,
    abstract_term,
    lift,
    mk_app,
    mk_lams,
    occurs_rel,
    subst,
    unfold_app,
    unfold_pis,
)
from ..kernel.typecheck import check, infer
from .engine import Goal, TacticError
from .matching import MatchFailure, match_conclusion

TermLike = Union[Term, str]


def _resolve(env: Environment, goal: Goal, term: TermLike) -> Term:
    """Parse a string argument in the goal's context, or pass a term through."""
    if isinstance(term, Term):
        return term
    from ..syntax.parser import parse_in

    bound = tuple(name for name, _ in goal.ctx.entries)
    return parse_in(env, term, bound)


def _hyp_index(goal: Goal, hyp: Union[int, str]) -> int:
    if isinstance(hyp, int):
        return hyp
    for i, (name, _) in enumerate(goal.ctx.entries):
        if name == hyp:
            return i
    raise TacticError(f"no hypothesis named {hyp!r}")


# ---------------------------------------------------------------------------
# Introduction
# ---------------------------------------------------------------------------


def intro(name: Optional[str] = None):
    """Introduce one Pi binder as a hypothesis."""

    def tactic(env: Environment, goal: Goal):
        target = whnf(env, goal.target)
        if not isinstance(target, Pi):
            raise TacticError("intro: goal is not a product")
        hint = name or (target.name if target.name != "_" else "H")
        fresh = goal.ctx.fresh_name(hint)
        subgoal = Goal(goal.ctx.push(fresh, target.domain), target.codomain)

        def builder(subproofs: Sequence[Term]) -> Term:
            return Lam(fresh, target.domain, subproofs[0])

        return [subgoal], builder

    return tactic


def intros(*names: str):
    """Introduce several binders (all remaining ones when no names given)."""

    def tactic(env: Environment, goal: Goal):
        collected: List[Tuple[str, Term]] = []
        ctx = goal.ctx
        target = whnf(env, goal.target)
        todo = list(names)
        while isinstance(target, Pi) and (todo or not names):
            hint = todo.pop(0) if todo else (
                target.name if target.name != "_" else "H"
            )
            fresh = ctx.fresh_name(hint)
            collected.append((fresh, target.domain))
            ctx = ctx.push(fresh, target.domain)
            target = whnf(env, target.codomain)
            if names and not todo:
                break
        if names and todo:
            raise TacticError("intros: not enough products in the goal")
        if not collected:
            raise TacticError("intros: nothing to introduce")
        subgoal = Goal(ctx, target)

        def builder(subproofs: Sequence[Term]) -> Term:
            return mk_lams(collected, subproofs[0])

        return [subgoal], builder

    return tactic


# ---------------------------------------------------------------------------
# Closing tactics
# ---------------------------------------------------------------------------


def exact(term: TermLike):
    """Close the goal with an explicit proof term."""

    def tactic(env: Environment, goal: Goal):
        resolved = _resolve(env, goal, term)
        check(env, goal.ctx, resolved, goal.target)

        def builder(_subproofs: Sequence[Term]) -> Term:
            return resolved

        return [], builder

    return tactic


def assumption():
    """Close the goal with a hypothesis of convertible type."""

    def tactic(env: Environment, goal: Goal):
        for i in range(len(goal.ctx)):
            if conv(env, goal.ctx.type_of(i), goal.target):
                proof = Rel(i)

                def builder(_subproofs: Sequence[Term], p=proof) -> Term:
                    return p

                return [], builder
        raise TacticError("assumption: no matching hypothesis")

    return tactic


def reflexivity():
    """Close an equality goal whose sides are convertible."""

    def tactic(env: Environment, goal: Goal):
        target = whnf(env, goal.target)
        head, args = unfold_app(target)
        if not (isinstance(head, Ind) and head.name == "eq" and len(args) == 3):
            raise TacticError("reflexivity: goal is not an equality")
        ty, lhs, rhs = args
        if not conv(env, lhs, rhs):
            raise TacticError(
                "reflexivity: sides are not convertible"
            )
        proof = Constr("eq", 0).app(ty, lhs)

        def builder(_subproofs: Sequence[Term]) -> Term:
            return proof

        return [], builder

    return tactic


# ---------------------------------------------------------------------------
# Equality manipulation
# ---------------------------------------------------------------------------


def symmetry():
    """Swap the sides of an equality goal."""

    def tactic(env: Environment, goal: Goal):
        target = whnf(env, goal.target)
        head, args = unfold_app(target)
        if not (isinstance(head, Ind) and head.name == "eq" and len(args) == 3):
            raise TacticError("symmetry: goal is not an equality")
        ty, lhs, rhs = args
        subgoal = Goal(goal.ctx, Ind("eq").app(ty, rhs, lhs))

        def builder(subproofs: Sequence[Term]) -> Term:
            return Const("eq_sym").app(ty, rhs, lhs, subproofs[0])

        return [subgoal], builder

    return tactic


def rewrite(proof: TermLike, rev: bool = False):
    """Rewrite the goal along an equality proof.

    With ``H : x = y``, ``rewrite(H)`` replaces ``x`` by ``y`` in the goal
    and ``rewrite(H, rev=True)`` replaces ``y`` by ``x`` — the same
    directions as Coq's ``rewrite H`` and ``rewrite <- H``.
    """

    def tactic(env: Environment, goal: Goal):
        resolved = _resolve(env, goal, proof)
        ty = whnf(env, infer(env, goal.ctx, resolved))
        head, args = unfold_app(ty)
        if not (isinstance(head, Ind) and head.name == "eq" and len(args) == 3):
            raise TacticError(
                "rewrite: proof is not of an equality (apply it first?)"
            )
        carrier, lhs, rhs = args
        if rev:
            source, dest = rhs, lhs
        else:
            source, dest = lhs, rhs
        body = _abstract_conv(env, goal.target, source)
        if not occurs_rel(body, 0):
            raise TacticError("rewrite: nothing to rewrite")
        motive = Lam("w", carrier, body)
        subgoal = Goal(goal.ctx, subst(body, dest))

        def builder(subproofs: Sequence[Term]) -> Term:
            if rev:
                # eq_ind carrier lhs motive (b : motive lhs) rhs proof
                return Const("eq_ind").app(
                    carrier, lhs, motive, subproofs[0], rhs, resolved
                )
            # eq_ind carrier rhs motive (b : motive rhs) lhs (sym proof)
            return Const("eq_ind").app(
                carrier,
                rhs,
                motive,
                subproofs[0],
                lhs,
                Const("eq_sym").app(carrier, lhs, rhs, resolved),
            )

        return [subgoal], builder

    return tactic


def _abstract_conv(env: Environment, term: Term, source: Term) -> Term:
    """Abstract occurrences of ``source`` in ``term``, up to conversion.

    Like :func:`repro.kernel.term.abstract_term` but occurrences are
    recognized definitionally, so a goal whose redexes were unfolded by
    ``simpl`` can still be rewritten along a folded equality.
    """
    lifted = lift(term, 1, 0)
    src = lift(source, 1, 0)

    def go(t: Term, cutoff: int) -> Term:
        shifted_src = lift(src, cutoff, 0)
        if t == shifted_src:
            return Rel(cutoff)
        if isinstance(t, (App, Const, Elim)) and conv(env, t, shifted_src):
            return Rel(cutoff)
        if isinstance(t, App):
            return App(go(t.fn, cutoff), go(t.arg, cutoff))
        if isinstance(t, Lam):
            return Lam(t.name, go(t.domain, cutoff), go(t.body, cutoff + 1))
        if isinstance(t, Pi):
            return Pi(t.name, go(t.domain, cutoff), go(t.codomain, cutoff + 1))
        if isinstance(t, Elim):
            return Elim(
                t.ind,
                go(t.motive, cutoff),
                tuple(go(c, cutoff) for c in t.cases),
                go(t.scrut, cutoff),
            )
        return t

    return go(lifted, 0)


# ---------------------------------------------------------------------------
# Computation
# ---------------------------------------------------------------------------


def simpl():
    """Normalize the goal (beta, iota, delta)."""

    def tactic(env: Environment, goal: Goal):
        subgoal = Goal(goal.ctx, nf(env, goal.target))

        def builder(subproofs: Sequence[Term]) -> Term:
            return subproofs[0]

        return [subgoal], builder

    return tactic


def change(target: TermLike):
    """Replace the goal with a convertible statement."""

    def tactic(env: Environment, goal: Goal):
        resolved = _resolve(env, goal, target)
        if not conv(env, resolved, goal.target):
            raise TacticError("change: statements are not convertible")
        subgoal = Goal(goal.ctx, resolved)

        def builder(subproofs: Sequence[Term]) -> Term:
            return subproofs[0]

        return [subgoal], builder

    return tactic


# ---------------------------------------------------------------------------
# Application
# ---------------------------------------------------------------------------


def apply(fn: TermLike):
    """Unify the lemma's conclusion with the goal; premises become subgoals.

    Tries to match with progressively fewer instantiated binders, like
    Coq's ``apply``.
    """

    def tactic(env: Environment, goal: Goal):
        resolved = _resolve(env, goal, fn)
        fn_ty = infer(env, goal.ctx, resolved)
        binders, conclusion = unfold_pis(_full_pis(env, fn_ty))
        n = len(binders)

        last_error: Optional[Exception] = None
        for used in range(n, -1, -1):
            # Conclusion when only the first ``used`` binders are
            # instantiated; the rest stay part of the conclusion.
            concl = conclusion
            for name, dom in reversed(binders[used:]):
                concl = Pi(name, dom, concl)
            try:
                assign = match_conclusion(env, concl, used, goal.target)
            except MatchFailure as exc:
                last_error = exc
                continue
            return _apply_with(env, goal, resolved, binders[:used], assign)
        raise TacticError(f"apply: conclusion does not match goal ({last_error})")

    return tactic


def _full_pis(env: Environment, ty: Term) -> Term:
    """Expose every leading Pi, unfolding the head as needed."""
    result = ty
    while True:
        stripped, body = unfold_pis(result)
        body_w = whnf(env, body)
        if isinstance(body_w, Pi):
            from ..kernel.term import mk_pis

            result = mk_pis(stripped, body_w)
            continue
        from ..kernel.term import mk_pis

        return mk_pis(stripped, body)


def _apply_with(
    env: Environment,
    goal: Goal,
    fn_term: Term,
    binders: Sequence[Tuple[str, Term]],
    assign: Dict[int, Term],
):
    n = len(binders)
    values: List[Optional[Term]] = []
    subgoal_positions: List[int] = []
    subgoals: List[Goal] = []
    for k, (name, dom) in enumerate(binders):
        # Pattern variable index for binder k is n - 1 - k.
        var = n - 1 - k
        if var in assign:
            values.append(assign[var])
            continue
        # This argument becomes a subgoal; its type must be fully
        # determined by the already-known arguments.  Substitute the known
        # values innermost-first (each substitution renumbers, so the
        # next binder is always at index 0).
        ty = dom
        for j in reversed(range(k)):
            value = values[j]
            if value is None:
                if occurs_rel(ty, 0):
                    raise TacticError(
                        f"apply: cannot infer argument {binders[j][0]!r}"
                    )
                # Substitute a placeholder; it cannot occur, so this only
                # renumbers the remaining indices.
                ty = subst(ty, Rel(0), 0)
            else:
                # ``value`` lives in the goal context; j outer binders of
                # the telescope are still pending below it.
                ty = subst(ty, lift(value, j), 0)
        subgoal_positions.append(k)
        subgoals.append(Goal(goal.ctx, ty))
        values.append(None)

    def builder(subproofs: Sequence[Term]) -> Term:
        final = list(values)
        for position, proof in zip(subgoal_positions, subproofs):
            final[position] = proof
        if any(v is None for v in final):
            raise TacticError("apply: missing argument at build time")
        return mk_app(fn_term, final)

    return subgoals, builder


# ---------------------------------------------------------------------------
# Structural tactics
# ---------------------------------------------------------------------------


def split():
    """Split a conjunction goal into its two halves."""

    def tactic(env: Environment, goal: Goal):
        target = whnf(env, goal.target)
        head, args = unfold_app(target)
        if not (isinstance(head, Ind) and head.name == "and" and len(args) == 2):
            raise TacticError("split: goal is not a conjunction")
        left_ty, right_ty = args
        subgoals = [Goal(goal.ctx, left_ty), Goal(goal.ctx, right_ty)]

        def builder(subproofs: Sequence[Term]) -> Term:
            return Constr("and", 0).app(
                left_ty, right_ty, subproofs[0], subproofs[1]
            )

        return subgoals, builder

    return tactic


def left():
    """Prove the left disjunct."""
    return _disjunct(0)


def right():
    """Prove the right disjunct."""
    return _disjunct(1)


def _disjunct(index: int):
    def tactic(env: Environment, goal: Goal):
        target = whnf(env, goal.target)
        head, args = unfold_app(target)
        if not (isinstance(head, Ind) and head.name == "or" and len(args) == 2):
            raise TacticError("left/right: goal is not a disjunction")
        left_ty, right_ty = args
        subgoals = [Goal(goal.ctx, args[index])]

        def builder(subproofs: Sequence[Term]) -> Term:
            return Constr("or", index).app(left_ty, right_ty, subproofs[0])

        return subgoals, builder

    return tactic


def exists_(witness: TermLike):
    """Provide the witness of a sigma goal."""

    def tactic(env: Environment, goal: Goal):
        target = whnf(env, goal.target)
        head, args = unfold_app(target)
        if not (
            isinstance(head, Ind) and head.name == "sigT" and len(args) == 2
        ):
            raise TacticError("exists: goal is not a sigma type")
        carrier, predicate = args
        resolved = _resolve(env, goal, witness)
        check(env, goal.ctx, resolved, carrier)
        from ..kernel.reduce import beta_reduce

        subgoals = [Goal(goal.ctx, beta_reduce(App(predicate, resolved)))]

        def builder(subproofs: Sequence[Term]) -> Term:
            return Constr("sigT", 0).app(
                carrier, predicate, resolved, subproofs[0]
            )

        return subgoals, builder

    return tactic


# ---------------------------------------------------------------------------
# Induction
# ---------------------------------------------------------------------------


def induction(hyp: Union[int, str], names: Optional[Sequence[Sequence[str]]] = None):
    """Induct on a hypothesis (a variable of inductive type).

    ``names`` optionally gives, per constructor, the names for the case's
    arguments and induction hypotheses (Coq's ``as [a l IHl|]`` pattern).
    Case binders are introduced automatically, as Coq does.

    For an indexed family (``vector``, ``eq``, ...), the indices of the
    hypothesis must be distinct variables; they are generalized into the
    motive along with the hypothesis, as Coq's ``induction`` does.
    """

    def tactic(env: Environment, goal: Goal):
        index = _hyp_index(goal, hyp)
        var = Rel(index)
        var_ty = whnf(env, goal.ctx.type_of(index))
        head, args = unfold_app(var_ty)
        if not isinstance(head, Ind):
            raise TacticError("induction: hypothesis is not inductive")
        decl = env.inductive(head.name)
        params = args[: decl.n_params]
        index_terms = args[decl.n_params :]

        if decl.n_indices:
            return _indexed_induction(
                env, goal, decl, var, params, index_terms, names
            )

        motive_body = abstract_term(goal.target, var)
        motive = Lam("x", var_ty, motive_body)

        from ..kernel.inductive import analyze_recursive_args
        from ..kernel.reduce import beta_reduce

        subgoals: List[Goal] = []
        case_binders: List[Tuple[Tuple[str, Term], ...]] = []
        for j in range(decl.n_constructors):
            ct = beta_reduce(case_type(decl, j, params, motive))
            # Strip exactly the constructor's binders (args + IHs); the
            # conclusion itself may be a product (e.g. a goal generalized
            # over later arguments) and must stay intact.
            rec_infos = analyze_recursive_args(decl, j)
            n_case_binders = len(decl.constructors[j].args) + sum(
                1 for info in rec_infos if info is not None
            )
            binders_all: List[Tuple[str, Term]] = []
            conclusion = ct
            for _ in range(n_case_binders):
                if not isinstance(conclusion, Pi):
                    raise TacticError("induction: malformed case type")
                binders_all.append((conclusion.name, conclusion.domain))
                conclusion = conclusion.codomain
            binders = tuple(binders_all)
            if names is not None and j < len(names) and names[j]:
                given = list(names[j])
                renamed = []
                ctx = goal.ctx
                for bi, (bname, bty) in enumerate(binders):
                    hint = given[bi] if bi < len(given) else bname
                    renamed.append((ctx.fresh_name(hint), bty))
                    ctx = ctx.push(renamed[-1][0], bty)
                binders = tuple(renamed)
            else:
                ctx = goal.ctx
                renamed = []
                for bname, bty in binders:
                    fresh = ctx.fresh_name(bname if bname != "_" else "a")
                    renamed.append((fresh, bty))
                    ctx = ctx.push(fresh, bty)
                binders = tuple(renamed)
            sub_ctx = goal.ctx
            for bname, bty in binders:
                sub_ctx = sub_ctx.push(bname, bty)
            subgoals.append(Goal(sub_ctx, conclusion))
            case_binders.append(tuple(binders))

        def builder(subproofs: Sequence[Term]) -> Term:
            cases = tuple(
                mk_lams(case_binders[j], subproofs[j])
                for j in range(decl.n_constructors)
            )
            return Elim(decl.name, motive, cases, var)

        return subgoals, builder

    return tactic


def _indexed_induction(
    env: Environment,
    goal: Goal,
    decl,
    var: Rel,
    params: Sequence[Term],
    index_terms: Sequence[Term],
    names: Optional[Sequence[Sequence[str]]],
):
    """Induction over an indexed family, generalizing the index variables."""
    from ..kernel.inductive import instantiate_telescope
    from ..kernel.term import free_rels

    k = len(index_terms)
    if not all(isinstance(t, Rel) for t in index_terms):
        raise TacticError(
            "induction: the indices of the hypothesis must be variables"
        )
    targets = [t.index for t in index_terms] + [var.index]
    if len(set(targets)) != len(targets):
        raise TacticError("induction: index variables must be distinct")
    for p in params:
        if any(r in free_rels(p) for r in targets):
            raise TacticError(
                "induction: parameters must not depend on the indices"
            )

    # Motive binder types: the instantiated index telescope, then the
    # family applied to the fresh index binders.
    index_tele = instantiate_telescope(
        tuple(decl.params) + tuple(decl.indices), list(params)
    )
    binders: List[Tuple[str, Term]] = list(index_tele)
    scrut_ty = mk_app(
        Ind(decl.name),
        tuple(lift(p, k) for p in params)
        + tuple(Rel(k - 1 - j) for j in range(k)),
    )
    binders.append(("x", scrut_ty))

    # Motive body: the goal with the index variables and the hypothesis
    # replaced by the fresh binders (i_j -> Rel(k - j), x -> Rel(0)).
    total = k + 1
    replacement = {
        old + total: total - 1 - position
        for position, old in enumerate(targets)
    }

    def remap(term: Term, cutoff: int) -> Term:
        if isinstance(term, Rel):
            shifted = term.index - cutoff
            if shifted >= 0 and (shifted in replacement):
                return Rel(replacement[shifted] + cutoff)
            return term
        if isinstance(term, (Sort, Const, Ind, Constr)):
            return term
        if isinstance(term, App):
            return App(remap(term.fn, cutoff), remap(term.arg, cutoff))
        if isinstance(term, Lam):
            return Lam(
                term.name, remap(term.domain, cutoff), remap(term.body, cutoff + 1)
            )
        if isinstance(term, Pi):
            return Pi(
                term.name,
                remap(term.domain, cutoff),
                remap(term.codomain, cutoff + 1),
            )
        if isinstance(term, Elim):
            return Elim(
                term.ind,
                remap(term.motive, cutoff),
                tuple(remap(c, cutoff) for c in term.cases),
                remap(term.scrut, cutoff),
            )
        raise TacticError(f"induction: cannot remap {term!r}")

    motive_body = remap(lift(goal.target, total), 0)
    motive = mk_lams(binders, motive_body)

    from ..kernel.inductive import analyze_recursive_args
    from ..kernel.reduce import beta_reduce

    subgoals: List[Goal] = []
    case_binders: List[Tuple[Tuple[str, Term], ...]] = []
    for j in range(decl.n_constructors):
        ct = beta_reduce(case_type(decl, j, params, motive))
        rec_infos = analyze_recursive_args(decl, j)
        n_case_binders = len(decl.constructors[j].args) + sum(
            1 for info in rec_infos if info is not None
        )
        collected: List[Tuple[str, Term]] = []
        conclusion = ct
        ctx = goal.ctx
        given = list(names[j]) if names is not None and j < len(names) else []
        for bi in range(n_case_binders):
            if not isinstance(conclusion, Pi):
                raise TacticError("induction: malformed case type")
            hint = (
                given[bi]
                if bi < len(given)
                else (conclusion.name if conclusion.name != "_" else "a")
            )
            fresh = ctx.fresh_name(hint)
            collected.append((fresh, conclusion.domain))
            ctx = ctx.push(fresh, conclusion.domain)
            conclusion = conclusion.codomain
        subgoals.append(Goal(ctx, conclusion))
        case_binders.append(tuple(collected))

    def builder(subproofs: Sequence[Term]) -> Term:
        cases = tuple(
            mk_lams(case_binders[j], subproofs[j])
            for j in range(decl.n_constructors)
        )
        return Elim(decl.name, motive, cases, var)

    return subgoals, builder


def discriminate(hyp: Union[int, str]):
    """Close any goal from an equation between distinct constructors.

    Given ``h : C1 ... = C2 ...`` with ``C1 != C2`` of the same inductive
    type, builds the standard large-elimination refutation: transport an
    inhabitant of a motive that is inhabited at ``C1`` and ``empty`` at
    every other constructor, then eliminate the resulting ``empty``.
    """

    def tactic(env: Environment, goal: Goal):
        index = _hyp_index(goal, hyp)
        h = Rel(index)
        h_ty = whnf(env, infer(env, goal.ctx, h))
        head, args = unfold_app(h_ty)
        if not (isinstance(head, Ind) and head.name == "eq" and len(args) == 3):
            raise TacticError("discriminate: hypothesis is not an equality")
        carrier, lhs, rhs = args
        lhs_w = whnf(env, lhs)
        rhs_w = whnf(env, rhs)
        lhead, _ = unfold_app(lhs_w)
        rhead, _ = unfold_app(rhs_w)
        if not (
            isinstance(lhead, Constr)
            and isinstance(rhead, Constr)
            and lhead.ind == rhead.ind
            and lhead.index != rhead.index
        ):
            raise TacticError(
                "discriminate: sides do not start with distinct constructors"
            )
        decl = env.inductive(lhead.ind)
        if decl.n_indices:
            raise TacticError("discriminate: indexed families unsupported")
        carrier_w = whnf(env, carrier)
        _chead, cargs = unfold_app(carrier_w)
        params = cargs

        # P : carrier -> Prop, inhabited at lhead, empty elsewhere.
        inhabited = Ind("eq").app(Ind("nat"), Constr("nat", 0), Constr("nat", 0))
        from ..kernel.inductive import analyze_recursive_args
        from ..kernel.reduce import beta_reduce

        motive = Lam("k", carrier_w, Sort(-1))
        cases = []
        for j in range(decl.n_constructors):
            ct = beta_reduce(case_type(decl, j, params, motive))
            rec_infos = analyze_recursive_args(decl, j)
            n_binders = len(decl.constructors[j].args) + sum(
                1 for info in rec_infos if info is not None
            )
            binders = []
            body_ty = ct
            for _ in range(n_binders):
                binders.append((body_ty.name, body_ty.domain))
                body_ty = body_ty.codomain
            value = inhabited if j == lhead.index else Ind("empty")
            cases.append(mk_lams(binders, lift(value, n_binders)))
        predicate = Lam(
            "k", carrier_w, Elim(lhead.ind, lift(motive, 1), tuple(cases), Rel(0))
        )

        # eq_ind carrier lhs predicate (eq_refl nat O) rhs h : predicate rhs
        witness = Constr("eq", 0).app(Ind("nat"), Constr("nat", 0))
        transported = Const("eq_ind").app(
            carrier, lhs, predicate, witness, rhs, h
        )
        proof = Elim(
            "empty", Lam("_", Ind("empty"), lift(goal.target, 1)), (), transported
        )
        check(env, goal.ctx, proof, goal.target)

        def builder(_subproofs: Sequence[Term]) -> Term:
            return proof

        return [], builder

    return tactic


def destruct(target: TermLike, names: Optional[Sequence[Sequence[str]]] = None):
    """Case analysis on an arbitrary term of non-indexed inductive type.

    The motive abstracts the occurrences of the term in the goal (up to
    conversion), so ``destruct (eqb x y)`` works on goals whose redexes
    were exposed by ``simpl``.
    """

    def tactic(env: Environment, goal: Goal):
        resolved = _resolve(env, goal, target)
        ty = whnf(env, infer(env, goal.ctx, resolved))
        head, args = unfold_app(ty)
        if not isinstance(head, Ind):
            raise TacticError("destruct: the term is not of inductive type")
        decl = env.inductive(head.name)
        if decl.n_indices:
            raise TacticError("destruct: indexed families are unsupported")
        params = args

        motive_body = _abstract_conv(env, goal.target, resolved)
        motive = Lam("x", ty, motive_body)

        from ..kernel.inductive import analyze_recursive_args
        from ..kernel.reduce import beta_reduce

        subgoals: List[Goal] = []
        case_binders: List[Tuple[Tuple[str, Term], ...]] = []
        for j in range(decl.n_constructors):
            ct = beta_reduce(case_type(decl, j, params, motive))
            rec_infos = analyze_recursive_args(decl, j)
            n_case_binders = len(decl.constructors[j].args) + sum(
                1 for info in rec_infos if info is not None
            )
            collected: List[Tuple[str, Term]] = []
            conclusion = ct
            ctx = goal.ctx
            given = list(names[j]) if names is not None and j < len(names) else []
            for bi in range(n_case_binders):
                if not isinstance(conclusion, Pi):
                    raise TacticError("destruct: malformed case type")
                hint = (
                    given[bi]
                    if bi < len(given)
                    else (conclusion.name if conclusion.name != "_" else "a")
                )
                fresh = ctx.fresh_name(hint)
                collected.append((fresh, conclusion.domain))
                ctx = ctx.push(fresh, conclusion.domain)
                conclusion = conclusion.codomain
            subgoals.append(Goal(ctx, conclusion))
            case_binders.append(tuple(collected))

        def builder(subproofs: Sequence[Term]) -> Term:
            cases = tuple(
                mk_lams(case_binders[j], subproofs[j])
                for j in range(decl.n_constructors)
            )
            return Elim(decl.name, motive, cases, resolved)

        return subgoals, builder

    return tactic


def elim_using(eliminator: TermLike, hyp: Union[int, str]):
    """Induct on ``hyp`` with a custom eliminator (Coq's ``induction ..
    using ..``).

    The motive is inferred by abstracting the goal over the hypothesis;
    the eliminator's remaining premises become subgoals in order.  Used
    with ``N.peano_rect`` in the binary-numbers case study (Section 6.3).
    """

    def tactic(env: Environment, goal: Goal):
        index = _hyp_index(goal, hyp)
        var = Rel(index)
        var_ty = whnf(env, goal.ctx.type_of(index))
        motive = Lam("x", var_ty, abstract_term(goal.target, var))
        resolved = _resolve(env, goal, eliminator)
        return apply(App(resolved, motive))(env, goal)

    return tactic


# ---------------------------------------------------------------------------
# Automation
# ---------------------------------------------------------------------------


def try_(tactic):
    """Apply ``tactic``; on failure leave the goal unchanged."""

    def wrapped(env: Environment, goal: Goal):
        try:
            return tactic(env, goal)
        except TacticError:
            def builder(subproofs: Sequence[Term]) -> Term:
                return subproofs[0]

            return [goal], builder

    return wrapped


def first(*tactics):
    """Apply the first tactic that succeeds."""

    def wrapped(env: Environment, goal: Goal):
        errors = []
        for tactic in tactics:
            try:
                return tactic(env, goal)
            except TacticError as exc:
                errors.append(str(exc))
        raise TacticError("first: all alternatives failed: " + "; ".join(errors))

    return wrapped


def auto(depth: int = 3):
    """Close simple goals by depth-bounded backward search.

    Tries ``assumption`` and ``reflexivity``, then backchains through the
    hypotheses (applying each and recursively solving the premises), like
    a small Coq ``auto``.
    """

    def tactic(env: Environment, goal: Goal):
        proof = _auto_solve(env, goal, depth)

        def builder(_subproofs: Sequence[Term]) -> Term:
            return proof

        return [], builder

    return tactic


def _auto_solve(env: Environment, goal: Goal, depth: int) -> Term:
    for leaf in (assumption(), reflexivity()):
        try:
            _subgoals, builder = leaf(env, goal)
            return builder([])
        except TacticError:
            pass
    if depth <= 0:
        raise TacticError("auto: search depth exhausted")
    for i in range(len(goal.ctx)):
        try:
            subgoals, builder = apply(Rel(i))(env, goal)
        except TacticError:
            continue
        try:
            subproofs = [
                _auto_solve(env, subgoal, depth - 1) for subgoal in subgoals
            ]
        except TacticError:
            continue
        return builder(subproofs)
    raise TacticError("auto: no applicable rule")


def trivial():
    """Alias for :func:`auto` (matches the paper's scripts)."""
    return auto()


def constructor():
    """Apply the first constructor whose conclusion matches the goal."""

    def tactic(env: Environment, goal: Goal):
        target = whnf(env, goal.target)
        head, _args = unfold_app(target)
        if not isinstance(head, Ind):
            raise TacticError("constructor: goal is not inductive")
        decl = env.inductive(head.name)
        candidates = [
            apply(Constr(decl.name, j)) for j in range(decl.n_constructors)
        ]
        return first(*candidates)(env, goal)

    return tactic
