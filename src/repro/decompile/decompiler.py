"""The scaled-up decompiler: second pass and pretty printing (Section 5.2).

``Decompile`` operates in two passes: first the mini decompiler of
:mod:`repro.decompile.qtac`, then a cleanup pass that produces a more
natural script — merging ``intro`` runs into ``intros``, deduplicating
``simpl``, and dropping ``simpl`` where the next tactic does not need it.
The printer maintains the recursive proof structure and renders subgoals
with Coq-style bullets, exactly as the paper describes.
"""

from __future__ import annotations

from typing import List, Optional

from ..kernel.context import Context
from ..kernel.env import Environment
from ..kernel.term import Term
from ..obs import span, term_size, tracing_enabled
from .qtac import (
    Script,
    Tac,
    TApply,
    TExact,
    TIntro,
    TIntros,
    TInduction,
    TLeft,
    TReflexivity,
    TRewrite,
    TRight,
    TSimpl,
    TSplit,
    TSymmetry,
    decompile,
)

_BULLETS = ["-", "+", "*", "--", "++", "**"]


def decompile_to_script(
    env: Environment, term: Term, ctx: Optional[Context] = None
) -> Script:
    """Mini decompiler followed by the cleanup pass."""
    with span("decompile") as sp:
        if tracing_enabled():
            sp.gauge("term_size_in", term_size(term))
        return _second_pass(decompile(env, term, ctx))


def _second_pass(script: Script) -> Script:
    steps = [_second_pass_tac(tac) for tac in script.steps]
    steps = _merge_intros(steps)
    steps = _clean_simpl(steps)
    return Script(tuple(steps))


def _second_pass_tac(tac: Tac) -> Tac:
    if isinstance(tac, TInduction):
        return TInduction(
            scrut=tac.scrut,
            case_names=tac.case_names,
            cases=tuple(_second_pass(case) for case in tac.cases),
        )
    if isinstance(tac, TSplit):
        return TSplit(
            (_second_pass(tac.branches[0]), _second_pass(tac.branches[1]))
        )
    return tac


def _merge_intros(steps: List[Tac]) -> List[Tac]:
    out: List[Tac] = []
    run: List[str] = []
    for tac in steps:
        if isinstance(tac, TIntro):
            run.append(tac.name)
            continue
        if run:
            out.append(TIntros(tuple(run)) if len(run) > 1 else TIntro(run[0]))
            run = []
        out.append(tac)
    if run:
        out.append(TIntros(tuple(run)) if len(run) > 1 else TIntro(run[0]))
    return out


def _clean_simpl(steps: List[Tac]) -> List[Tac]:
    out: List[Tac] = []
    for i, tac in enumerate(steps):
        if isinstance(tac, TSimpl):
            nxt = steps[i + 1] if i + 1 < len(steps) else None
            if isinstance(nxt, (TSimpl, TReflexivity)) or nxt is None:
                continue
            if out and isinstance(out[-1], TSimpl):
                continue
        out.append(tac)
    return out


# ---------------------------------------------------------------------------
# Pretty printing
# ---------------------------------------------------------------------------


def print_script(script: Script, name: Optional[str] = None) -> str:
    """Render a script as a Coq-style proof block with bullets."""
    lines: List[str] = []
    if name is not None:
        lines.append(f"(* {name} *)")
    lines.append("Proof.")
    lines.extend(_render(script, depth=0, indent=1))
    lines.append("Qed.")
    return "\n".join(lines)


def _render(script: Script, depth: int, indent: int) -> List[str]:
    lines: List[str] = []
    pad = "  " * indent
    pending: List[str] = []

    def flush() -> None:
        if pending:
            lines.append(pad + " ".join(pending))
            pending.clear()

    for tac in script.steps:
        if isinstance(tac, TInduction):
            pattern = "|".join(" ".join(names) for names in tac.case_names)
            pending.append(f"induction {tac.scrut} as [{pattern}].")
            flush()
            bullet = _BULLETS[depth % len(_BULLETS)]
            for case in tac.cases:
                sub = _render(case, depth + 1, indent + 1)
                if sub:
                    first = sub[0].lstrip()
                    lines.append(pad + f"{bullet} {first}")
                    lines.extend(sub[1:])
                else:
                    lines.append(pad + bullet)
            continue
        if isinstance(tac, TSplit):
            pending.append("split.")
            flush()
            bullet = _BULLETS[depth % len(_BULLETS)]
            for branch in tac.branches:
                sub = _render(branch, depth + 1, indent + 1)
                if sub:
                    first = sub[0].lstrip()
                    lines.append(pad + f"{bullet} {first}")
                    lines.extend(sub[1:])
                else:
                    lines.append(pad + bullet)
            continue
        pending.append(_render_atomic(tac))
        if isinstance(tac, (TReflexivity, TExact)):
            flush()
    flush()
    return lines


def _render_atomic(tac: Tac) -> str:
    if isinstance(tac, TIntro):
        return f"intro {tac.name}."
    if isinstance(tac, TIntros):
        return "intros " + " ".join(tac.names) + "."
    if isinstance(tac, TSymmetry):
        return "symmetry."
    if isinstance(tac, TSimpl):
        return "simpl."
    if isinstance(tac, TRewrite):
        arrow = "<- " if tac.rev else ""
        return f"rewrite {arrow}({tac.proof})."
    if isinstance(tac, TApply):
        return f"apply ({tac.term})."
    if isinstance(tac, TExact):
        return f"exact ({tac.term})."
    if isinstance(tac, TReflexivity):
        return "reflexivity."
    if isinstance(tac, TLeft):
        return "left."
    if isinstance(tac, TRight):
        return "right."
    raise ValueError(f"unknown tactic {tac!r}")
