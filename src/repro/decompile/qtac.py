"""Qtac: the mini decompiler's tactic language (Figures 13 and 14).

The AST mirrors Figure 13 — ``intro``, ``rewrite``, ``symmetry``,
``apply``, ``induction``, ``split``, ``left``, ``right``, and sequencing —
extended with the few constructs the real decompiler needs (``exact``,
``reflexivity``, ``simpl``, ``intros``).  :func:`decompile` implements the
semantics of Figure 14: a structural recursion over the proof term that
defaults to ``apply``/``exact`` of the whole term (the Base rule) and
improves on it wherever a rule matches.

Tactic arguments are rendered to surface-syntax strings at decompile time
using the ambient binder names, so the output script is exactly what a
proof engineer would read — and it can be re-executed with
:func:`repro.decompile.run.run_script`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..kernel.context import Context
from ..kernel.env import Environment
from ..kernel.pretty import pretty
from ..kernel.reduce import whnf
from ..kernel.term import (
    App,
    Const,
    Constr,
    Elim,
    Lam,
    Rel,
    Sort,
    Term,
    unfold_app,
)
from ..kernel.typecheck import TypeError_, infer


@dataclass(frozen=True)
class Tac:
    """Base class of Qtac tactics."""


@dataclass(frozen=True)
class TIntro(Tac):
    name: str


@dataclass(frozen=True)
class TIntros(Tac):
    names: Tuple[str, ...]


@dataclass(frozen=True)
class TSymmetry(Tac):
    pass


@dataclass(frozen=True)
class TRewrite(Tac):
    proof: str
    rev: bool = False


@dataclass(frozen=True)
class TSimpl(Tac):
    pass


@dataclass(frozen=True)
class TApply(Tac):
    term: str


@dataclass(frozen=True)
class TExact(Tac):
    term: str


@dataclass(frozen=True)
class TReflexivity(Tac):
    pass


@dataclass(frozen=True)
class TSplit(Tac):
    branches: Tuple["Script", "Script"]


@dataclass(frozen=True)
class TLeft(Tac):
    pass


@dataclass(frozen=True)
class TRight(Tac):
    pass


@dataclass(frozen=True)
class TInduction(Tac):
    scrut: str
    case_names: Tuple[Tuple[str, ...], ...]
    cases: Tuple["Script", ...]


@dataclass(frozen=True)
class Script:
    steps: Tuple[Tac, ...]

    def __add__(self, other: "Script") -> "Script":
        return Script(self.steps + other.steps)


def _show(term: Term, names: Sequence[str], env: Optional[Environment] = None) -> str:
    ctx = Context(tuple((name, Sort(0)) for name in names))
    return pretty(term, ctx=ctx, env=env)


class Decompiler:
    """The mini decompiler, with hooks used by the scaled-up second pass."""

    def __init__(self, env: Environment) -> None:
        self.env = env

    # -- Entry point -----------------------------------------------------------

    def decompile(self, term: Term, ctx: Optional[Context] = None) -> Script:
        return Script(tuple(self._steps(term, ctx or Context.empty())))

    # -- The Figure 14 rules -----------------------------------------------------

    def _steps(self, term: Term, ctx: Context) -> List[Tac]:
        names = [name for name, _ in ctx.entries]

        # Intro.
        if isinstance(term, Lam):
            fresh = ctx.fresh_name(term.name if term.name != "_" else "H")
            rest = self._steps(term.body, ctx.push(fresh, term.domain))
            return [TIntro(fresh)] + rest

        head, args = unfold_app(term)

        # Reflexivity (an eq_refl constructor).
        if isinstance(head, Constr) and head.ind == "eq" and len(args) == 2:
            return [TReflexivity()]

        # Symmetry.
        if isinstance(head, Const) and head.name == "eq_sym" and len(args) == 4:
            return [TSymmetry()] + self._steps(args[3], ctx)

        # Split / Left / Right.
        if isinstance(head, Constr) and head.ind == "and" and len(args) == 4:
            left = self.decompile(args[2], ctx)
            right = self.decompile(args[3], ctx)
            return [TSplit((left, right))]
        if isinstance(head, Constr) and head.ind == "or" and len(args) == 3:
            side = TLeft() if head.index == 0 else TRight()
            return [side] + self._steps(args[2], ctx)

        # Rewrite: recognize the two eq_ind shapes (and eq_ind_r).
        rewrite = self._match_rewrite(head, args, ctx)
        if rewrite is not None:
            tac, rest_term = rewrite
            return [TSimpl(), tac] + self._steps(rest_term, ctx)

        # Induction over an introduced variable.
        if isinstance(term, Elim) and isinstance(term.scrut, Rel):
            induction = self._decompile_induction(term, ctx)
            if induction is not None:
                return [induction]

        # Base: apply the head with its trailing proof argument as a
        # subproof when that reads better, otherwise exact the whole term.
        if args and self._is_proof(args[-1], ctx):
            prefix = term
            # Reconstruct the application without its last argument.
            prefix = _drop_last_arg(term)
            return [TApply(_show(prefix, names, self.env))] + self._steps(args[-1], ctx)
        return [TExact(_show(term, names, self.env))]

    # -- Helpers -----------------------------------------------------------------

    def _match_rewrite(
        self, head: Term, args: Tuple[Term, ...], ctx: Context
    ) -> Optional[Tuple[Tac, Term]]:
        names = [name for name, _ in ctx.entries]
        if not isinstance(head, Const):
            return None
        if head.name == "eq_ind" and len(args) == 6:
            _carrier, _x, _motive, body, _y, proof = args
            phead, pargs = unfold_app(proof)
            if (
                isinstance(phead, Const)
                and phead.name == "eq_sym"
                and len(pargs) == 4
            ):
                # eq_ind A y P b x (eq_sym A x y p): a forward rewrite by p.
                return (TRewrite(_show(pargs[3], names, self.env), rev=False), body)
            return (TRewrite(_show(proof, names, self.env), rev=True), body)
        if head.name == "eq_ind_r" and len(args) == 6:
            _carrier, _x, _motive, body, _y, proof = args
            return (TRewrite(_show(proof, names, self.env), rev=False), body)
        return None

    def _decompile_induction(
        self, term: Elim, ctx: Context
    ) -> Optional[TInduction]:
        assert isinstance(term.scrut, Rel)
        scrut_name = ctx.name_of(term.scrut.index)
        try:
            decl = self.env.inductive(term.ind)
        except Exception:
            return None
        if decl.n_indices:
            return None
        from ..kernel.inductive import analyze_recursive_args

        case_names: List[Tuple[str, ...]] = []
        case_scripts: List[Script] = []
        for j, case in enumerate(term.cases):
            rec = analyze_recursive_args(decl, j)
            n_binders = len(decl.constructors[j].args) + sum(
                1 for r in rec if r is not None
            )
            body = case
            names: List[str] = []
            sub_ctx = ctx
            for _ in range(n_binders):
                if not isinstance(body, Lam):
                    # The case is not fully eta-expanded; fall back.
                    return None
                fresh = sub_ctx.fresh_name(
                    body.name if body.name != "_" else "a"
                )
                names.append(fresh)
                sub_ctx = sub_ctx.push(fresh, body.domain)
                body = body.body
            case_names.append(tuple(names))
            case_scripts.append(self.decompile(body, sub_ctx))
        return TInduction(
            scrut=scrut_name,
            case_names=tuple(case_names),
            cases=tuple(case_scripts),
        )

    def _is_proof(self, term: Term, ctx: Context) -> bool:
        """Heuristic: is this argument a proof (rather than data)?"""
        try:
            ty = infer(self.env, ctx, term)
            sort = infer(self.env, ctx, ty)
        except TypeError_:
            return False
        return isinstance(whnf(self.env, sort), Sort) and whnf(
            self.env, sort
        ).is_prop


def _drop_last_arg(term: Term) -> Term:
    assert isinstance(term, App)
    return term.fn


def decompile(env: Environment, term: Term, ctx: Optional[Context] = None) -> Script:
    """Decompile a proof term to a Qtac script (Figure 14)."""
    return Decompiler(env).decompile(term, ctx)
