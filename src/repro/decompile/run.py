"""Execute decompiled scripts against the tactic engine.

This closes the loop the paper leaves to the proof engineer: a suggested
script is *replayed* against the repaired theorem statement, and the
resulting proof term is kernel checked.  A script that runs to ``Qed``
here is a script the proof engineer can actually maintain.
"""

from __future__ import annotations


from ..kernel.env import Environment
from ..kernel.term import Term
from ..obs import span
from ..tactics.engine import Proof, TacticError
from ..tactics import tactics as T
from .qtac import (
    Script,
    Tac,
    TApply,
    TExact,
    TIntro,
    TIntros,
    TInduction,
    TLeft,
    TReflexivity,
    TRewrite,
    TRight,
    TSimpl,
    TSplit,
    TSymmetry,
)


class ScriptError(Exception):
    """Raised when a decompiled script fails to replay."""


def run_script(env: Environment, statement: Term, script: Script) -> Term:
    """Replay ``script`` against ``statement``; return the checked proof."""
    with span("replay"):
        proof = Proof(env, statement)
        _run(proof, script)
        if not proof.complete:
            raise ScriptError(
                f"script left {len(proof.goals)} open goal(s)"
            )
        return proof.qed()


def _run(proof: Proof, script: Script) -> None:
    for tac in script.steps:
        _step(proof, tac)


def _step(proof: Proof, tac: Tac) -> None:
    try:
        if isinstance(tac, TIntro):
            proof.run(T.intro(tac.name))
        elif isinstance(tac, TIntros):
            proof.run(T.intros(*tac.names))
        elif isinstance(tac, TSymmetry):
            proof.run(T.symmetry())
        elif isinstance(tac, TSimpl):
            proof.run(T.simpl())
        elif isinstance(tac, TRewrite):
            proof.run(T.rewrite(tac.proof, rev=tac.rev))
        elif isinstance(tac, TApply):
            proof.run(T.apply(tac.term))
        elif isinstance(tac, TExact):
            proof.run(T.exact(tac.term))
        elif isinstance(tac, TReflexivity):
            proof.run(T.reflexivity())
        elif isinstance(tac, TLeft):
            proof.run(T.left())
        elif isinstance(tac, TRight):
            proof.run(T.right())
        elif isinstance(tac, TSplit):
            proof.run(T.split())
            _run(proof, tac.branches[0])
            _run(proof, tac.branches[1])
        elif isinstance(tac, TInduction):
            proof.run(T.induction(tac.scrut, names=list(tac.case_names)))
            for case in tac.cases:
                _run(proof, case)
        else:
            raise ScriptError(f"unknown tactic {tac!r}")
    except TacticError as exc:
        raise ScriptError(f"tactic {tac!r} failed: {exc}") from exc
