"""Term-shape gauges: node count and binder depth.

The paper attributes Pumpkin Pi's slow cases to term *size* blowup
(Section 4.4: caching "even intermediate subterms" to stay within ~10 s);
these gauges let spans record how big the terms flowing through each
phase actually are.  Both walks use an explicit stack, like the hot
kernel traversals, so deep terms cannot hit Python's recursion limit.

Sharing note: hash-consed terms are DAGs, and these gauges deliberately
measure the *tree* view (every path counted), because tree size is what
reduction and transformation costs track.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..kernel.term import App, Elim, Lam, Pi, Term, register_term_cache


def _children(term: Term) -> Tuple[Term, ...]:
    if isinstance(term, App):
        return (term.fn, term.arg)
    if isinstance(term, Lam):
        return (term.domain, term.body)
    if isinstance(term, Pi):
        return (term.domain, term.codomain)
    if isinstance(term, Elim):
        return (term.motive,) + tuple(term.cases) + (term.scrut,)
    return ()


# Tree size and depth compose bottom-up, so both are memoized per node
# identity (the value pins the node, like the kernel's term caches):
# on the hash-consed arena a shared subterm is measured once, where the
# naive walk re-counts every path — exponential blowup on DAG-shaped
# terms, and a real cost when gauges run inside traced hot spans.
_SIZE_MEMO: Dict[int, tuple] = register_term_cache({})
_DEPTH_MEMO: Dict[int, tuple] = register_term_cache({})
_MEMO_MAX = 1 << 20


def _measure(term: Term, memo: Dict[int, tuple], combine) -> int:
    entry = memo.get(id(term))
    if entry is not None:
        return entry[1]
    if len(memo) >= _MEMO_MAX:
        memo.clear()
    stack: List[Tuple[Term, bool]] = [(term, False)]
    while stack:
        node, ready = stack.pop()
        if not ready:
            if id(node) in memo:
                continue
            stack.append((node, True))
            for child in _children(node):
                if id(child) not in memo:
                    stack.append((child, False))
            continue
        memo[id(node)] = (
            node,
            combine([memo[id(c)][1] for c in _children(node)]),
        )
    return memo[id(term)][1]


def term_size(term: Term) -> int:
    """Number of nodes in the term, viewed as a tree."""
    return _measure(term, _SIZE_MEMO, lambda sizes: 1 + sum(sizes))


def term_depth(term: Term) -> int:
    """Longest path from the root to a leaf, viewed as a tree."""
    return _measure(term, _DEPTH_MEMO, lambda depths: 1 + max(depths, default=0))


def binder_depth(term: Term) -> int:
    """Longest chain of binders (Lam/Pi bodies) from the root."""
    deepest = 0
    stack: List[Tuple[Term, int]] = [(term, 0)]
    while stack:
        node, depth = stack.pop()
        if depth > deepest:
            deepest = depth
        if isinstance(node, Lam):
            stack.append((node.domain, depth))
            stack.append((node.body, depth + 1))
        elif isinstance(node, Pi):
            stack.append((node.domain, depth))
            stack.append((node.codomain, depth + 1))
        else:
            for child in _children(node):
                stack.append((child, depth))
    return deepest


__all__ = ["binder_depth", "term_depth", "term_size"]
