"""Term-shape gauges: node count and binder depth.

The paper attributes Pumpkin Pi's slow cases to term *size* blowup
(Section 4.4: caching "even intermediate subterms" to stay within ~10 s);
these gauges let spans record how big the terms flowing through each
phase actually are.  Both walks use an explicit stack, like the hot
kernel traversals, so deep terms cannot hit Python's recursion limit.

Sharing note: hash-consed terms are DAGs, and these gauges deliberately
measure the *tree* view (every path counted), because tree size is what
reduction and transformation costs track.
"""

from __future__ import annotations

from typing import List, Tuple

from ..kernel.term import App, Elim, Lam, Pi, Term


def _children(term: Term) -> Tuple[Term, ...]:
    if isinstance(term, App):
        return (term.fn, term.arg)
    if isinstance(term, Lam):
        return (term.domain, term.body)
    if isinstance(term, Pi):
        return (term.domain, term.codomain)
    if isinstance(term, Elim):
        return (term.motive,) + tuple(term.cases) + (term.scrut,)
    return ()


def term_size(term: Term) -> int:
    """Number of nodes in the term, viewed as a tree."""
    size = 0
    stack: List[Term] = [term]
    while stack:
        node = stack.pop()
        size += 1
        stack.extend(_children(node))
    return size


def term_depth(term: Term) -> int:
    """Longest path from the root to a leaf, viewed as a tree."""
    deepest = 0
    stack: List[Tuple[Term, int]] = [(term, 1)]
    while stack:
        node, depth = stack.pop()
        if depth > deepest:
            deepest = depth
        for child in _children(node):
            stack.append((child, depth + 1))
    return deepest


def binder_depth(term: Term) -> int:
    """Longest chain of binders (Lam/Pi bodies) from the root."""
    deepest = 0
    stack: List[Tuple[Term, int]] = [(term, 0)]
    while stack:
        node, depth = stack.pop()
        if depth > deepest:
            deepest = depth
        if isinstance(node, Lam):
            stack.append((node.domain, depth))
            stack.append((node.body, depth + 1))
        elif isinstance(node, Pi):
            stack.append((node.domain, depth))
            stack.append((node.codomain, depth + 1))
        else:
            for child in _children(node):
                stack.append((child, depth))
    return deepest


__all__ = ["binder_depth", "term_depth", "term_size"]
