"""Latency histograms: fixed-bucket, thread-safe, quantile-readable.

The server front end (:mod:`repro.server`) needs request-latency
distributions, not averages — a tail blowup under load is invisible in
a mean.  :class:`Histogram` is the smallest primitive that serves both
consumers: cumulative fixed buckets for the ``/metrics`` text
exposition (Prometheus-style, so any scraper draws the heatmap) and
interpolated quantiles for the bench report's p50/p95/p99 gates.

Buckets are cumulative upper bounds (``le``): an observation lands in
every bucket whose bound it does not exceed, plus the implicit ``+Inf``
bucket.  Quantiles are estimated by linear interpolation inside the
bucket that crosses the requested rank — exact for the bench's
purposes as long as the default bucket ladder brackets the latencies
it measures (sub-millisecond to ten seconds).

Everything is lock-protected: HTTP handler threads observe
concurrently while the metrics endpoint renders.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Sequence, Tuple

#: The default latency ladder, in seconds: half-decade steps from 1 ms
#: to 10 s, the range an HTTP repair request can plausibly land in.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class Histogram:
    """A cumulative fixed-bucket histogram of non-negative samples."""

    __slots__ = ("_bounds", "_counts", "_inf", "_sum", "_total", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b <= 0 for b in bounds):
            raise ValueError("bucket bounds must be positive")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self._bounds = bounds
        self._counts = [0] * len(bounds)  # per-bucket (non-cumulative)
        self._inf = 0  # samples above the largest bound
        self._sum = 0.0
        self._total = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one sample (negative values clamp to zero)."""
        value = max(0.0, float(value))
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            else:
                self._inf += 1
            self._sum += value
            self._total += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, object]:
        """A JSON-ready copy: cumulative bucket counts, sum, count."""
        with self._lock:
            counts = list(self._counts)
            inf = self._inf
            total = self._total
            acc = self._sum
        cumulative: List[int] = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return {
            "buckets": [
                {"le": bound, "count": cum}
                for bound, cum in zip(self._bounds, cumulative)
            ]
            + [{"le": "+Inf", "count": running + inf}],
            "sum": round(acc, 6),
            "count": total,
        }

    def quantile(self, q: float) -> float:
        """The estimated ``q``-quantile (``0 <= q <= 1``) in sample units.

        Linear interpolation inside the crossing bucket; samples above
        the top bound report the top bound (the estimate saturates
        rather than inventing a tail).  Zero when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        with self._lock:
            counts = list(self._counts)
            inf = self._inf
            total = self._total
        if total == 0:
            return 0.0
        rank = q * total
        running = 0.0
        previous_bound = 0.0
        for bound, count in zip(self._bounds, counts):
            if running + count >= rank and count > 0:
                within = (rank - running) / count
                return previous_bound + (bound - previous_bound) * within
            running += count
            previous_bound = bound
        # The rank falls in the +Inf bucket: saturate at the top bound.
        return self._bounds[-1] if inf else previous_bound

    def percentiles(
        self, points: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> Dict[str, float]:
        """``{"p50": .., "p95": .., "p99": ..}`` for the bench report."""
        return {
            f"p{int(round(p * 100))}": round(self.quantile(p), 6)
            for p in points
        }


__all__ = ["DEFAULT_BUCKETS", "Histogram"]
