"""Hierarchical tracing spans with kernel-counter attribution.

The pipeline of the paper is configure → transform → decompile
(Figures 6, 10, 13–15); knowing *where* repair time goes inside that
pipeline is the prerequisite for every scaling change.  This module
provides the span primitive the rest of the system is instrumented
with::

    from repro.obs import span

    with span("transform", constant="rev_app_distr"):
        ...

A span records wall time (``perf_counter_ns``), the delta of every
:data:`~repro.kernel.stats.KERNEL_STATS` counter over its extent
(interning, de Bruijn memo tables, the reduction cache), named gauges
(term size/depth, attached by the instrumentation sites), and its
children — spans opened while it was the innermost open span.

Tracing is **off by default** and costs one module-global check plus a
shared no-op context manager per call site when disabled, so the
instrumented pipeline produces byte-identical results with identical
performance.  It is switched on either by the environment variable
``REPRO_TRACE`` (mirroring ``REPRO_DISABLE_KERNEL_CACHES``) or
programmatically with :func:`set_tracing`.

Export formats live in :mod:`repro.obs.export`: Chrome trace-event JSON
(load it in ``chrome://tracing`` / Perfetto) and a flat per-phase
summary consumed by ``benchmarks/bench_pipeline_report.py`` and the CI
regression gate.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ..kernel.stats import KERNEL_STATS

#: Name of the environment variable that enables tracing at import time.
TRACE_ENV_VAR = "REPRO_TRACE"

#: True when tracing was switched on via the environment.
TRACE_ENABLED_BY_ENV: bool = os.environ.get(TRACE_ENV_VAR, "") not in ("", "0")

_enabled: bool = TRACE_ENABLED_BY_ENV


def tracing_enabled() -> bool:
    """True when spans are being recorded."""
    return _enabled


def set_tracing(enabled: bool) -> bool:
    """Enable/disable tracing; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = enabled
    return previous


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def gauge(self, name: str, value: float) -> None:
        pass


_NULL_SPAN = _NullSpan()


def _stats_mark() -> Tuple[int, int, Dict[str, Tuple[int, int]], Dict[str, int]]:
    """A cheap copy of every kernel counter, taken at span boundaries."""
    return (
        KERNEL_STATS.constructions,
        KERNEL_STATS.intern_hits,
        {
            name: (counter.hits, counter.misses)
            for name, counter in KERNEL_STATS.tables.items()
        },
        {name: event.count for name, event in KERNEL_STATS.events.items()},
    )


def _stats_delta(
    before: Tuple[int, int, Dict[str, Tuple[int, int]], Dict[str, int]],
    after: Tuple[int, int, Dict[str, Tuple[int, int]], Dict[str, int]],
) -> Dict[str, Any]:
    constructions = after[0] - before[0]
    intern_hits = after[1] - before[1]
    tables: Dict[str, Dict[str, float]] = {}
    for name, (hits, misses) in after[2].items():
        old_hits, old_misses = before[2].get(name, (0, 0))
        d_hits = hits - old_hits
        d_misses = misses - old_misses
        if d_hits or d_misses:
            total = d_hits + d_misses
            tables[name] = {
                "hits": d_hits,
                "misses": d_misses,
                "hit_rate": round(d_hits / total, 4) if total else 0.0,
            }
    events: Dict[str, int] = {}
    for name, count in after[3].items():
        d_count = count - before[3].get(name, 0)
        if d_count:
            events[name] = d_count
    return {
        "constructions": constructions,
        "intern_hits": intern_hits,
        "tables": tables,
        "events": events,
    }


class Span:
    """One timed region of the pipeline, with counters and children."""

    __slots__ = (
        "tracer",
        "name",
        "category",
        "args",
        "start_ns",
        "end_ns",
        "parent",
        "children",
        "gauges",
        "kernel",
        "_mark",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str = "phase",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.args: Dict[str, Any] = dict(args or {})
        self.start_ns = 0
        self.end_ns = 0
        self.parent: Optional[Span] = None
        self.children: List[Span] = []
        self.gauges: Dict[str, float] = {}
        self.kernel: Dict[str, Any] = {}
        self._mark: Optional[Tuple[int, int, Dict[str, Tuple[int, int]]]] = None

    # -- Context manager protocol -----------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self._mark = _stats_mark()
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.end_ns = time.perf_counter_ns()
        if self._mark is not None:
            self.kernel = _stats_delta(self._mark, _stats_mark())
            self._mark = None
        self.tracer._pop(self)
        return False

    # -- Accessors ---------------------------------------------------------

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / 1e9

    def gauge(self, name: str, value: float) -> None:
        """Attach a named measurement (term size, depth, ...) to the span."""
        self.gauges[name] = value

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable tree rooted at this span."""
        return {
            "name": self.name,
            "category": self.category,
            "args": dict(self.args),
            "wall_time_s": round(self.duration_s, 6),
            "gauges": dict(self.gauges),
            "kernel": self.kernel,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_s * 1e3:.2f}ms, "
            f"{len(self.children)} child(ren))"
        )


class Tracer:
    """Collects spans into a forest, in program order.

    ``roots`` holds completed top-level spans; ``spans`` holds every
    completed span in *start* order, which is what the Chrome exporter
    wants.  One process-wide instance (:func:`get_tracer`) backs the
    :func:`span` entry point; independent instances can be created for
    tests.
    """

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._origin_ns = time.perf_counter_ns()

    # -- Span lifecycle ----------------------------------------------------

    def span(
        self, name: str, category: str = "phase", **args: Any
    ) -> Span:
        """A new unstarted span; use as a context manager."""
        return Span(self, name, category, args)

    def _push(self, span: Span) -> None:
        if self._stack:
            span.parent = self._stack[-1]
            span.parent.children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exceptions unwinding several spans at once: pop up to
        # and including the span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.spans.append(span)
        if span.parent is None:
            self.roots.append(span)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def reset(self) -> None:
        """Drop every recorded span and restart the clock origin."""
        self.roots = []
        self.spans = []
        self._stack = []
        self._origin_ns = time.perf_counter_ns()

    # -- Aggregation -------------------------------------------------------

    def phase_summary(self) -> Dict[str, Dict[str, Any]]:
        """Aggregate every completed span by name (see :func:`summarize_spans`)."""
        return summarize_spans(self.spans)


def summarize_spans(spans: Iterable[Span]) -> Dict[str, Dict[str, Any]]:
    """Aggregate spans by name into flat per-phase entries.

    Per phase: invocation count, total wall time, summed kernel counter
    deltas with recomputed hit rates, and the max of every gauge.  This
    is the flat shape the bench reports and the CI regression gate
    consume; it works on any span collection — the whole tracer
    (:meth:`Tracer.phase_summary`) or one subtree (:meth:`Span.walk`).
    """
    phases: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        entry = phases.get(span.name)
        if entry is None:
            entry = phases[span.name] = {
                "count": 0,
                "wall_time_s": 0.0,
                "constructions": 0,
                "intern_hits": 0,
                "_tables": {},
                "_events": {},
                "gauges": {},
            }
        entry["count"] += 1
        entry["wall_time_s"] += span.duration_s
        entry["constructions"] += span.kernel.get("constructions", 0)
        entry["intern_hits"] += span.kernel.get("intern_hits", 0)
        for table, delta in span.kernel.get("tables", {}).items():
            hits, misses = entry["_tables"].get(table, (0, 0))
            entry["_tables"][table] = (
                hits + delta["hits"],
                misses + delta["misses"],
            )
        for event, count in span.kernel.get("events", {}).items():
            entry["_events"][event] = entry["_events"].get(event, 0) + count
        for gauge, value in span.gauges.items():
            previous = entry["gauges"].get(gauge)
            if previous is None or value > previous:
                entry["gauges"][gauge] = value
    for entry in phases.values():
        tables = entry.pop("_tables")
        events = entry.pop("_events")
        entry["wall_time_s"] = round(entry["wall_time_s"], 6)
        entry["cache_hit_rates"] = {
            table: round(hits / (hits + misses), 4)
            for table, (hits, misses) in sorted(tables.items())
            if hits + misses
        }
        entry["cache_lookups"] = {
            table: hits + misses
            for table, (hits, misses) in sorted(tables.items())
        }
        if events:
            entry["machine_events"] = dict(sorted(events.items()))
    return phases


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer backing :func:`span`."""
    return _TRACER


def reset_tracer() -> None:
    """Drop all recorded spans on the process-wide tracer."""
    _TRACER.reset()


def span(name: str, category: str = "phase", **args: Any):
    """A span context manager, or a shared no-op when tracing is off.

    This is the only entry point instrumentation sites use; the
    disabled path is a single global check and allocates nothing.
    """
    if not _enabled:
        return _NULL_SPAN
    return _TRACER.span(name, category, **args)


def gauge(name: str, value: float) -> None:
    """Attach a measurement to the innermost open span, if tracing."""
    if not _enabled:
        return
    current = _TRACER.current
    if current is not None:
        current.gauge(name, value)
