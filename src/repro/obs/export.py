"""Trace export: Chrome trace-event JSON and span-tree dumps.

Two formats leave the tracer:

* :func:`chrome_trace` — the Chrome trace-event format (``ph: "X"``
  complete events, microsecond timestamps), loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev.  Span args, gauges,
  and kernel-counter deltas ride along in each event's ``args``.
* :func:`span_forest` — the raw span trees as JSON, for tooling that
  wants the hierarchy (the per-phase summary in
  :meth:`~repro.obs.tracer.Tracer.phase_summary` is the flat view).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from .tracer import Tracer, get_tracer


def chrome_trace(tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """The tracer's spans as a Chrome trace-event document."""
    tracer = tracer if tracer is not None else get_tracer()
    origin = tracer._origin_ns
    events: List[Dict[str, Any]] = []
    pid = os.getpid()
    for span in tracer.spans:
        args: Dict[str, Any] = dict(span.args)
        if span.gauges:
            args["gauges"] = dict(span.gauges)
        if span.kernel:
            args["kernel"] = span.kernel
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": (span.start_ns - origin) / 1e3,
                "dur": (span.end_ns - span.start_ns) / 1e3,
                "pid": pid,
                "tid": 1,
                "args": args,
            }
        )
    events.sort(key=lambda event: event["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_forest(tracer: Optional[Tracer] = None) -> List[Dict[str, Any]]:
    """The completed top-level spans as JSON-serializable trees."""
    tracer = tracer if tracer is not None else get_tracer()
    return [root.to_dict() for root in tracer.roots]


def write_chrome_trace(path: str, tracer: Optional[Tracer] = None) -> str:
    """Write the Chrome trace-event JSON to ``path``; returns ``path``."""
    document = chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


__all__ = ["chrome_trace", "span_forest", "write_chrome_trace"]
