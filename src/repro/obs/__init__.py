"""``repro.obs`` — pipeline-wide observability.

Structured tracing for the configure → transform → decompile pipeline:
hierarchical spans with wall time, kernel cache-counter deltas, and
term-shape gauges; exporters for Chrome trace-event JSON and a flat
per-phase summary.  Off by default; enable with ``REPRO_TRACE=1`` or
:func:`set_tracing`.  See DESIGN.md, "Observability architecture".
"""

from .export import chrome_trace, span_forest, write_chrome_trace
from .hist import DEFAULT_BUCKETS, Histogram
from .metrics import binder_depth, term_depth, term_size
from .tracer import (
    TRACE_ENABLED_BY_ENV,
    TRACE_ENV_VAR,
    Span,
    Tracer,
    gauge,
    get_tracer,
    reset_tracer,
    set_tracing,
    span,
    summarize_spans,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "TRACE_ENABLED_BY_ENV",
    "TRACE_ENV_VAR",
    "Span",
    "Tracer",
    "binder_depth",
    "chrome_trace",
    "gauge",
    "get_tracer",
    "reset_tracer",
    "set_tracing",
    "span",
    "span_forest",
    "summarize_spans",
    "term_depth",
    "term_size",
    "tracing_enabled",
    "write_chrome_trace",
]
