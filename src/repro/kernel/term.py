"""Core term language: CIC_omega with primitive eliminators.

This module implements the syntax of Figure 7 of the paper:

    t ::= v | s | Pi (v : t). t | lambda (v : t). t | t t
        | Ind (v : t){t, ..., t} | Constr (i, t) | Elim(t, t){t, ..., t}

with two engineering deviations that do not change the calculus:

* Variables are de Bruijn indices (``Rel``) internally; binders carry a
  display name used only for printing.  Global names (``Const``) refer to
  definitions in a :class:`~repro.kernel.env.Environment`.
* Inductive types are declared once in the environment and referenced by
  name (``Ind``); constructors are ``Constr(name, index)``.  The primitive
  eliminator ``Elim`` carries the inductive name, the motive, one case per
  constructor, and the scrutinee.  Parameters and indices are recovered
  from the scrutinee's type during type checking and reduction.

All terms are immutable and hashable so they can be cached aggressively
(the paper emphasizes caching for performance, Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple


class TermError(Exception):
    """Raised on malformed terms or misuse of term-level operations."""


@dataclass(frozen=True)
class Term:
    """Base class for all CIC_omega terms."""

    __slots__ = ()

    # --- Convenience constructors -----------------------------------------

    def app(self, *args: "Term") -> "Term":
        """Apply this term to ``args``, left associated."""
        result: Term = self
        for arg in args:
            result = App(result, arg)
        return result

    # --- Structural helpers -----------------------------------------------

    def subterms(self) -> Iterator["Term"]:
        """Yield the immediate subterms (not recursive)."""
        return iter(())

    def is_closed(self) -> bool:
        """Return True when the term has no free de Bruijn variables."""
        return not free_rels(self)


@dataclass(frozen=True)
class Rel(Term):
    """A bound variable as a de Bruijn index (0 = innermost binder)."""

    __slots__ = ("index",)
    index: int

    def __repr__(self) -> str:
        return f"Rel({self.index})"


@dataclass(frozen=True)
class Sort(Term):
    """A sort: Prop, Set, or Type(i) for i >= 1.

    We encode Prop as level -1 and Set as level 0; ``Type(i)`` has level i.
    Cumulativity: Prop <= Set <= Type(1) <= Type(2) <= ...
    """

    __slots__ = ("level",)
    level: int

    @property
    def is_prop(self) -> bool:
        return self.level == -1

    @property
    def is_set(self) -> bool:
        return self.level == 0

    def __repr__(self) -> str:
        if self.is_prop:
            return "Prop"
        if self.is_set:
            return "Set"
        return f"Type({self.level})"


PROP = Sort(-1)
SET = Sort(0)
TYPE1 = Sort(1)


def type_sort(level: int = 1) -> Sort:
    """Return the sort ``Type(level)``."""
    if level < 1:
        raise TermError(f"Type levels start at 1, got {level}")
    return Sort(level)


@dataclass(frozen=True)
class Pi(Term):
    """Dependent product ``forall (name : domain), codomain``.

    The binder name is a display hint only: terms compare and hash up to
    alpha-equivalence (de Bruijn representation makes this free).
    """

    name: str = field(compare=False)
    domain: Term = field(compare=True)
    codomain: Term = field(compare=True)

    def subterms(self) -> Iterator[Term]:
        yield self.domain
        yield self.codomain


@dataclass(frozen=True)
class Lam(Term):
    """Abstraction ``fun (name : domain) => body``.

    As with :class:`Pi`, the binder name does not affect equality.
    """

    name: str = field(compare=False)
    domain: Term = field(compare=True)
    body: Term = field(compare=True)

    def subterms(self) -> Iterator[Term]:
        yield self.domain
        yield self.body


@dataclass(frozen=True)
class App(Term):
    """Application ``fn arg`` (binary; use :func:`mk_app` for spines)."""

    fn: Term
    arg: Term

    def subterms(self) -> Iterator[Term]:
        yield self.fn
        yield self.arg


@dataclass(frozen=True)
class Const(Term):
    """A reference to a global definition (delta-unfoldable)."""

    __slots__ = ("name",)
    name: str

    def __repr__(self) -> str:
        return f"Const({self.name!r})"


@dataclass(frozen=True)
class Ind(Term):
    """A reference to a declared inductive type family."""

    __slots__ = ("name",)
    name: str

    def __repr__(self) -> str:
        return f"Ind({self.name!r})"


@dataclass(frozen=True)
class Constr(Term):
    """The ``index``-th constructor (0-based) of inductive ``ind``."""

    __slots__ = ("ind", "index")
    ind: str
    index: int

    def __repr__(self) -> str:
        return f"Constr({self.ind!r}, {self.index})"


@dataclass(frozen=True)
class Elim(Term):
    """Primitive eliminator ``Elim(scrut, motive){cases}`` over ``ind``.

    ``motive`` has type ``Pi indices, ind params indices -> s`` and there is
    one case per constructor, in declaration order.
    """

    ind: str
    motive: Term
    cases: Tuple[Term, ...]
    scrut: Term

    def __post_init__(self) -> None:
        if not isinstance(self.cases, tuple):
            object.__setattr__(self, "cases", tuple(self.cases))

    def subterms(self) -> Iterator[Term]:
        yield self.motive
        yield from self.cases
        yield self.scrut


# ---------------------------------------------------------------------------
# Spine helpers
# ---------------------------------------------------------------------------


# ---------------------------------------------------------------------------
# Hash caching
# ---------------------------------------------------------------------------
#
# Terms are hashed constantly (transformation caches, matching tables).
# The dataclass-generated __hash__ walks the whole tree on every call;
# we wrap it so each node computes its hash once.  Children are hashed
# through the same wrapper, so a tree is hashed in O(size) total and O(1)
# afterwards.


def _install_cached_hash(cls) -> None:
    generated = cls.__hash__

    def cached_hash(self):
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            value = generated(self)
            object.__setattr__(self, "_hash_cache", value)
            return value

    cls.__hash__ = cached_hash


# Composite nodes (whose hash walks children) get the cache; leaves keep
# the generated O(1) hash.
for _cls in (Pi, Lam, App, Elim):
    _install_cached_hash(_cls)
del _cls


def mk_app(fn: Term, args: Sequence[Term]) -> Term:
    """Apply ``fn`` to a sequence of arguments, left associated."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def unfold_app(term: Term) -> Tuple[Term, Tuple[Term, ...]]:
    """Decompose nested applications into ``(head, args)``."""
    args: list[Term] = []
    while isinstance(term, App):
        args.append(term.arg)
        term = term.fn
    args.reverse()
    return term, tuple(args)


def mk_pis(binders: Sequence[Tuple[str, Term]], body: Term) -> Term:
    """Build ``forall binders, body`` (binders listed outermost first)."""
    result = body
    for name, ty in reversed(binders):
        result = Pi(name, ty, result)
    return result


def mk_lams(binders: Sequence[Tuple[str, Term]], body: Term) -> Term:
    """Build ``fun binders => body`` (binders listed outermost first)."""
    result = body
    for name, ty in reversed(binders):
        result = Lam(name, ty, result)
    return result


def unfold_pis(term: Term) -> Tuple[Tuple[Tuple[str, Term], ...], Term]:
    """Strip leading Pis, returning the telescope and the final body."""
    binders: list[Tuple[str, Term]] = []
    while isinstance(term, Pi):
        binders.append((term.name, term.domain))
        term = term.codomain
    return tuple(binders), term


def unfold_lams(term: Term) -> Tuple[Tuple[Tuple[str, Term], ...], Term]:
    """Strip leading lambdas, returning the telescope and the body."""
    binders: list[Tuple[str, Term]] = []
    while isinstance(term, Lam):
        binders.append((term.name, term.domain))
        term = term.body
    return tuple(binders), term


# ---------------------------------------------------------------------------
# De Bruijn operations: lifting and substitution
# ---------------------------------------------------------------------------


def lift(term: Term, amount: int, cutoff: int = 0) -> Term:
    """Shift free variables ``>= cutoff`` by ``amount``."""
    if amount == 0:
        return term
    return _lift(term, amount, cutoff)


def _lift(term: Term, amount: int, cutoff: int) -> Term:
    if isinstance(term, Rel):
        if term.index >= cutoff:
            new_index = term.index + amount
            if new_index < 0:
                raise TermError("lift produced a negative de Bruijn index")
            return Rel(new_index)
        return term
    if isinstance(term, (Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        return App(_lift(term.fn, amount, cutoff), _lift(term.arg, amount, cutoff))
    if isinstance(term, Lam):
        return Lam(
            term.name,
            _lift(term.domain, amount, cutoff),
            _lift(term.body, amount, cutoff + 1),
        )
    if isinstance(term, Pi):
        return Pi(
            term.name,
            _lift(term.domain, amount, cutoff),
            _lift(term.codomain, amount, cutoff + 1),
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            _lift(term.motive, amount, cutoff),
            tuple(_lift(case, amount, cutoff) for case in term.cases),
            _lift(term.scrut, amount, cutoff),
        )
    raise TermError(f"lift: unknown term {term!r}")


def subst(term: Term, replacement: Term, index: int = 0) -> Term:
    """Substitute ``replacement`` for ``Rel(index)`` in ``term``.

    Variables above ``index`` are shifted down by one, implementing the
    standard beta-substitution discipline.
    """
    return _subst(term, replacement, index)


def _subst(term: Term, replacement: Term, index: int) -> Term:
    if isinstance(term, Rel):
        if term.index == index:
            return lift(replacement, index)
        if term.index > index:
            return Rel(term.index - 1)
        return term
    if isinstance(term, (Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        return App(
            _subst(term.fn, replacement, index),
            _subst(term.arg, replacement, index),
        )
    if isinstance(term, Lam):
        return Lam(
            term.name,
            _subst(term.domain, replacement, index),
            _subst(term.body, replacement, index + 1),
        )
    if isinstance(term, Pi):
        return Pi(
            term.name,
            _subst(term.domain, replacement, index),
            _subst(term.codomain, replacement, index + 1),
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            _subst(term.motive, replacement, index),
            tuple(_subst(case, replacement, index) for case in term.cases),
            _subst(term.scrut, replacement, index),
        )
    raise TermError(f"subst: unknown term {term!r}")


def subst_many(term: Term, replacements: Sequence[Term]) -> Term:
    """Substitute ``replacements[0]`` for ``Rel(0)``, ``[1]`` for ``Rel(1)``...

    All replacements are substituted simultaneously: ``replacements[i]``
    replaces ``Rel(i)`` and free variables above ``len(replacements)`` are
    shifted down accordingly.  Each replacement is interpreted in the
    context *outside* all the substituted binders.
    """
    result = term
    for replacement in replacements:
        result = subst(result, replacement, 0)
    return result


def free_rels(term: Term, cutoff: int = 0) -> frozenset:
    """Return the set of free de Bruijn indices, adjusted to ``cutoff``.

    An index ``i`` in the result means ``Rel(i + cutoff)`` occurs free when
    the term is viewed under ``cutoff`` extra binders; with the default
    cutoff this is simply the set of free indices.
    """
    out: set[int] = set()
    _free_rels(term, cutoff, out)
    return frozenset(out)


def _free_rels(term: Term, cutoff: int, out: set) -> None:
    if isinstance(term, Rel):
        if term.index >= cutoff:
            out.add(term.index - cutoff)
        return
    if isinstance(term, (Sort, Const, Ind, Constr)):
        return
    if isinstance(term, App):
        _free_rels(term.fn, cutoff, out)
        _free_rels(term.arg, cutoff, out)
        return
    if isinstance(term, Lam):
        _free_rels(term.domain, cutoff, out)
        _free_rels(term.body, cutoff + 1, out)
        return
    if isinstance(term, Pi):
        _free_rels(term.domain, cutoff, out)
        _free_rels(term.codomain, cutoff + 1, out)
        return
    if isinstance(term, Elim):
        _free_rels(term.motive, cutoff, out)
        for case in term.cases:
            _free_rels(case, cutoff, out)
        _free_rels(term.scrut, cutoff, out)
        return
    raise TermError(f"free_rels: unknown term {term!r}")


def occurs_rel(term: Term, index: int) -> bool:
    """Return True when ``Rel(index)`` occurs free in ``term``."""
    return index in free_rels(term)


def abstract_term(term: Term, target: Term, depth: int = 0) -> Term:
    """Replace occurrences of ``target`` (a closed term) with ``Rel(depth)``.

    Other free variables are shifted up by one so the result is well formed
    directly under one new binder.  Used by tactics (e.g. motive inference
    for ``rewrite`` and ``induction``) and by search procedures.
    """
    lifted = lift(term, 1, 0)
    return _replace(lifted, lift(target, 1, 0), depth, 0)


def _replace(term: Term, target: Term, rel_index: int, cutoff: int) -> Term:
    if term == lift(target, cutoff, 0):
        return Rel(rel_index + cutoff)
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        return App(
            _replace(term.fn, target, rel_index, cutoff),
            _replace(term.arg, target, rel_index, cutoff),
        )
    if isinstance(term, Lam):
        return Lam(
            term.name,
            _replace(term.domain, target, rel_index, cutoff),
            _replace(term.body, target, rel_index, cutoff + 1),
        )
    if isinstance(term, Pi):
        return Pi(
            term.name,
            _replace(term.domain, target, rel_index, cutoff),
            _replace(term.codomain, target, rel_index, cutoff + 1),
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            _replace(term.motive, target, rel_index, cutoff),
            tuple(
                _replace(case, target, rel_index, cutoff) for case in term.cases
            ),
            _replace(term.scrut, target, rel_index, cutoff),
        )
    raise TermError(f"abstract_term: unknown term {term!r}")


def replace_subterm(term: Term, old: Term, new: Term) -> Term:
    """Replace every occurrence of the closed term ``old`` with ``new``."""
    return _replace_closed(term, old, new, 0)


def _replace_closed(term: Term, old: Term, new: Term, cutoff: int) -> Term:
    if term == old:
        return lift(new, cutoff, 0) if cutoff else new
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        return App(
            _replace_closed(term.fn, old, new, cutoff),
            _replace_closed(term.arg, old, new, cutoff),
        )
    if isinstance(term, Lam):
        return Lam(
            term.name,
            _replace_closed(term.domain, old, new, cutoff),
            _replace_closed(term.body, old, new, cutoff + 1),
        )
    if isinstance(term, Pi):
        return Pi(
            term.name,
            _replace_closed(term.domain, old, new, cutoff),
            _replace_closed(term.codomain, old, new, cutoff + 1),
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            _replace_closed(term.motive, old, new, cutoff),
            tuple(
                _replace_closed(case, old, new, cutoff) for case in term.cases
            ),
            _replace_closed(term.scrut, old, new, cutoff),
        )
    raise TermError(f"replace_subterm: unknown term {term!r}")


def count_nodes(term: Term) -> int:
    """Return the number of AST nodes in ``term`` (a size metric)."""
    total = 1
    for sub in term.subterms():
        total += count_nodes(sub)
    return total


def mentions_global(term: Term, name: str) -> bool:
    """Return True when ``term`` refers to the global ``name``.

    Checks constants, inductive references, constructors, and eliminators.
    Used by repair to verify that the old type was fully removed.
    """
    if isinstance(term, Const) and term.name == name:
        return True
    if isinstance(term, Ind) and term.name == name:
        return True
    if isinstance(term, Constr) and term.ind == name:
        return True
    if isinstance(term, Elim) and term.ind == name:
        return True
    return any(mentions_global(sub, name) for sub in term.subterms())


def collect_globals(term: Term) -> frozenset:
    """Return the set of global names referenced by ``term``."""
    out: set[str] = set()
    _collect_globals(term, out)
    return frozenset(out)


def _collect_globals(term: Term, out: set) -> None:
    if isinstance(term, Const):
        out.add(term.name)
    elif isinstance(term, (Ind,)):
        out.add(term.name)
    elif isinstance(term, Constr):
        out.add(term.ind)
    elif isinstance(term, Elim):
        out.add(term.ind)
    for sub in term.subterms():
        _collect_globals(sub, out)
