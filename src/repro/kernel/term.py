"""Core term language: CIC_omega with primitive eliminators.

This module implements the syntax of Figure 7 of the paper:

    t ::= v | s | Pi (v : t). t | lambda (v : t). t | t t
        | Ind (v : t){t, ..., t} | Constr (i, t) | Elim(t, t){t, ..., t}

with two engineering deviations that do not change the calculus:

* Variables are de Bruijn indices (``Rel``) internally; binders carry a
  display name used only for printing.  Global names (``Const``) refer to
  definitions in a :class:`~repro.kernel.env.Environment`.
* Inductive types are declared once in the environment and referenced by
  name (``Ind``); constructors are ``Constr(name, index)``.  The primitive
  eliminator ``Elim`` carries the inductive name, the motive, one case per
  constructor, and the scrutinee.  Parameters and indices are recovered
  from the scrutinee's type during type checking and reduction.

All terms are immutable and hashable so they can be cached aggressively
(the paper emphasizes caching for performance, Section 4.4).

Performance architecture (see DESIGN.md, "Performance architecture"):

* **Hash consing.**  Every constructor call consults a process-wide
  intern table, so structurally equal terms built with the same display
  names are pointer-identical.  Identity makes cache keys O(1) to
  compare, maximizes sharing, and lets the rebuilders below return their
  input unchanged when no child changed.  Interning is a pure
  optimization: no code may rely on ``is`` for *correctness*, only for
  speed, because the arena is capped and can be cleared at any time.
* **Cached free-variable bounds.**  :func:`max_free_rel` lazily computes
  and caches, per node, the smallest ``n`` such that the term is closed
  under ``n`` binders.  ``lift``/``subst``/``free_rels`` use it to
  short-circuit on closed subtrees — the overwhelmingly common case for
  library terms — without walking them.
* **Memoized de Bruijn ops.**  ``lift`` and ``subst`` memoize per-node
  results in global tables keyed by ``(node, parameters)``; hash-consing
  makes those keys cheap and hit rates high.  ``free_rels`` memoizes
  whole-call results.
* **Explicit-stack traversal.**  The hot walks (``lift``, ``subst``,
  ``free_rels``, ``max_free_rel``) use an explicit stack, so terms
  thousands of binders deep do not hit Python's recursion limit.

Every layer has an ``enabled`` switch (mirroring the caching ablation of
Section 4.4): :func:`set_hash_consing`, :func:`set_term_memo`, and the
``REPRO_DISABLE_KERNEL_CACHES`` environment variable which turns
everything off at import time.  :data:`repro.kernel.stats.KERNEL_STATS`
counts constructions, intern hits, and memo hits/misses per table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .stats import CACHES_DISABLED_BY_ENV, KERNEL_STATS


class TermError(Exception):
    """Raised on malformed terms or misuse of term-level operations."""


# ---------------------------------------------------------------------------
# The term arena (hash consing)
# ---------------------------------------------------------------------------
#
# The intern table maps structural keys (class + field values, including
# display names so shared nodes never change how they print) to the
# canonical node.  It holds strong references; the cap below bounds
# memory, and clearing it is always safe because nothing relies on
# pointer identity for correctness.

_INTERN: Dict[tuple, "Term"] = {}
_INTERN_MAX = 1 << 20

_intern_enabled: bool = not CACHES_DISABLED_BY_ENV
_memo_enabled: bool = not CACHES_DISABLED_BY_ENV


def set_hash_consing(enabled: bool) -> bool:
    """Enable/disable term interning; returns the previous setting.

    Disabling does not clear the arena: already-interned nodes stay
    shared, new constructions simply allocate fresh nodes.
    """
    global _intern_enabled
    previous = _intern_enabled
    _intern_enabled = enabled
    return previous


def hash_consing_enabled() -> bool:
    return _intern_enabled


def set_term_memo(enabled: bool) -> bool:
    """Enable/disable the lift/subst/free_rels memo tables."""
    global _memo_enabled
    previous = _memo_enabled
    _memo_enabled = enabled
    return previous


def term_memo_enabled() -> bool:
    return _memo_enabled


# Memo tables living in other kernel modules (case_type, beta_reduce)
# register themselves here so one call drops every term-keyed cache.
_EXTRA_CACHES: List[dict] = []


def register_term_cache(cache: dict) -> dict:
    """Register an external term-keyed memo for :func:`clear_term_caches`."""
    _EXTRA_CACHES.append(cache)
    return cache


def clear_term_caches() -> None:
    """Drop the intern table and every term-keyed memo table."""
    _INTERN.clear()
    _LIFT_MEMO.clear()
    _SUBST_MEMO.clear()
    _FREE_MEMO.clear()
    for cache in _EXTRA_CACHES:
        cache.clear()


def intern_table_size() -> int:
    return len(_INTERN)


def _interned(key: tuple, cls) -> "Term":
    """Return the canonical node for ``key``, allocating if needed.

    Composite keys identify child terms by ``id()``, not equality:
    term equality ignores binder display names, so an equality-based
    key would unify e.g. ``App(Lam("x", ...), a)`` with
    ``App(Lam("k", ...), a)`` — and the dataclass ``__init__`` re-run
    on the shared node would overwrite its fields in place, silently
    renaming binders of every term sharing that node.  With identity
    keys a hit guarantees the children are the very same objects (the
    interned node keeps them alive, so their ids cannot be recycled),
    making the ``__init__`` re-run write back identical values.
    """
    stats = KERNEL_STATS
    stats.constructions += 1
    cached = _INTERN.get(key)
    if cached is not None:
        stats.intern_hits += 1
        return cached
    node = object.__new__(cls)
    if len(_INTERN) < _INTERN_MAX:
        _INTERN[key] = node
    return node


@dataclass(frozen=True)
class Term:
    """Base class for all CIC_omega terms."""

    __slots__ = ()

    # --- Convenience constructors -----------------------------------------

    def app(self, *args: "Term") -> "Term":
        """Apply this term to ``args``, left associated."""
        result: Term = self
        for arg in args:
            result = App(result, arg)
        return result

    # --- Structural helpers -----------------------------------------------

    def subterms(self) -> Iterator["Term"]:
        """Yield the immediate subterms (not recursive)."""
        return iter(())

    def is_closed(self) -> bool:
        """Return True when the term has no free de Bruijn variables."""
        return max_free_rel(self) == 0


@dataclass(frozen=True)
class Rel(Term):
    """A bound variable as a de Bruijn index (0 = innermost binder)."""

    __slots__ = ("index",)
    index: int

    def __new__(cls, index=None):
        if not _intern_enabled or index is None:
            return object.__new__(cls)
        try:
            return _interned((cls, index), cls)
        except TypeError:
            return object.__new__(cls)

    def __repr__(self) -> str:
        return f"Rel({self.index})"


@dataclass(frozen=True)
class Sort(Term):
    """A sort: Prop, Set, or Type(i) for i >= 1.

    We encode Prop as level -1 and Set as level 0; ``Type(i)`` has level i.
    Cumulativity: Prop <= Set <= Type(1) <= Type(2) <= ...
    """

    __slots__ = ("level",)
    level: int

    def __new__(cls, level=None):
        if not _intern_enabled or level is None:
            return object.__new__(cls)
        try:
            return _interned((cls, level), cls)
        except TypeError:
            return object.__new__(cls)

    @property
    def is_prop(self) -> bool:
        return self.level == -1

    @property
    def is_set(self) -> bool:
        return self.level == 0

    def __repr__(self) -> str:
        if self.is_prop:
            return "Prop"
        if self.is_set:
            return "Set"
        return f"Type({self.level})"


PROP = Sort(-1)
SET = Sort(0)
TYPE1 = Sort(1)


def type_sort(level: int = 1) -> Sort:
    """Return the sort ``Type(level)``."""
    if level < 1:
        raise TermError(f"Type levels start at 1, got {level}")
    return Sort(level)


@dataclass(frozen=True)
class Pi(Term):
    """Dependent product ``forall (name : domain), codomain``.

    The binder name is a display hint only: terms compare and hash up to
    alpha-equivalence (de Bruijn representation makes this free).  The
    intern key *does* include the name, so sharing never changes how a
    term pretty-prints.
    """

    name: str = field(compare=False)
    domain: Term = field(compare=True)
    codomain: Term = field(compare=True)

    def __new__(cls, name=None, domain=None, codomain=None):
        if not _intern_enabled or codomain is None:
            return object.__new__(cls)
        try:
            return _interned((cls, name, id(domain), id(codomain)), cls)
        except TypeError:
            return object.__new__(cls)

    def subterms(self) -> Iterator[Term]:
        yield self.domain
        yield self.codomain


@dataclass(frozen=True)
class Lam(Term):
    """Abstraction ``fun (name : domain) => body``.

    As with :class:`Pi`, the binder name does not affect equality.
    """

    name: str = field(compare=False)
    domain: Term = field(compare=True)
    body: Term = field(compare=True)

    def __new__(cls, name=None, domain=None, body=None):
        if not _intern_enabled or body is None:
            return object.__new__(cls)
        try:
            return _interned((cls, name, id(domain), id(body)), cls)
        except TypeError:
            return object.__new__(cls)

    def subterms(self) -> Iterator[Term]:
        yield self.domain
        yield self.body


@dataclass(frozen=True)
class App(Term):
    """Application ``fn arg`` (binary; use :func:`mk_app` for spines)."""

    fn: Term
    arg: Term

    def __new__(cls, fn=None, arg=None):
        if not _intern_enabled or arg is None:
            return object.__new__(cls)
        try:
            return _interned((cls, id(fn), id(arg)), cls)
        except TypeError:
            return object.__new__(cls)

    def subterms(self) -> Iterator[Term]:
        yield self.fn
        yield self.arg


@dataclass(frozen=True)
class Const(Term):
    """A reference to a global definition (delta-unfoldable)."""

    __slots__ = ("name",)
    name: str

    def __new__(cls, name=None):
        if not _intern_enabled or name is None:
            return object.__new__(cls)
        try:
            return _interned((cls, name), cls)
        except TypeError:
            return object.__new__(cls)

    def __repr__(self) -> str:
        return f"Const({self.name!r})"


@dataclass(frozen=True)
class Ind(Term):
    """A reference to a declared inductive type family."""

    __slots__ = ("name",)
    name: str

    def __new__(cls, name=None):
        if not _intern_enabled or name is None:
            return object.__new__(cls)
        try:
            return _interned((cls, name), cls)
        except TypeError:
            return object.__new__(cls)

    def __repr__(self) -> str:
        return f"Ind({self.name!r})"


@dataclass(frozen=True)
class Constr(Term):
    """The ``index``-th constructor (0-based) of inductive ``ind``."""

    __slots__ = ("ind", "index")
    ind: str
    index: int

    def __new__(cls, ind=None, index=None):
        if not _intern_enabled or index is None:
            return object.__new__(cls)
        try:
            return _interned((cls, ind, index), cls)
        except TypeError:
            return object.__new__(cls)

    def __repr__(self) -> str:
        return f"Constr({self.ind!r}, {self.index})"


@dataclass(frozen=True)
class Elim(Term):
    """Primitive eliminator ``Elim(scrut, motive){cases}`` over ``ind``.

    ``motive`` has type ``Pi indices, ind params indices -> s`` and there is
    one case per constructor, in declaration order.
    """

    ind: str
    motive: Term
    cases: Tuple[Term, ...]
    scrut: Term

    def __new__(cls, ind=None, motive=None, cases=None, scrut=None):
        if not _intern_enabled or scrut is None:
            return object.__new__(cls)
        try:
            return _interned(
                (
                    cls,
                    ind,
                    id(motive),
                    tuple(id(c) for c in cases),
                    id(scrut),
                ),
                cls,
            )
        except TypeError:
            return object.__new__(cls)

    def __post_init__(self) -> None:
        if not isinstance(self.cases, tuple):
            object.__setattr__(self, "cases", tuple(self.cases))

    def subterms(self) -> Iterator[Term]:
        yield self.motive
        yield from self.cases
        yield self.scrut


#: Leaf node classes: no subterms, trivially closed (except Rel).
_LEAVES = (Sort, Const, Ind, Constr)


# ---------------------------------------------------------------------------
# Hash caching
# ---------------------------------------------------------------------------
#
# Terms are hashed constantly (transformation caches, matching tables,
# the intern table itself).  The dataclass-generated __hash__ walks the
# whole tree on every call; we wrap it so each node computes its hash
# once.  Children are hashed through the same wrapper, so a tree is
# hashed in O(size) total and O(1) afterwards.


def _install_cached_hash(cls) -> None:
    generated = cls.__hash__

    def cached_hash(self):
        try:
            return object.__getattribute__(self, "_hash_cache")
        except AttributeError:
            pass
        # Fill caches bottom-up with an explicit stack so hashing a
        # deeply nested term cannot overflow the recursion limit: the
        # generated hash of a node only recurses one level once every
        # child already carries a cache.
        stack = [self]
        while stack:
            node = stack[-1]
            pending = [
                child
                for child in node.subterms()
                if not isinstance(child, (Rel, *_LEAVES))
                and not hasattr(child, "_hash_cache")
            ]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            if not hasattr(node, "_hash_cache"):
                object.__setattr__(
                    node, "_hash_cache", type(node).__dict__["_gen_hash"](node)
                )
        return object.__getattribute__(self, "_hash_cache")

    cls._gen_hash = generated
    cls.__hash__ = cached_hash


# Composite nodes (whose hash walks children) get the cache; leaves keep
# the generated O(1) hash.
for _cls in (Pi, Lam, App, Elim):
    _install_cached_hash(_cls)
del _cls


# ---------------------------------------------------------------------------
# Free-variable bounds (cached per node)
# ---------------------------------------------------------------------------


def _mfr_of(term: Term) -> Optional[int]:
    """The cached bound for ``term``, or None when not yet computed."""
    if isinstance(term, Rel):
        return term.index + 1
    if isinstance(term, _LEAVES):
        return 0
    return getattr(term, "_mfr", None)


def _combine_mfr(term: Term) -> int:
    """Bound for a composite node whose children are all computed."""
    if isinstance(term, App):
        return max(_mfr_of(term.fn), _mfr_of(term.arg))
    if isinstance(term, Lam):
        return max(_mfr_of(term.domain), _mfr_of(term.body) - 1, 0)
    if isinstance(term, Pi):
        return max(_mfr_of(term.domain), _mfr_of(term.codomain) - 1, 0)
    if isinstance(term, Elim):
        bound = max(_mfr_of(term.motive), _mfr_of(term.scrut))
        for case in term.cases:
            case_bound = _mfr_of(case)
            if case_bound > bound:
                bound = case_bound
        return bound
    raise TermError(f"max_free_rel: unknown term {term!r}")


def max_free_rel(term: Term) -> int:
    """Smallest ``n`` such that ``term`` is closed under ``n`` binders.

    Equivalently ``1 + max(free_rels(term))``, or 0 for a closed term.
    The value is computed once per node (iteratively, so deep terms are
    safe) and cached on the node itself; hash-consing makes the cache
    hit for every structurally repeated subterm.
    """
    if isinstance(term, Rel):
        return term.index + 1
    if isinstance(term, _LEAVES):
        return 0
    cached = getattr(term, "_mfr", None)
    if cached is not None:
        return cached
    stack = [term]
    while stack:
        t = stack[-1]
        pending = [
            child
            for child in t.subterms()
            if not isinstance(child, Rel)
            and not isinstance(child, _LEAVES)
            and getattr(child, "_mfr", None) is None
        ]
        if pending:
            stack.extend(pending)
        else:
            object.__setattr__(t, "_mfr", _combine_mfr(t))
            stack.pop()
    return term._mfr


# ---------------------------------------------------------------------------
# Spine helpers
# ---------------------------------------------------------------------------


def mk_app(fn: Term, args: Sequence[Term]) -> Term:
    """Apply ``fn`` to a sequence of arguments, left associated."""
    result = fn
    for arg in args:
        result = App(result, arg)
    return result


def unfold_app(term: Term) -> Tuple[Term, Tuple[Term, ...]]:
    """Decompose nested applications into ``(head, args)``."""
    args: list[Term] = []
    while isinstance(term, App):
        args.append(term.arg)
        term = term.fn
    args.reverse()
    return term, tuple(args)


def mk_pis(binders: Sequence[Tuple[str, Term]], body: Term) -> Term:
    """Build ``forall binders, body`` (binders listed outermost first)."""
    result = body
    for name, ty in reversed(binders):
        result = Pi(name, ty, result)
    return result


def mk_lams(binders: Sequence[Tuple[str, Term]], body: Term) -> Term:
    """Build ``fun binders => body`` (binders listed outermost first)."""
    result = body
    for name, ty in reversed(binders):
        result = Lam(name, ty, result)
    return result


def unfold_pis(term: Term) -> Tuple[Tuple[Tuple[str, Term], ...], Term]:
    """Strip leading Pis, returning the telescope and the final body."""
    binders: list[Tuple[str, Term]] = []
    while isinstance(term, Pi):
        binders.append((term.name, term.domain))
        term = term.codomain
    return tuple(binders), term


def unfold_lams(term: Term) -> Tuple[Tuple[Tuple[str, Term], ...], Term]:
    """Strip leading lambdas, returning the telescope and the body."""
    binders: list[Tuple[str, Term]] = []
    while isinstance(term, Lam):
        binders.append((term.name, term.domain))
        term = term.body
    return tuple(binders), term


# ---------------------------------------------------------------------------
# De Bruijn operations: lifting and substitution
# ---------------------------------------------------------------------------
#
# Both operations share one explicit-stack rebuilder parameterized by a
# leaf action on free Rels.  The rebuilder short-circuits any subtree
# closed under the current cutoff, reuses the input node when no child
# changed, and memoizes per-node results (each subtree's rewrite depends
# only on the node, the operation parameter, and the cutoff).

_LIFT_MEMO: Dict[tuple, Term] = {}
_SUBST_MEMO: Dict[tuple, Term] = {}
_FREE_MEMO: Dict[tuple, frozenset] = {}
_MEMO_MAX = 1 << 20

_LIFT_COUNTER = KERNEL_STATS.counter("lift")
_SUBST_COUNTER = KERNEL_STATS.counter("subst")
_FREE_COUNTER = KERNEL_STATS.counter("free_rels")

_VISIT, _BUILD = 0, 1


def _transform_rels(
    term: Term,
    cutoff: int,
    on_rel: Callable[[int, int], Term],
    memo: Optional[Dict[tuple, Term]] = None,
    extra: object = None,
    counter=None,
) -> Term:
    """Rewrite every free ``Rel`` in ``term`` via ``on_rel(index, cut)``.

    ``cut`` is ``cutoff`` plus the number of binders crossed; ``on_rel``
    is only called with ``index >= cut``.  Subtrees with
    ``max_free_rel <= cut`` are returned unchanged, as is any node whose
    children all come back identical.  ``memo`` (when given) caches
    per-node results under ``(id(node), extra, cut)`` — object identity
    rather than equality, because equality ignores binder display names
    and a structural key could hand an equal-but-differently-named
    result back, silently renaming the caller's binders.  Hash consing
    makes equal same-named terms pointer-identical, so identity keys
    still hit; the value pins the node (and a term-valued ``extra``) so
    ids are never recycled while the entry lives.
    """
    extra_key = id(extra) if isinstance(extra, Term) else extra
    stack = [(_VISIT, term, cutoff)]
    results: list = []
    while stack:
        tag, t, cut = stack.pop()
        if tag == _VISIT:
            if isinstance(t, Rel):
                results.append(on_rel(t.index, cut) if t.index >= cut else t)
                continue
            if isinstance(t, _LEAVES):
                results.append(t)
                continue
            if max_free_rel(t) <= cut:
                results.append(t)
                continue
            if memo is not None:
                entry = memo.get((id(t), extra_key, cut))
                if entry is not None:
                    counter.hits += 1
                    results.append(entry[-1])
                    continue
                counter.misses += 1
            stack.append((_BUILD, t, cut))
            if isinstance(t, App):
                stack.append((_VISIT, t.arg, cut))
                stack.append((_VISIT, t.fn, cut))
            elif isinstance(t, Lam):
                stack.append((_VISIT, t.body, cut + 1))
                stack.append((_VISIT, t.domain, cut))
            elif isinstance(t, Pi):
                stack.append((_VISIT, t.codomain, cut + 1))
                stack.append((_VISIT, t.domain, cut))
            elif isinstance(t, Elim):
                stack.append((_VISIT, t.scrut, cut))
                for case in reversed(t.cases):
                    stack.append((_VISIT, case, cut))
                stack.append((_VISIT, t.motive, cut))
            else:
                raise TermError(f"unknown term {t!r}")
        else:  # _BUILD: children results are on the results stack
            if isinstance(t, App):
                arg = results.pop()
                fn = results.pop()
                out = t if (fn is t.fn and arg is t.arg) else App(fn, arg)
            elif isinstance(t, Lam):
                body = results.pop()
                domain = results.pop()
                out = (
                    t
                    if (domain is t.domain and body is t.body)
                    else Lam(t.name, domain, body)
                )
            elif isinstance(t, Pi):
                codomain = results.pop()
                domain = results.pop()
                out = (
                    t
                    if (domain is t.domain and codomain is t.codomain)
                    else Pi(t.name, domain, codomain)
                )
            else:  # Elim
                scrut = results.pop()
                cases = [results.pop() for _ in t.cases]
                cases.reverse()
                motive = results.pop()
                if (
                    motive is t.motive
                    and scrut is t.scrut
                    and all(a is b for a, b in zip(cases, t.cases))
                ):
                    out = t
                else:
                    out = Elim(t.ind, motive, tuple(cases), scrut)
            if memo is not None:
                if len(memo) >= _MEMO_MAX:
                    memo.clear()
                # The value pins the key's referents so their ids stay
                # valid for the lifetime of the entry.
                memo[(id(t), extra_key, cut)] = (t, extra, out)
            results.append(out)
    return results[0]


def lift(term: Term, amount: int, cutoff: int = 0) -> Term:
    """Shift free variables ``>= cutoff`` by ``amount``."""
    if amount == 0 or max_free_rel(term) <= cutoff:
        return term

    def on_rel(index: int, cut: int) -> Term:
        new_index = index + amount
        if new_index < 0:
            raise TermError("lift produced a negative de Bruijn index")
        return Rel(new_index)

    if _memo_enabled:
        return _transform_rels(
            term, cutoff, on_rel, _LIFT_MEMO, amount, _LIFT_COUNTER
        )
    return _transform_rels(term, cutoff, on_rel)


def subst(term: Term, replacement: Term, index: int = 0) -> Term:
    """Substitute ``replacement`` for ``Rel(index)`` in ``term``.

    Variables above ``index`` are shifted down by one, implementing the
    standard beta-substitution discipline.
    """
    if max_free_rel(term) <= index:
        return term

    def on_rel(i: int, cut: int) -> Term:
        if i == cut:
            return lift(replacement, cut)
        return Rel(i - 1)

    if _memo_enabled:
        return _transform_rels(
            term, index, on_rel, _SUBST_MEMO, replacement, _SUBST_COUNTER
        )
    return _transform_rels(term, index, on_rel)


def subst_many(term: Term, replacements: Sequence[Term]) -> Term:
    """Substitute ``replacements[0]`` for ``Rel(0)``, ``[1]`` for ``Rel(1)``...

    All replacements are substituted simultaneously: ``replacements[i]``
    replaces ``Rel(i)`` and free variables above ``len(replacements)`` are
    shifted down accordingly.  Each replacement is interpreted in the
    context *outside* all the substituted binders, so a replacement that
    mentions a ``Rel`` is never itself rewritten by a later substitution
    (one-pass parallel substitution, unlike a sequential fold of
    :func:`subst`).
    """
    replacements = tuple(replacements)
    if not replacements:
        return term
    count = len(replacements)
    if max_free_rel(term) == 0:
        return term

    def on_rel(i: int, cut: int) -> Term:
        j = i - cut
        if j < count:
            return lift(replacements[j], cut)
        return Rel(i - count)

    return _transform_rels(term, 0, on_rel)


def free_rels(term: Term, cutoff: int = 0) -> frozenset:
    """Return the set of free de Bruijn indices, adjusted to ``cutoff``.

    An index ``i`` in the result means ``Rel(i + cutoff)`` occurs free when
    the term is viewed under ``cutoff`` extra binders; with the default
    cutoff this is simply the set of free indices.
    """
    if max_free_rel(term) <= cutoff:
        return frozenset()
    # Identity keys (the value pins the term): the result is a set of
    # indices, so structural keys would be name-safe too, but id keys
    # skip hashing freshly built trees — a real cost on the transformer
    # hot path, where most probed terms were just constructed.
    key = None
    if _memo_enabled:
        key = (id(term), cutoff)
        cached = _FREE_MEMO.get(key)
        if cached is not None:
            _FREE_COUNTER.hits += 1
            return cached[1]
        _FREE_COUNTER.misses += 1
    out: set = set()
    stack = [(term, cutoff)]
    while stack:
        t, cut = stack.pop()
        if isinstance(t, Rel):
            if t.index >= cut:
                out.add(t.index - cut)
            continue
        if isinstance(t, _LEAVES) or max_free_rel(t) <= cut:
            continue
        if isinstance(t, App):
            stack.append((t.fn, cut))
            stack.append((t.arg, cut))
        elif isinstance(t, Lam):
            stack.append((t.domain, cut))
            stack.append((t.body, cut + 1))
        elif isinstance(t, Pi):
            stack.append((t.domain, cut))
            stack.append((t.codomain, cut + 1))
        elif isinstance(t, Elim):
            stack.append((t.motive, cut))
            for case in t.cases:
                stack.append((case, cut))
            stack.append((t.scrut, cut))
        else:
            raise TermError(f"free_rels: unknown term {t!r}")
    result = frozenset(out)
    if key is not None:
        if len(_FREE_MEMO) >= _MEMO_MAX:
            _FREE_MEMO.clear()
        _FREE_MEMO[key] = (term, result)
    return result


def occurs_rel(term: Term, index: int) -> bool:
    """Return True when ``Rel(index)`` occurs free in ``term``."""
    return index in free_rels(term)


def abstract_term(term: Term, target: Term, depth: int = 0) -> Term:
    """Replace occurrences of ``target`` (a closed term) with ``Rel(depth)``.

    Other free variables are shifted up by one so the result is well formed
    directly under one new binder.  Used by tactics (e.g. motive inference
    for ``rewrite`` and ``induction``) and by search procedures.
    """
    lifted = lift(term, 1, 0)
    return _replace(lifted, lift(target, 1, 0), depth, 0)


def _replace(term: Term, target: Term, rel_index: int, cutoff: int) -> Term:
    if term == lift(target, cutoff, 0):
        return Rel(rel_index + cutoff)
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        return App(
            _replace(term.fn, target, rel_index, cutoff),
            _replace(term.arg, target, rel_index, cutoff),
        )
    if isinstance(term, Lam):
        return Lam(
            term.name,
            _replace(term.domain, target, rel_index, cutoff),
            _replace(term.body, target, rel_index, cutoff + 1),
        )
    if isinstance(term, Pi):
        return Pi(
            term.name,
            _replace(term.domain, target, rel_index, cutoff),
            _replace(term.codomain, target, rel_index, cutoff + 1),
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            _replace(term.motive, target, rel_index, cutoff),
            tuple(
                _replace(case, target, rel_index, cutoff) for case in term.cases
            ),
            _replace(term.scrut, target, rel_index, cutoff),
        )
    raise TermError(f"abstract_term: unknown term {term!r}")


def replace_subterm(term: Term, old: Term, new: Term) -> Term:
    """Replace every occurrence of the closed term ``old`` with ``new``."""
    return _replace_closed(term, old, new, 0)


def _replace_closed(term: Term, old: Term, new: Term, cutoff: int) -> Term:
    if term == old:
        return lift(new, cutoff, 0) if cutoff else new
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        return App(
            _replace_closed(term.fn, old, new, cutoff),
            _replace_closed(term.arg, old, new, cutoff),
        )
    if isinstance(term, Lam):
        return Lam(
            term.name,
            _replace_closed(term.domain, old, new, cutoff),
            _replace_closed(term.body, old, new, cutoff + 1),
        )
    if isinstance(term, Pi):
        return Pi(
            term.name,
            _replace_closed(term.domain, old, new, cutoff),
            _replace_closed(term.codomain, old, new, cutoff + 1),
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            _replace_closed(term.motive, old, new, cutoff),
            tuple(
                _replace_closed(case, old, new, cutoff) for case in term.cases
            ),
            _replace_closed(term.scrut, old, new, cutoff),
        )
    raise TermError(f"replace_subterm: unknown term {term!r}")


def count_nodes(term: Term) -> int:
    """Return the number of AST nodes in ``term`` (a size metric)."""
    total = 0
    stack = [term]
    while stack:
        t = stack.pop()
        total += 1
        stack.extend(t.subterms())
    return total


_GLOBALS_MEMO: Dict[int, tuple] = register_term_cache({})
_GLOBALS_COUNTER = KERNEL_STATS.counter("globals")


def mentions_global(term: Term, name: str) -> bool:
    """Return True when ``term`` refers to the global ``name``.

    Checks constants, inductive references, constructors, and eliminators.
    Used by repair to verify that the old type was fully removed.  With
    the memo layers on, this is a set-membership test against the
    memoized :func:`collect_globals` — repair probes the same bodies for
    every old global and again per dependency scan, so one walk serves
    them all.
    """
    if _memo_enabled:
        return name in collect_globals(term)
    stack = [term]
    while stack:
        t = stack.pop()
        if isinstance(t, (Const, Ind)) and t.name == name:
            return True
        if isinstance(t, (Constr, Elim)) and t.ind == name:
            return True
        stack.extend(t.subterms())
    return False


_EMPTY_GLOBALS = frozenset()
_NAME_GLOBALS: Dict[str, frozenset] = {}


def collect_globals(term: Term) -> frozenset:
    """Return the set of global names referenced by ``term``.

    Memoized per node identity for *every* node of the walk, bottom-up
    (values pin the nodes, like the other id-keyed term caches), so a
    query for any subterm afterwards is a dict hit — the transformer's
    trigger-global skip probes every node of a term, which would be
    quadratic with a root-only memo.  Child sets are reused rather than
    re-unioned whenever a node adds no name of its own, so deep terms
    over few globals share one frozenset.
    """
    if not _memo_enabled:
        out: set = set()
        walk = [term]
        while walk:
            t = walk.pop()
            if isinstance(t, (Const, Ind)):
                out.add(t.name)
            elif isinstance(t, (Constr, Elim)):
                out.add(t.ind)
            walk.extend(t.subterms())
        return frozenset(out)
    memo = _GLOBALS_MEMO
    entry = memo.get(id(term))
    if entry is not None:
        _GLOBALS_COUNTER.hits += 1
        return entry[1]
    _GLOBALS_COUNTER.misses += 1
    if len(memo) >= _MEMO_MAX:
        memo.clear()
    stack = [(term, False)]
    while stack:
        t, ready = stack.pop()
        if not ready:
            if id(t) in memo:
                continue
            stack.append((t, True))
            for sub in t.subterms():
                if id(sub) not in memo:
                    stack.append((sub, False))
            continue
        own = None
        if isinstance(t, (Const, Ind)):
            own = t.name
        elif isinstance(t, (Constr, Elim)):
            own = t.ind
        result = _EMPTY_GLOBALS
        fresh = False
        for sub in t.subterms():
            child = memo[id(sub)][1]
            if not child:
                continue
            if not result:
                result = child
            elif child is not result and not (child <= result):
                if not fresh:
                    result = set(result)
                    fresh = True
                result |= child
        if own is not None and own not in result:
            if fresh:
                result.add(own)
            else:
                single = _NAME_GLOBALS.get(own)
                if single is None:
                    single = _NAME_GLOBALS[own] = frozenset((own,))
                if result:
                    result = set(result)
                    result.add(own)
                    fresh = True
                else:
                    result = single
        if fresh:
            result = frozenset(result)
        memo[id(t)] = (t, result)
    return memo[id(term)][1]
