"""The CIC_omega kernel: terms, reduction, conversion, type checking.

This package implements the calculus of Figure 7 of *Proof Repair Across
Type Equivalences* — the substrate on which the Pumpkin Pi transformation
operates.  Everything above it (the configuration, the transformation, the
decompiler, the tactic engine) manipulates the terms defined here and
relies on :func:`repro.kernel.typecheck.check` as the final arbiter of
correctness, mirroring how the Coq kernel vets plugin output.
"""

from .context import Context
from .convert import conv, sub
from .env import ConstantDecl, EnvError, Environment
from .inductive import (
    ConstructorDecl,
    InductiveDecl,
    InductiveError,
    case_type,
    constructor_args_and_indices,
)
from .pretty import pretty
from .reduce import beta_iota_reduce, beta_reduce, nf, whnf
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    PROP,
    Pi,
    Rel,
    SET,
    Sort,
    TYPE1,
    Term,
    TermError,
    abstract_term,
    collect_globals,
    count_nodes,
    free_rels,
    lift,
    mentions_global,
    mk_app,
    mk_lams,
    mk_pis,
    occurs_rel,
    replace_subterm,
    subst,
    subst_many,
    type_sort,
    unfold_app,
    unfold_lams,
    unfold_pis,
)
from .typecheck import TypeError_, check, infer, infer_sort, typecheck_closed

__all__ = [
    "App",
    "Const",
    "ConstantDecl",
    "Constr",
    "ConstructorDecl",
    "Context",
    "Elim",
    "EnvError",
    "Environment",
    "Ind",
    "InductiveDecl",
    "InductiveError",
    "Lam",
    "PROP",
    "Pi",
    "Rel",
    "SET",
    "Sort",
    "TYPE1",
    "Term",
    "TermError",
    "TypeError_",
    "abstract_term",
    "beta_iota_reduce",
    "beta_reduce",
    "case_type",
    "check",
    "collect_globals",
    "constructor_args_and_indices",
    "conv",
    "count_nodes",
    "free_rels",
    "infer",
    "infer_sort",
    "lift",
    "mentions_global",
    "mk_app",
    "mk_lams",
    "mk_pis",
    "nf",
    "occurs_rel",
    "pretty",
    "replace_subterm",
    "sub",
    "subst",
    "subst_many",
    "type_sort",
    "typecheck_closed",
    "unfold_app",
    "unfold_lams",
    "unfold_pis",
    "whnf",
]
