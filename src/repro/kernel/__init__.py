"""The CIC_omega kernel: terms, reduction, conversion, type checking.

This package implements the calculus of Figure 7 of *Proof Repair Across
Type Equivalences* — the substrate on which the Pumpkin Pi transformation
operates.  Everything above it (the configuration, the transformation, the
decompiler, the tactic engine) manipulates the terms defined here and
relies on :func:`repro.kernel.typecheck.check` as the final arbiter of
correctness, mirroring how the Coq kernel vets plugin output.
"""

from .context import Context
from .convert import conv, sub
from .env import ConstantDecl, EnvError, Environment
from .fastpath import (
    TRANSFORM_FAST_DISABLED_BY_ENV,
    set_transform_fast,
    transform_fast_enabled,
)
from .machine import NBE_DISABLED_BY_ENV, nbe_enabled, set_nbe
from .inductive import (
    ConstructorDecl,
    InductiveDecl,
    InductiveError,
    case_type,
    constructor_args_and_indices,
)
from .pretty import pretty
from .reduce import beta_iota_reduce, beta_reduce, nf, whnf
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    PROP,
    Pi,
    Rel,
    SET,
    Sort,
    TYPE1,
    Term,
    TermError,
    abstract_term,
    collect_globals,
    clear_term_caches,
    count_nodes,
    free_rels,
    hash_consing_enabled,
    lift,
    max_free_rel,
    mentions_global,
    mk_app,
    mk_lams,
    mk_pis,
    occurs_rel,
    replace_subterm,
    set_hash_consing,
    set_term_memo,
    subst,
    subst_many,
    term_memo_enabled,
    type_sort,
    unfold_app,
    unfold_lams,
    unfold_pis,
)
# NOTE: .snapshot is deliberately NOT imported here — it is runnable as
# ``python -m repro.kernel.snapshot`` and importing it at package load
# would make runpy warn about the module already being in sys.modules.
from .codec import SnapshotError, decode_term, encode_term
from .env import ReductionCache, set_reduction_cache_default
from .stats import KERNEL_STATS, CacheCounter, EventCounter, KernelStats
from .typecheck import TypeError_, check, infer, infer_sort, typecheck_closed

__all__ = [
    "App",
    "Const",
    "ConstantDecl",
    "Constr",
    "ConstructorDecl",
    "Context",
    "Elim",
    "EnvError",
    "Environment",
    "Ind",
    "InductiveDecl",
    "InductiveError",
    "Lam",
    "PROP",
    "Pi",
    "Rel",
    "SET",
    "SnapshotError",
    "Sort",
    "TYPE1",
    "Term",
    "TermError",
    "TypeError_",
    "KERNEL_STATS",
    "CacheCounter",
    "EventCounter",
    "KernelStats",
    "NBE_DISABLED_BY_ENV",
    "TRANSFORM_FAST_DISABLED_BY_ENV",
    "ReductionCache",
    "abstract_term",
    "beta_iota_reduce",
    "beta_reduce",
    "case_type",
    "check",
    "clear_term_caches",
    "collect_globals",
    "constructor_args_and_indices",
    "conv",
    "count_nodes",
    "decode_term",
    "encode_term",
    "free_rels",
    "hash_consing_enabled",
    "infer",
    "infer_sort",
    "lift",
    "max_free_rel",
    "mentions_global",
    "mk_app",
    "mk_lams",
    "mk_pis",
    "nbe_enabled",
    "nf",
    "occurs_rel",
    "pretty",
    "replace_subterm",
    "set_hash_consing",
    "set_nbe",
    "set_reduction_cache_default",
    "set_term_memo",
    "set_transform_fast",
    "sub",
    "subst",
    "subst_many",
    "term_memo_enabled",
    "transform_fast_enabled",
    "type_sort",
    "typecheck_closed",
    "unfold_app",
    "unfold_lams",
    "unfold_pis",
    "whnf",
]
