"""Environment snapshot/restore: warm-start state for service workers.

A *snapshot pack* is one binary file holding any number of named
environments — typically the stdlib plus every case-study setup — that
share a single string table and term node table (see
:mod:`repro.kernel.codec`), so the stdlib terms common to all six case
environments are written once, exactly as they are shared in the arena.
Each entry records:

* the entry **key** (the dotted setup reference the service schedules
  jobs under, e.g. ``repro.service.cases:replica_env``),
* the **fingerprint** of the setup module at snapshot time (the same
  :func:`repro.service.job.fingerprint_source` hash job keys embed), so
  a stale snapshot is *detected and bypassed*, never silently used,
* every declaration — constants **including the auto-derived
  ``<name>_rect`` recursors** (serialized as plain constants) and
  inductive families — in declaration order, and
* the serializable families of the environment's
  :class:`~repro.kernel.env.ReductionCache`.

Restoring builds a **fresh** :class:`~repro.kernel.env.Environment` per
call through :meth:`Environment.from_parts`: declarations are inserted
directly, with no ``infer``/``check``/positivity re-elaboration — the
KernelStats-pinned zero-rebuild test holds the kernel to that.

Cache serialization and the invalidation story
----------------------------------------------

The reduction cache's keys mix structural data with ``id()``-identities
that are meaningless across processes.  But every identity-keyed entry
*pins the referenced terms in its value* (that is what keeps the ids
stable in-process), so each entry can be written as decoded-term
references plus primitives and **re-keyed at load time using the
kernel's own key builders** (``_whnf_key``/``_nf_key``/the literal tag
tuples).  Hash consing makes the decoded terms pointer-identical to
anything the warm process builds later, so the restored entries hit.

Families carried: ``whnf``, ``nf``, ``conv``, ``infer``, ``check``.
Families skipped: the NbE machine's ``machine_thunk`` /
``machine_const`` / ``machine_vconv`` entries hold live closures and
:class:`~repro.kernel.machine.Value` graphs — process-local by nature —
and are rebuilt on demand in the warm process; their absence is a
cold-cache cost, never a correctness issue.  A snapshot never outlives
an edit to its setup module: the fingerprint mismatch routes the worker
back to a scratch boot (and non-additive environment mutations clear
the restored cache exactly as they clear a scratch-built one).

CLI::

    python -m repro.kernel.snapshot OUT.snap --six-cases
    python -m repro.kernel.snapshot OUT.snap --setup repro.stdlib:make_env
    python -m repro.kernel.snapshot --inspect OUT.snap
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .codec import (
    KIND_SNAPSHOT,
    Reader,
    SnapshotError,
    TermDecoder,
    TermEncoder,
    Writer,
    read_header,
    write_header,
)
from .env import ConstantDecl, Environment
from .inductive import ConstructorDecl, InductiveDecl, Telescope
from .reduce import _nf_key, _whnf_key
from .term import Sort, Term

__all__ = [
    "SnapshotEntry",
    "SnapshotPack",
    "SnapshotError",
    "encode_pack",
    "decode_pack",
    "save_snapshot",
    "load_snapshot",
    "load_snapshot_cached",
    "main",
]


# -- Declaration records ------------------------------------------------------

_DECL_CONSTANT = 0
_DECL_INDUCTIVE = 1

# Cache-entry family tags.
_FAM_WHNF = 0
_FAM_NF = 1
_FAM_CONV = 2
_FAM_INFER = 3
_FAM_CHECK = 4

#: Reduction-cache key tags that are serialized (see module docstring
#: for why the machine_* families are not).
_SERIALIZED_FAMILIES = {
    "whnf": _FAM_WHNF,
    "nf": _FAM_NF,
    "conv": _FAM_CONV,
    "infer": _FAM_INFER,
    "check": _FAM_CHECK,
}

#: A restorable cache entry: (family, payload...) with decoded terms.
CacheEntry = Tuple[Any, ...]


def _encode_telescope(
    writer: Writer, encoder: TermEncoder, tele: Telescope
) -> None:
    writer.uvarint(len(tele))
    for name, ty in tele:
        writer.uvarint(encoder.string(name))
        writer.uvarint(encoder.add(ty))


def _decode_telescope(
    reader: Reader, decoder: TermDecoder, what: str
) -> Telescope:
    count = reader.count(f"{what} telescope size")
    entries: List[Tuple[str, Term]] = []
    for _ in range(count):
        name = decoder.string(reader, reader.uvarint(what), what)
        entries.append((name, decoder.term(reader, reader.uvarint(what), what)))
    return tuple(entries)


def _encode_decl(writer: Writer, encoder: TermEncoder, decl: object) -> None:
    if isinstance(decl, ConstantDecl):
        writer.u8(_DECL_CONSTANT)
        writer.uvarint(encoder.string(decl.name))
        flags = (1 if decl.body is not None else 0) | (
            2 if decl.opaque else 0
        )
        writer.u8(flags)
        writer.uvarint(encoder.add(decl.type))
        if decl.body is not None:
            writer.uvarint(encoder.add(decl.body))
        return
    if isinstance(decl, InductiveDecl):
        writer.u8(_DECL_INDUCTIVE)
        writer.uvarint(encoder.string(decl.name))
        _encode_telescope(writer, encoder, decl.params)
        _encode_telescope(writer, encoder, decl.indices)
        writer.uvarint(encoder.add(decl.sort))
        writer.uvarint(len(decl.constructors))
        for ctor in decl.constructors:
            writer.uvarint(encoder.string(ctor.name))
            _encode_telescope(writer, encoder, ctor.args)
            writer.uvarint(len(ctor.result_indices))
            for index_term in ctor.result_indices:
                writer.uvarint(encoder.add(index_term))
        return
    raise SnapshotError(
        f"cannot snapshot declaration of type {type(decl).__name__}"
    )


def _decode_decl(reader: Reader, decoder: TermDecoder) -> object:
    kind = reader.u8("declaration kind")
    if kind == _DECL_CONSTANT:
        what = "constant declaration"
        name = decoder.string(reader, reader.uvarint(what), what)
        flags = reader.u8(f"{what} flags")
        if flags & ~3:
            raise reader.fail(f"invalid {what} flags {flags:#x}")
        ty = decoder.term(reader, reader.uvarint(what), what)
        body: Optional[Term] = None
        if flags & 1:
            body = decoder.term(reader, reader.uvarint(what), what)
        return ConstantDecl(
            name=name, type=ty, body=body, opaque=bool(flags & 2)
        )
    if kind == _DECL_INDUCTIVE:
        what = "inductive declaration"
        name = decoder.string(reader, reader.uvarint(what), what)
        params = _decode_telescope(reader, decoder, f"{name} params")
        indices = _decode_telescope(reader, decoder, f"{name} indices")
        sort = decoder.term(reader, reader.uvarint(what), what)
        if not isinstance(sort, Sort):
            raise reader.fail(
                f"inductive {name!r} sort reference is not a Sort node"
            )
        ctor_count = reader.count(f"{name} constructor count")
        ctors: List[ConstructorDecl] = []
        for _ in range(ctor_count):
            cname = decoder.string(reader, reader.uvarint(what), what)
            args = _decode_telescope(reader, decoder, f"{name}.{cname} args")
            n_indices = reader.count(f"{name}.{cname} result indices")
            result = tuple(
                decoder.term(reader, reader.uvarint(what), what)
                for _ in range(n_indices)
            )
            ctors.append(
                ConstructorDecl(name=cname, args=args, result_indices=result)
            )
        return InductiveDecl(
            name=name,
            params=params,
            indices=indices,
            sort=sort,
            constructors=tuple(ctors),
        )
    raise reader.fail(f"unknown declaration kind {kind}")


# -- Reduction-cache records --------------------------------------------------


def _encode_frozen(
    writer: Writer, encoder: TermEncoder, frozen: FrozenSet[str]
) -> None:
    writer.uvarint(len(frozen))
    for name in sorted(frozen):
        writer.uvarint(encoder.string(name))


def _decode_frozen(
    reader: Reader, decoder: TermDecoder, what: str
) -> FrozenSet[str]:
    count = reader.count(f"{what} frozen-set size")
    return frozenset(
        decoder.string(reader, reader.uvarint(what), what)
        for _ in range(count)
    )


def _encode_entries(
    writer: Writer, encoder: TermEncoder, env: Environment
) -> int:
    """Serialize the restorable reduction-cache entries; return the
    number of entries skipped (non-serializable families)."""
    entries: List[bytes] = []
    skipped = 0
    for key, value in env.reduction_cache._store.items():
        tag = key[0] if isinstance(key, tuple) and key else None
        family = _SERIALIZED_FAMILIES.get(tag) if isinstance(tag, str) else None
        if family is None:
            skipped += 1
            continue
        entry = Writer()
        entry.u8(family)
        if family in (_FAM_WHNF, _FAM_NF):
            # Key: (tag, shape..., delta, frozen); value: (pin, result).
            # The pin rebuilds the key via the kernel's own key builder,
            # so only (pin, result, delta, frozen) need to travel.
            pin, result = value  # type: ignore[misc]
            delta, frozen = key[-2], key[-1]
            if not isinstance(delta, bool) or not isinstance(
                frozen, frozenset
            ):
                skipped += 1
                continue
            entry.uvarint(encoder.add(pin))
            entry.uvarint(encoder.add(result))
            entry.u8(1 if delta else 0)
            _encode_frozen(entry, encoder, frozen)
        elif family == _FAM_CONV:
            # Key: ("conv", t1, t2, cumulative); value: bool.
            _, t1, t2, cumulative = key
            entry.uvarint(encoder.add(t1))
            entry.uvarint(encoder.add(t2))
            entry.u8(1 if cumulative else 0)
            entry.u8(1 if value else 0)
        elif family == _FAM_INFER:
            # Key: ("infer", id(term), type_ids); value:
            # (term, ctx.entries, result) — term and entries pin the ids.
            term, ctx_entries, result = value  # type: ignore[misc]
            entry.uvarint(encoder.add(term))
            entry.uvarint(encoder.add(result))
            _encode_telescope(entry, encoder, tuple(ctx_entries))
        else:  # _FAM_CHECK
            # Key: ("check", id(term), id(expected), type_ids); value:
            # (term, expected, ctx.entries, True).
            term, expected, ctx_entries, _ok = value  # type: ignore[misc]
            entry.uvarint(encoder.add(term))
            entry.uvarint(encoder.add(expected))
            _encode_telescope(entry, encoder, tuple(ctx_entries))
        entries.append(entry.tobytes())
    writer.uvarint(len(entries))
    for data in entries:
        writer.raw(data)
    return skipped


def _decode_entries(
    reader: Reader, decoder: TermDecoder
) -> Tuple[CacheEntry, ...]:
    count = reader.count("cache entry count")
    entries: List[CacheEntry] = []
    for i in range(count):
        what = f"cache entry #{i}"
        family = reader.u8(f"{what} family")
        if family in (_FAM_WHNF, _FAM_NF):
            pin = decoder.term(reader, reader.uvarint(what), what)
            result = decoder.term(reader, reader.uvarint(what), what)
            delta = bool(reader.u8(f"{what} delta"))
            frozen = _decode_frozen(reader, decoder, what)
            entries.append((family, pin, result, delta, frozen))
        elif family == _FAM_CONV:
            t1 = decoder.term(reader, reader.uvarint(what), what)
            t2 = decoder.term(reader, reader.uvarint(what), what)
            cumulative = bool(reader.u8(f"{what} cumulative"))
            verdict = bool(reader.u8(f"{what} verdict"))
            entries.append((family, t1, t2, cumulative, verdict))
        elif family == _FAM_INFER:
            term = decoder.term(reader, reader.uvarint(what), what)
            result = decoder.term(reader, reader.uvarint(what), what)
            ctx_entries = _decode_telescope(reader, decoder, what)
            entries.append((family, term, result, ctx_entries))
        elif family == _FAM_CHECK:
            term = decoder.term(reader, reader.uvarint(what), what)
            expected = decoder.term(reader, reader.uvarint(what), what)
            ctx_entries = _decode_telescope(reader, decoder, what)
            entries.append((family, term, expected, ctx_entries))
        else:
            raise reader.fail(f"unknown cache entry family {family}")
    return tuple(entries)


def _restore_entries(
    env: Environment, entries: Sequence[CacheEntry]
) -> None:
    """Re-key the serialized entries into ``env``'s reduction cache."""
    store = env.reduction_cache._store
    for entry in entries:
        family = entry[0]
        if family in (_FAM_WHNF, _FAM_NF):
            _f, pin, result, delta, frozen = entry
            key = (
                _whnf_key(pin, delta, frozen)
                if family == _FAM_WHNF
                else _nf_key(pin, delta, frozen)
            )
            if key is not None:
                store[key] = (pin, result)
        elif family == _FAM_CONV:
            _f, t1, t2, cumulative, verdict = entry
            store[("conv", t1, t2, cumulative)] = verdict
        elif family == _FAM_INFER:
            _f, term, result, ctx_entries = entry
            type_ids = tuple(id(ty) for _name, ty in ctx_entries)
            store[("infer", id(term), type_ids)] = (
                term,
                ctx_entries,
                result,
            )
        else:  # _FAM_CHECK
            _f, term, expected, ctx_entries = entry
            type_ids = tuple(id(ty) for _name, ty in ctx_entries)
            store[("check", id(term), id(expected), type_ids)] = (
                term,
                expected,
                ctx_entries,
                True,
            )


# -- Pack assembly ------------------------------------------------------------


class SnapshotEntry:
    """One named environment inside a decoded pack.

    The entry's body (declarations + cache entries) is decoded
    *lazily* on first access: a worker booting one case environment
    pays for the shared node table plus its own entry only, not for
    every environment in the pack.  Body corruption therefore surfaces
    as :class:`SnapshotError` on first access rather than at pack-open
    time — same contract, deferred."""

    __slots__ = (
        "key",
        "fingerprint",
        "_body",
        "_decoder",
        "_decoded",
    )

    def __init__(
        self, key: str, fingerprint: str, body: bytes, decoder: TermDecoder
    ) -> None:
        self.key = key
        self.fingerprint = fingerprint
        self._body = body
        self._decoder = decoder
        self._decoded: Optional[
            Tuple[bool, Tuple[object, ...], Tuple[CacheEntry, ...]]
        ] = None

    def _parts(
        self,
    ) -> Tuple[bool, Tuple[object, ...], Tuple[CacheEntry, ...]]:
        decoded = self._decoded
        if decoded is None:
            reader = Reader(self._body)
            cache_enabled = bool(
                reader.u8(f"{self.key} entry cache flag")
            )
            decl_count = reader.count(f"{self.key} declaration count")
            decls = tuple(
                _decode_decl(reader, self._decoder)
                for _ in range(decl_count)
            )
            cache_entries = _decode_entries(reader, self._decoder)
            if reader.remaining:
                raise reader.fail(
                    f"trailing garbage in entry {self.key!r}: "
                    f"{reader.remaining} byte(s)"
                )
            decoded = self._decoded = (cache_enabled, decls, cache_entries)
        return decoded

    @property
    def cache_enabled(self) -> bool:
        return self._parts()[0]

    @property
    def decls(self) -> Tuple[object, ...]:
        return self._parts()[1]

    @property
    def cache_entries(self) -> Tuple[CacheEntry, ...]:
        return self._parts()[2]

    def build_env(self) -> Environment:
        """A fresh :class:`Environment` restored from this entry.

        Every call returns a new environment (jobs mutate theirs), but
        the declarations and terms are the shared decoded objects —
        only the dicts are per-call.  No elaboration runs here.
        """
        cache_enabled, decls, cache_entries = self._parts()
        env = Environment.from_parts(
            decls, reduction_cache=cache_enabled
        )
        if cache_enabled:
            _restore_entries(env, cache_entries)
        return env


@dataclass(frozen=True)
class SnapshotPack:
    """A decoded snapshot: named entries over one shared term table."""

    entries: Mapping[str, SnapshotEntry]
    node_count: int
    byte_size: int

    def get(self, key: str) -> Optional[SnapshotEntry]:
        return self.entries.get(key)

    def keys(self) -> Tuple[str, ...]:
        return tuple(self.entries)


def encode_pack(
    environments: Mapping[str, Tuple[Environment, str]],
) -> bytes:
    """Serialize ``{key: (env, fingerprint)}`` into one snapshot pack."""
    encoder = TermEncoder()
    sections: List[Tuple[int, int, bytes]] = []
    for key, (env, fingerprint) in environments.items():
        key_index = encoder.string(key)
        fingerprint_index = encoder.string(fingerprint)
        body = Writer()
        body.u8(1 if env.reduction_cache.enabled else 0)
        order = env.declaration_order()
        decls: List[object] = []
        for name in order:
            if env.has_inductive(name):
                decls.append(env.inductive(name))
            else:
                decls.append(env.constant(name))
        body.uvarint(len(decls))
        for decl in decls:
            _encode_decl(body, encoder, decl)
        _encode_entries(body, encoder, env)
        sections.append((key_index, fingerprint_index, body.tobytes()))
    out = Writer()
    write_header(out, KIND_SNAPSHOT)
    encoder.emit_tables(out)
    out.uvarint(len(sections))
    for key_index, fingerprint_index, body_bytes in sections:
        out.uvarint(key_index)
        out.uvarint(fingerprint_index)
        out.uvarint(len(body_bytes))
        out.raw(body_bytes)
    return out.tobytes()


def decode_pack(data: bytes) -> SnapshotPack:
    """Decode a snapshot pack's shared tables and entry directory.

    Any malformed header, table, or directory raises
    :class:`SnapshotError` immediately; per-entry bodies are validated
    lazily on first :class:`SnapshotEntry` access.
    """
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SnapshotError(
            f"snapshot input must be bytes, not {type(data).__name__}"
        )
    reader = Reader(bytes(data))
    read_header(reader, KIND_SNAPSHOT)
    decoder = TermDecoder(reader)
    env_count = reader.count("environment count")
    entries: Dict[str, SnapshotEntry] = {}
    for _ in range(env_count):
        what = "environment entry"
        key = decoder.string(reader, reader.uvarint(what), what)
        fingerprint = decoder.string(reader, reader.uvarint(what), what)
        body_len = reader.count(f"{key} entry body length")
        body = reader.raw(body_len, f"{key} entry body")
        if key in entries:
            raise SnapshotError(f"duplicate environment entry {key!r}")
        entries[key] = SnapshotEntry(
            key=key, fingerprint=fingerprint, body=body, decoder=decoder
        )
    if reader.remaining:
        raise reader.fail(
            f"trailing garbage: {reader.remaining} byte(s) after the payload"
        )
    return SnapshotPack(
        entries=entries,
        node_count=len(decoder.terms),
        byte_size=len(data),
    )


# -- File I/O with tracing ----------------------------------------------------


def save_snapshot(
    path: str, environments: Mapping[str, Tuple[Environment, str]]
) -> int:
    """Encode and atomically write a snapshot pack; return its size."""
    from ..obs import span

    with span(
        "snapshot_save", category="snapshot", path=path
    ) as save_span:
        data = encode_pack(environments)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        save_span.gauge("snapshot_bytes", float(len(data)))
        save_span.gauge("snapshot_envs", float(len(environments)))
    return len(data)


def load_snapshot(path: str) -> SnapshotPack:
    """Read and decode a snapshot pack from ``path``.

    Unreadable files surface as :class:`SnapshotError` like every other
    malformed input — callers get one exception type to gate on.
    """
    from ..obs import span

    with span(
        "snapshot_load", category="snapshot", path=path
    ) as load_span:
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise SnapshotError(
                f"cannot read snapshot {path!r}: {exc}"
            ) from exc
        pack = decode_pack(data)
        load_span.gauge("snapshot_bytes", float(pack.byte_size))
        load_span.gauge("snapshot_envs", float(len(pack.entries)))
        load_span.gauge("snapshot_nodes", float(pack.node_count))
    return pack


#: (abspath) -> ((mtime_ns, size), pack): one decode per file version
#: per process — the worker's boot path goes through here.
_PACK_CACHE: Dict[str, Tuple[Tuple[int, int], SnapshotPack]] = {}


def load_snapshot_cached(path: str) -> SnapshotPack:
    """Like :func:`load_snapshot`, memoized per (path, mtime, size)."""
    abspath = os.path.abspath(path)
    try:
        stat = os.stat(abspath)
    except OSError as exc:
        raise SnapshotError(
            f"cannot read snapshot {path!r}: {exc}"
        ) from exc
    stamp = (stat.st_mtime_ns, stat.st_size)
    cached = _PACK_CACHE.get(abspath)
    if cached is not None and cached[0] == stamp:
        return cached[1]
    pack = load_snapshot(abspath)
    _PACK_CACHE[abspath] = (stamp, pack)
    return pack


def clear_pack_cache() -> None:
    """Drop the per-process pack cache (tests)."""
    _PACK_CACHE.clear()


# -- CLI ----------------------------------------------------------------------

#: The six case-study setups plus the bare stdlib, the default pack the
#: service layer boots from.
SIX_CASE_SETUPS: Tuple[str, ...] = (
    "repro.service.cases:quickstart_env",
    "repro.service.cases:replica_env",
    "repro.service.cases:binary_env",
    "repro.service.cases:ornaments_env",
    "repro.service.cases:refactor_env",
    "repro.service.cases:galois_env",
)


def build_pack_from_refs(
    refs: Sequence[str],
) -> Dict[str, Tuple[Environment, str]]:
    """Build ``{ref: (env, fingerprint)}`` by running each setup once.

    Imports the service layer's ref resolution *lazily* — the kernel
    package has no module-level dependency on :mod:`repro.service`.
    """
    from ..service.job import JobError, fingerprint_source
    from ..service.worker import resolve_ref

    environments: Dict[str, Tuple[Environment, str]] = {}
    for ref in refs:
        if ref in environments:
            continue
        try:
            builder: Callable[[], Environment] = resolve_ref(ref)
            env = builder()
        except JobError as exc:
            raise SnapshotError(str(exc)) from exc
        if not isinstance(env, Environment):
            raise SnapshotError(
                f"setup {ref!r} returned {type(env).__name__}, "
                "not an Environment"
            )
        environments[ref] = (env, fingerprint_source(ref))
    return environments


def _inspect(path: str) -> str:
    pack = load_snapshot(path)
    lines = [
        f"snapshot {path}: {pack.byte_size} bytes, "
        f"{pack.node_count} term node(s), {len(pack.entries)} env(s)"
    ]
    for key in pack.keys():
        entry = pack.entries[key]
        lines.append(
            f"  {key}: {len(entry.decls)} decl(s), "
            f"{len(entry.cache_entries)} cache entrie(s), "
            f"fingerprint {entry.fingerprint[:12]}…"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.kernel.snapshot`` — build or inspect packs."""
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.kernel.snapshot",
        description="Build or inspect environment snapshot packs.",
    )
    parser.add_argument(
        "output",
        nargs="?",
        help="path to write the snapshot pack to",
    )
    parser.add_argument(
        "--setup",
        action="append",
        default=[],
        metavar="REF",
        help="dotted pkg.mod:fn environment builder (repeatable)",
    )
    parser.add_argument(
        "--six-cases",
        action="store_true",
        help="include the six case-study setups the service schedules",
    )
    parser.add_argument(
        "--inspect",
        default=None,
        metavar="PATH",
        help="print a summary of an existing snapshot and exit",
    )
    args = parser.parse_args(argv)
    if args.inspect:
        try:
            print(_inspect(args.inspect))
        except SnapshotError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        return 0
    refs: List[str] = list(args.setup)
    if args.six_cases:
        refs.extend(SIX_CASE_SETUPS)
    if not args.output:
        parser.error("give an output path (or --inspect PATH)")
    if not refs:
        parser.error("give at least one --setup REF or --six-cases")
    try:
        environments = build_pack_from_refs(refs)
        size = save_snapshot(args.output, environments)
    except SnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"wrote {args.output}: {size} bytes, "
        f"{len(environments)} environment(s)"
    )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
