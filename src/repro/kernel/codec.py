"""Binary codec for arena terms: the hash-consed DAG, serialized directly.

The term arena (see :mod:`repro.kernel.term`) already stores every term
as a maximally shared DAG — structurally identical subterms built with
the same display names are one node.  This codec writes that DAG as-is
instead of flattening it to a tree: a topologically ordered **node
table** in which every node appears exactly once and child fields are
back-references (indices of earlier entries), so a subterm shared by a
thousand definitions costs one record plus a thousand varints.  Decoding
rebuilds each node through the ordinary term constructors, which consult
the intern table — so in a warm process the decoded node *is* the
original arena node, and in a fresh process interning is reconstructed
as a side effect of the decode walk rather than re-derived by hashing
whole trees.

Layout (all integers are unsigned LEB128 varints unless noted)::

    header   := MAGIC(4) version(varint) kind(1)
    payload  := string_table node_table ...     # kind-specific tail
    string_table := count (len utf8_bytes)*
    node_table   := count node*
    node     := tag(1) fields...

Node records (``s#`` = string-table index, ``n#`` = node-table
back-reference, ``z`` = zigzag varint)::

    REL    idx            SORT   level:z       CONST  name:s#
    IND    name:s#        CONSTR ind:s# idx
    PI     name:s# domain:n# codomain:n#
    LAM    name:s# domain:n# body:n#
    APP    fn:n# arg:n#
    ELIM   ind:s# motive:n# ncases case:n#* scrut:n#

Error contract: every malformed input — truncated streams, flipped
bytes, dangling (forward or out-of-range) node references, oversized
length prefixes, unknown tags, trailing garbage, unsupported format
versions — raises :class:`SnapshotError` with a message naming the
offset or field.  No input may surface a raw ``struct``/``KeyError``/
``IndexError`` from the guts of the decoder; corrupt data is *refused*,
never half-loaded.

The codec is deliberately Python-version-independent: no pickling, no
marshalling, no hashing — only varints and UTF-8 — so a snapshot
written by one interpreter loads on any other (pinned by the committed
golden fixture in ``tests/fixtures/``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
)

#: File magic shared by every payload kind.
MAGIC = b"RPRO"

#: Current (and only) format version.  Readers refuse anything else.
FORMAT_VERSION = 1

#: Payload kinds following the header.
KIND_TERM = 1
KIND_SNAPSHOT = 2


class SnapshotError(TermError):
    """A snapshot or codec input was malformed, truncated, or unsupported.

    The shared error contract of :mod:`repro.kernel.codec` and
    :mod:`repro.kernel.snapshot`: loading bad bytes *refuses* with this
    error instead of crashing with a deep ``KeyError``/``IndexError``.
    """


# -- Node tags ---------------------------------------------------------------

_TAG_REL = 1
_TAG_SORT = 2
_TAG_CONST = 3
_TAG_IND = 4
_TAG_CONSTR = 5
_TAG_PI = 6
_TAG_LAM = 7
_TAG_APP = 8
_TAG_ELIM = 9


# -- Primitive writers --------------------------------------------------------


class Writer:
    """An append-only byte buffer with varint/string helpers."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, value: int) -> None:
        self.buf.append(value & 0xFF)

    def uvarint(self, value: int) -> None:
        """Unsigned LEB128."""
        if value < 0:
            raise SnapshotError(f"cannot encode negative varint {value}")
        buf = self.buf
        while value >= 0x80:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def svarint(self, value: int) -> None:
        """Signed zigzag varint (sort levels can be -1)."""
        self.uvarint((value << 1) ^ (value >> 63) if value < 0 else value << 1)

    def raw(self, data: bytes) -> None:
        self.buf.extend(data)

    def tobytes(self) -> bytes:
        return bytes(self.buf)


#: Ceiling on element counts and string lengths: a length prefix larger
#: than any input we could possibly hold is corruption, not data.
_COUNT_MAX = 1 << 31


class Reader:
    """A bounds-checked cursor over immutable bytes.

    Every read validates against the remaining length and raises
    :class:`SnapshotError` — the decoder's whole refuse-don't-crash
    contract lives here.
    """

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.data) - self.pos

    def fail(self, what: str) -> "SnapshotError":
        return SnapshotError(f"{what} (at byte {self.pos} of {len(self.data)})")

    def u8(self, what: str = "byte") -> int:
        if self.pos >= len(self.data):
            raise self.fail(f"truncated input: expected {what}")
        value = self.data[self.pos]
        self.pos += 1
        return value

    def uvarint(self, what: str = "varint") -> int:
        value = 0
        shift = 0
        while True:
            byte = self.u8(what)
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise self.fail(f"oversized varint for {what}")

    def svarint(self, what: str = "varint") -> int:
        raw = self.uvarint(what)
        return (raw >> 1) ^ -(raw & 1)

    def count(self, what: str) -> int:
        """A varint element count, sanity-capped against the remaining
        bytes (every element costs at least one byte, so a count beyond
        ``remaining`` is an oversized length prefix, not data)."""
        value = self.uvarint(what)
        if value > _COUNT_MAX or value > self.remaining:
            raise self.fail(
                f"oversized length prefix for {what}: {value} with "
                f"{self.remaining} byte(s) left"
            )
        return value

    def raw(self, length: int, what: str) -> bytes:
        if length > self.remaining:
            raise self.fail(
                f"truncated input: {what} needs {length} byte(s), "
                f"{self.remaining} left"
            )
        out = self.data[self.pos : self.pos + length]
        self.pos += length
        return out

    def string(self, what: str = "string") -> str:
        length = self.count(f"{what} length")
        data = self.raw(length, what)
        try:
            return data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise self.fail(f"invalid UTF-8 in {what}: {exc}") from None


def write_header(writer: Writer, kind: int) -> None:
    writer.raw(MAGIC)
    writer.uvarint(FORMAT_VERSION)
    writer.u8(kind)


def read_header(reader: Reader, expected_kind: int) -> None:
    """Validate magic, version, and payload kind; raise otherwise."""
    magic = reader.raw(len(MAGIC), "magic")
    if magic != MAGIC:
        raise SnapshotError(
            f"not a repro snapshot/codec stream (magic {magic!r}, "
            f"expected {MAGIC!r})"
        )
    version = reader.uvarint("format version")
    if version != FORMAT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot format version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    kind = reader.u8("payload kind")
    if kind != expected_kind:
        raise SnapshotError(
            f"unexpected payload kind {kind} (expected {expected_kind})"
        )


# -- String and node tables ---------------------------------------------------


class TermEncoder:
    """Accumulates a shared string table and a topologically ordered
    node table; every distinct arena node is written exactly once.

    ``add`` returns the node-table index for a term, interning its whole
    DAG (children first, so every child reference in the emitted table
    points backwards).  One encoder may serve many roots — a snapshot
    runs every declaration of every environment through the same encoder
    so the stdlib's terms are shared across entries on disk exactly as
    they are shared in the arena.
    """

    def __init__(self) -> None:
        self._strings: Dict[str, int] = {}
        self._string_list: List[str] = []
        self._nodes: Dict[int, int] = {}  # id(term) -> node index
        self._pins: List[Term] = []  # keeps ids valid while encoding
        self._table = Writer()
        self._count = 0

    @property
    def node_count(self) -> int:
        return self._count

    def string(self, value: str) -> int:
        index = self._strings.get(value)
        if index is None:
            index = self._strings[value] = len(self._string_list)
            self._string_list.append(value)
        return index

    def add(self, term: Term) -> int:
        """Intern ``term``'s DAG into the node table; return its index."""
        nodes = self._nodes
        cached = nodes.get(id(term))
        if cached is not None:
            return cached
        # Iterative post-order: children are emitted (and indexed)
        # before their parents, giving the topological order the decoder
        # relies on for its backwards-only reference check.
        stack: List[Term] = [term]
        while stack:
            t = stack[-1]
            if id(t) in nodes:
                stack.pop()
                continue
            pending = [c for c in t.subterms() if id(c) not in nodes]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            self._emit(t)
        return nodes[id(term)]

    def _emit(self, t: Term) -> None:
        w = self._table
        nodes = self._nodes
        if isinstance(t, Rel):
            w.u8(_TAG_REL)
            w.uvarint(t.index)
        elif isinstance(t, Sort):
            w.u8(_TAG_SORT)
            w.svarint(t.level)
        elif isinstance(t, Const):
            w.u8(_TAG_CONST)
            w.uvarint(self.string(t.name))
        elif isinstance(t, Ind):
            w.u8(_TAG_IND)
            w.uvarint(self.string(t.name))
        elif isinstance(t, Constr):
            w.u8(_TAG_CONSTR)
            w.uvarint(self.string(t.ind))
            w.uvarint(t.index)
        elif isinstance(t, Pi):
            w.u8(_TAG_PI)
            w.uvarint(self.string(t.name))
            w.uvarint(nodes[id(t.domain)])
            w.uvarint(nodes[id(t.codomain)])
        elif isinstance(t, Lam):
            w.u8(_TAG_LAM)
            w.uvarint(self.string(t.name))
            w.uvarint(nodes[id(t.domain)])
            w.uvarint(nodes[id(t.body)])
        elif isinstance(t, App):
            w.u8(_TAG_APP)
            w.uvarint(nodes[id(t.fn)])
            w.uvarint(nodes[id(t.arg)])
        elif isinstance(t, Elim):
            w.u8(_TAG_ELIM)
            w.uvarint(self.string(t.ind))
            w.uvarint(nodes[id(t.motive)])
            w.uvarint(len(t.cases))
            for case in t.cases:
                w.uvarint(nodes[id(case)])
            w.uvarint(nodes[id(t.scrut)])
        else:
            raise SnapshotError(f"cannot encode term {t!r}")
        nodes[id(t)] = self._count
        self._pins.append(t)
        self._count += 1

    def emit_tables(self, writer: Writer) -> None:
        """Write the string table then the node table."""
        writer.uvarint(len(self._string_list))
        for value in self._string_list:
            data = value.encode("utf-8")
            writer.uvarint(len(data))
            writer.raw(data)
        writer.uvarint(self._count)
        writer.raw(bytes(self._table.buf))


class TermDecoder:
    """Parses the string and node tables; hands out terms by index.

    Nodes are rebuilt through the ordinary term constructors, so in a
    process with hash consing enabled every decoded node lands in (or is
    unified with) the arena — sharing in the byte stream becomes pointer
    sharing in memory with no re-hashing of whole trees.
    """

    def __init__(self, reader: Reader) -> None:
        string_count = reader.count("string table size")
        self.strings: List[str] = [
            reader.string(f"string #{i}") for i in range(string_count)
        ]
        node_count = reader.count("node table size")
        self.terms: List[Term] = []
        for i in range(node_count):
            self.terms.append(self._decode_node(reader, i))

    def string(self, reader: Reader, index: int, what: str) -> str:
        if index >= len(self.strings):
            raise reader.fail(
                f"dangling string reference #{index} in {what} "
                f"(table has {len(self.strings)})"
            )
        return self.strings[index]

    def term(self, reader: Reader, index: int, what: str) -> Term:
        """The decoded term for a node reference (bounds-checked)."""
        if index >= len(self.terms):
            raise reader.fail(
                f"dangling node reference #{index} in {what} "
                f"(table has {len(self.terms)})"
            )
        return self.terms[index]

    def _child(self, reader: Reader, limit: int, what: str) -> Term:
        index = reader.uvarint(what)
        if index >= limit:
            raise reader.fail(
                f"dangling node reference #{index} in {what} "
                f"(only {limit} node(s) decoded so far)"
            )
        return self.terms[index]

    def _decode_node(self, reader: Reader, i: int) -> Term:
        tag = reader.u8(f"node #{i} tag")
        what = f"node #{i}"
        if tag == _TAG_REL:
            return Rel(reader.uvarint(what))
        if tag == _TAG_SORT:
            return Sort(reader.svarint(what))
        if tag == _TAG_CONST:
            return Const(self.string(reader, reader.uvarint(what), what))
        if tag == _TAG_IND:
            return Ind(self.string(reader, reader.uvarint(what), what))
        if tag == _TAG_CONSTR:
            name = self.string(reader, reader.uvarint(what), what)
            return Constr(name, reader.uvarint(what))
        if tag == _TAG_PI:
            name = self.string(reader, reader.uvarint(what), what)
            domain = self._child(reader, i, what)
            codomain = self._child(reader, i, what)
            return Pi(name, domain, codomain)
        if tag == _TAG_LAM:
            name = self.string(reader, reader.uvarint(what), what)
            domain = self._child(reader, i, what)
            body = self._child(reader, i, what)
            return Lam(name, domain, body)
        if tag == _TAG_APP:
            fn = self._child(reader, i, what)
            arg = self._child(reader, i, what)
            return App(fn, arg)
        if tag == _TAG_ELIM:
            name = self.string(reader, reader.uvarint(what), what)
            motive = self._child(reader, i, what)
            ncases = reader.count(f"{what} case count")
            cases = tuple(
                self._child(reader, i, what) for _ in range(ncases)
            )
            scrut = self._child(reader, i, what)
            return Elim(name, motive, cases, scrut)
        raise reader.fail(f"unknown node tag {tag} in {what}")


# -- Single-term convenience API ----------------------------------------------


def encode_term(term: Term) -> bytes:
    """Serialize one term (with its full shared DAG) to bytes."""
    return encode_terms([term])


def encode_terms(terms: Iterable[Term]) -> bytes:
    """Serialize several terms into one stream sharing their tables."""
    roots = list(terms)
    encoder = TermEncoder()
    indices = [encoder.add(t) for t in roots]
    writer = Writer()
    write_header(writer, KIND_TERM)
    encoder.emit_tables(writer)
    writer.uvarint(len(indices))
    for index in indices:
        writer.uvarint(index)
    return writer.tobytes()


def decode_term(data: bytes) -> Term:
    """Decode a single-term stream produced by :func:`encode_term`."""
    roots = decode_terms(data)
    if len(roots) != 1:
        raise SnapshotError(
            f"expected a single-root term stream, found {len(roots)} roots"
        )
    return roots[0]


def decode_terms(data: bytes) -> Tuple[Term, ...]:
    """Decode every root of a stream produced by :func:`encode_terms`."""
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise SnapshotError(
            f"codec input must be bytes, not {type(data).__name__}"
        )
    reader = Reader(bytes(data))
    read_header(reader, KIND_TERM)
    decoder = TermDecoder(reader)
    count = reader.count("root count")
    roots = tuple(
        decoder.term(reader, reader.uvarint("root index"), "root list")
        for _ in range(count)
    )
    if reader.remaining:
        raise reader.fail(
            f"trailing garbage: {reader.remaining} byte(s) after the payload"
        )
    return roots
