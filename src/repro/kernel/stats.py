"""Kernel-wide instrumentation counters (:class:`KernelStats`).

The paper reports that Pumpkin Pi needed aggressive caching — "even
caching intermediate subterms" (Section 4.4) — to stay inside the ~10 s
an industrial proof engineer will tolerate.  This module is the
observability half of that story: every cache layer in the kernel
(term interning, the de Bruijn memo tables, the environment-scoped
reduction cache) reports hits and misses here so the caching ablation
benchmarks can measure effectiveness the way the paper's ablation does.

All counters are process-global because the term arena itself is
process-global; :attr:`repro.kernel.env.Environment.kernel_stats`
exposes the same singleton for convenience.

Setting the environment variable ``REPRO_DISABLE_KERNEL_CACHES=1``
before import disables every cache layer at once (the ablation's "off"
configuration); all layers are behaviour-transparent, so the system
produces identical terms either way.
"""

from __future__ import annotations

import os
from typing import Dict


#: True when the ablation switch was flipped via the environment.
CACHES_DISABLED_BY_ENV: bool = os.environ.get(
    "REPRO_DISABLE_KERNEL_CACHES", ""
) not in ("", "0")


class EventCounter:
    """A monotone event count (no hit/miss structure).

    Used by the abstract machine (:mod:`repro.kernel.machine`) for
    quantities that are not cache lookups: evaluation steps, closure
    allocations, readback passes, delta unfolds avoided by the lazy
    conversion oracle.
    """

    __slots__ = ("count",)

    def __init__(self) -> None:
        self.count = 0

    def reset(self) -> None:
        self.count = 0

    def __repr__(self) -> str:
        return f"EventCounter(count={self.count})"


class CacheCounter:
    """Hit/miss counters for one memo table."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:
        return (
            f"CacheCounter(hits={self.hits}, misses={self.misses}, "
            f"hit_rate={self.hit_rate:.1%})"
        )


class KernelStats:
    """Counters for every caching layer in the kernel.

    * ``constructions`` — term constructor invocations that consulted the
      intern table (the arena's total traffic);
    * ``intern_hits`` — constructions answered with an existing node
      (structural sharing won);
    * one :class:`CacheCounter` per memo table, created on demand:
      ``lift``, ``subst``, ``free_rels`` (de Bruijn ops), ``whnf``,
      ``nf`` (reduction cache), ``conv`` (conversion), ``infer``
      (type inference), ``check`` (bidirectional verdict memo),
      ``machine_thunk`` (NbE closure sharing), ``transform_cache``
      (the Figure-10 transformer's subterm cache), ``eta_expand``
      (the transformer's fused binder eta pass), ``globals``
      (memoized :func:`~repro.kernel.term.collect_globals`);
    * one :class:`EventCounter` per machine event, created on demand:
      ``machine_steps``, ``machine_closures``, ``machine_readbacks``,
      ``machine_delta_avoided`` (see :mod:`repro.kernel.machine`).
    """

    __slots__ = ("constructions", "intern_hits", "tables", "events")

    def __init__(self) -> None:
        self.constructions = 0
        self.intern_hits = 0
        self.tables: Dict[str, CacheCounter] = {}
        self.events: Dict[str, EventCounter] = {}

    def counter(self, name: str) -> CacheCounter:
        """The counter for memo table ``name`` (created on first use)."""
        table = self.tables.get(name)
        if table is None:
            table = self.tables[name] = CacheCounter()
        return table

    def event(self, name: str) -> EventCounter:
        """The event counter ``name`` (created on first use)."""
        event = self.events.get(name)
        if event is None:
            event = self.events[name] = EventCounter()
        return event

    @property
    def intern_hit_rate(self) -> float:
        if not self.constructions:
            return 0.0
        return self.intern_hits / self.constructions

    def reset(self) -> None:
        """Zero every counter (the tables themselves are kept)."""
        self.constructions = 0
        self.intern_hits = 0
        for table in self.tables.values():
            table.reset()
        for event in self.events.values():
            event.reset()

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable copy of all counters."""
        return {
            "constructions": self.constructions,
            "intern_hits": self.intern_hits,
            "intern_hit_rate": round(self.intern_hit_rate, 4),
            "tables": {
                name: {
                    "hits": c.hits,
                    "misses": c.misses,
                    "hit_rate": round(c.hit_rate, 4),
                }
                for name, c in sorted(self.tables.items())
            },
            "events": {
                name: e.count for name, e in sorted(self.events.items())
            },
        }

    def report(self) -> str:
        """A human-readable multi-line summary."""
        lines = [
            f"constructions : {self.constructions}",
            f"intern hits   : {self.intern_hits} "
            f"({self.intern_hit_rate:.1%})",
        ]
        for name, c in sorted(self.tables.items()):
            lines.append(
                f"{name:<13} : {c.hits} hits / {c.misses} misses "
                f"({c.hit_rate:.1%})"
            )
        for name, e in sorted(self.events.items()):
            lines.append(f"{name:<13} : {e.count}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"KernelStats(constructions={self.constructions}, "
            f"intern_hits={self.intern_hits}, "
            f"tables={list(self.tables)})"
        )


#: The process-wide stats singleton used by every kernel cache layer.
KERNEL_STATS = KernelStats()
