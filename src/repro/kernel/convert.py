"""Conversion (definitional equality) and cumulativity checking.

The algorithm is whnf-directed structural comparison with:

* delta unfolding of constants (with a fast path: identical constants are
  equal without unfolding),
* eta-conversion for functions (a lambda compared with a non-lambda is
  compared with the eta-expansion of the other side), and
* cumulativity (``Prop <= Set <= Type(1) <= ...``) when used in subtype
  mode: covariant in Pi codomains, invariant in domains, like Coq.

By default conversion runs on the NbE abstract machine
(:func:`repro.kernel.machine.conv_terms`): values are compared directly,
and when both sides are applications of the *same* constant the argument
spines are compared before unfolding (the lazy delta oracle).  The
whnf-then-structural loop below is the fallback engine
(``REPRO_DISABLE_NBE=1``); both return identical booleans and share the
same cache entries.
"""

from __future__ import annotations


from . import machine
from .env import ABSENT, Environment
from .reduce import whnf
from .stats import KERNEL_STATS
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    lift,
    unfold_app,
)


_CONV_COUNTER = KERNEL_STATS.counter("conv")
_CONV_TAG = "conv"


def conv(env: Environment, t1: Term, t2: Term) -> bool:
    """Definitional equality of ``t1`` and ``t2``."""
    return _conv(env, t1, t2, cumulative=False)


def sub(env: Environment, t1: Term, t2: Term) -> bool:
    """Cumulativity: ``t1`` is convertible to a subtype of ``t2``."""
    return _conv(env, t1, t2, cumulative=True)


def _conv(env: Environment, t1: Term, t2: Term, cumulative: bool) -> bool:
    # Hash-consed terms make the identity fast path hit for any pair the
    # kernel has compared (or built) before.
    if t1 is t2 or t1 == t2:
        return True
    cache = env.reduction_cache
    key = None
    if cache.enabled:
        key = (_CONV_TAG, t1, t2, cumulative)
        hit = cache.get(key, _CONV_COUNTER)
        if hit is not ABSENT:
            return hit
    if machine.nbe_enabled():
        if _head_normal(t1) and _head_normal(t2):
            # Neither side can take a head step, so conversion is the
            # structural comparison both engines agree on — skip the
            # machine's eval/readback round trip; subterm pairs that do
            # need reduction re-enter here and pick the machine then.
            result = _conv_slow(env, t1, t2, cumulative)
        elif _same_const_spine(t1, t2):
            # Same constant head, same spine length: pairwise-convertible
            # arguments prove conversion by congruence without unfolding
            # (the machine's lazy-delta first move, minus the thunks).
            # A failed spine is inconclusive — delta may still equate
            # the sides — so only a positive answer short-circuits.
            if _spine_args_conv(env, t1, t2):
                result = True
            else:
                result = machine.conv_terms(env, t1, t2, cumulative)
        else:
            result = machine.conv_terms(env, t1, t2, cumulative)
    else:
        result = _conv_slow(env, t1, t2, cumulative)
    if key is not None:
        cache.put(key, result)
    return result


def _head_normal(t: Term) -> bool:
    """True when no delta/beta/iota step can fire at the head."""
    if type(t) is App:
        head = t.fn
        while type(head) is App:
            head = head.fn
        return not isinstance(head, (Lam, Const, Elim))
    return not isinstance(t, (Const, Elim))


def _same_const_spine(t1: Term, t2: Term) -> bool:
    """Both are applications of the same constant, equally long."""
    while type(t1) is App and type(t2) is App:
        t1 = t1.fn
        t2 = t2.fn
    return (
        type(t1) is Const and type(t2) is Const and t1.name == t2.name
    )


def _spine_args_conv(env: Environment, t1: Term, t2: Term) -> bool:
    while type(t1) is App:
        if not _conv(env, t1.arg, t2.arg, cumulative=False):
            return False
        t1 = t1.fn
        t2 = t2.fn
    return True


def _conv_slow(env: Environment, t1: Term, t2: Term, cumulative: bool) -> bool:
    t1 = whnf(env, t1)
    t2 = whnf(env, t2)
    if t1 == t2:
        return True

    # Eta for functions: compare a lambda against the expansion of the
    # other side.  (The paper assumes fully eta-expanded terms; supporting
    # eta in conversion removes that assumption from the kernel.)
    if isinstance(t1, Lam) and not isinstance(t2, Lam):
        expanded = Lam(t1.name, t1.domain, App(lift(t2, 1), Rel(0)))
        return _conv(env, t1, expanded, cumulative=False)
    if isinstance(t2, Lam) and not isinstance(t1, Lam):
        expanded = Lam(t2.name, t2.domain, App(lift(t1, 1), Rel(0)))
        return _conv(env, expanded, t2, cumulative=False)

    if isinstance(t1, Sort) and isinstance(t2, Sort):
        if cumulative:
            return t1.level <= t2.level
        return t1.level == t2.level

    if isinstance(t1, Rel) and isinstance(t2, Rel):
        return t1.index == t2.index

    if isinstance(t1, (Const, Ind)) and type(t1) is type(t2):
        if t1.name == t2.name:
            return True
        return False

    if isinstance(t1, Constr) and isinstance(t2, Constr):
        return t1.ind == t2.ind and t1.index == t2.index

    if isinstance(t1, Pi) and isinstance(t2, Pi):
        if not _conv(env, t1.domain, t2.domain, cumulative=False):
            return False
        return _conv(env, t1.codomain, t2.codomain, cumulative=cumulative)

    if isinstance(t1, Lam) and isinstance(t2, Lam):
        # Domains are checked for conversion; bodies must be convertible.
        if not _conv(env, t1.domain, t2.domain, cumulative=False):
            return False
        return _conv(env, t1.body, t2.body, cumulative=False)

    if isinstance(t1, App) and isinstance(t2, App):
        head1, args1 = unfold_app(t1)
        head2, args2 = unfold_app(t2)
        if len(args1) == len(args2) and _conv_head(env, head1, head2):
            if all(
                _conv(env, a1, a2, cumulative=False)
                for a1, a2 in zip(args1, args2)
            ):
                return True
        # Stuck applications can still be equal after unfolding a constant
        # head on either side (whnf stops at constants without bodies or
        # when the application is already weak-head normal with an
        # unfoldable-but-stuck head; that cannot happen here since whnf
        # unfolds eagerly).  Nothing more to try.
        return False

    if isinstance(t1, Elim) and isinstance(t2, Elim):
        if t1.ind != t2.ind or len(t1.cases) != len(t2.cases):
            return False
        if not _conv(env, t1.motive, t2.motive, cumulative=False):
            return False
        if not all(
            _conv(env, c1, c2, cumulative=False)
            for c1, c2 in zip(t1.cases, t2.cases)
        ):
            return False
        return _conv(env, t1.scrut, t2.scrut, cumulative=False)

    return False


def _conv_head(env: Environment, h1: Term, h2: Term) -> bool:
    """Compare heads of stuck applications."""
    if type(h1) is not type(h2):
        return False
    if isinstance(h1, Rel):
        return h1.index == h2.index
    if isinstance(h1, (Const, Ind)):
        return h1.name == h2.name
    if isinstance(h1, Constr):
        return h1.ind == h2.ind and h1.index == h2.index
    if isinstance(h1, Elim):
        return _conv(env, h1, h2, cumulative=False)
    return _conv(env, h1, h2, cumulative=False)
