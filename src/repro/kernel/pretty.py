"""Pretty printing of terms in a Gallina-like concrete syntax.

The printer is the inverse of :mod:`repro.syntax.parser` on the common
fragment; eliminators print as ``Elim[ind](scrut; motive){case, ...}``
which the parser also accepts.  When an environment is supplied,
constructors print by name (``S``, ``cons``) when the name is globally
unambiguous, and as ``ind#j`` otherwise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .context import Context
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    occurs_rel,
    unfold_app,
)

_ATOM = 0
_APP = 1
_ARROW = 2
_BINDER = 3


def pretty(term: Term, ctx: Optional[Context] = None, env=None) -> str:
    """Render ``term`` using names from ``ctx`` for free variables."""
    names = [name for name, _ in (ctx.entries if ctx else ())]
    printer = _Printer(env)
    return printer.pp(term, names, _BINDER)


class _Printer:
    def __init__(self, env) -> None:
        self._ctor_names: Dict[Tuple[str, int], str] = {}
        if env is not None:
            counts: Dict[str, int] = {}
            for decl in env.inductives():
                for ctor in decl.constructors:
                    counts[ctor.name] = counts.get(ctor.name, 0) + 1
            for decl in env.inductives():
                for j, ctor in enumerate(decl.constructors):
                    if counts[ctor.name] == 1:
                        self._ctor_names[(decl.name, j)] = ctor.name
                    else:
                        self._ctor_names[(decl.name, j)] = (
                            f"{decl.name}.{ctor.name}"
                        )

    def _ctor(self, ind: str, index: int) -> str:
        return self._ctor_names.get((ind, index), f"{ind}#{index}")

    def pp(self, term: Term, names: List[str], prec: int) -> str:
        if isinstance(term, Rel):
            if term.index < len(names):
                return names[term.index]
            return f"_rel{term.index - len(names)}"

        if isinstance(term, Sort):
            if term.is_prop:
                return "Prop"
            if term.is_set:
                return "Set"
            return f"Type{term.level}"

        if isinstance(term, (Const, Ind)):
            return term.name

        if isinstance(term, Constr):
            return self._ctor(term.ind, term.index)

        if isinstance(term, App):
            head, args = unfold_app(term)
            parts = [self.pp(head, names, _ATOM)]
            parts.extend(self.pp(a, names, _ATOM) for a in args)
            rendered = " ".join(parts)
            return _paren(rendered, prec < _APP)

        if isinstance(term, Lam):
            binders: List[Tuple[str, str]] = []
            body = term
            local = list(names)
            while isinstance(body, Lam):
                name = _fresh(local, body.name)
                binders.append((name, self.pp(body.domain, local, _ARROW)))
                local.insert(0, name)
                body = body.body
            binder_str = " ".join(f"({n} : {t})" for n, t in binders)
            rendered = f"fun {binder_str} => {self.pp(body, local, _BINDER)}"
            return _paren(rendered, prec < _BINDER)

        if isinstance(term, Pi):
            if not occurs_rel(term.codomain, 0):
                left = self.pp(term.domain, names, _APP)
                right = self.pp(term.codomain, ["_"] + list(names), _ARROW)
                rendered = f"{left} -> {right}"
                return _paren(rendered, prec < _ARROW)
            binders = []
            body = term
            local = list(names)
            while isinstance(body, Pi) and occurs_rel(body.codomain, 0):
                name = _fresh(local, body.name)
                binders.append((name, self.pp(body.domain, local, _ARROW)))
                local.insert(0, name)
                body = body.codomain
            binder_str = " ".join(f"({n} : {t})" for n, t in binders)
            rendered = (
                f"forall {binder_str}, {self.pp(body, local, _BINDER)}"
            )
            return _paren(rendered, prec < _BINDER)

        if isinstance(term, Elim):
            motive = self.pp(term.motive, names, _BINDER)
            scrut = self.pp(term.scrut, names, _BINDER)
            cases = ", ".join(self.pp(c, names, _BINDER) for c in term.cases)
            return f"Elim[{term.ind}]({scrut}; {motive}){{{cases}}}"

        return repr(term)


def _fresh(names: List[str], hint: str) -> str:
    base = hint if hint and hint != "_" else "x"
    if base not in names:
        return base
    counter = 0
    while f"{base}{counter}" in names:
        counter += 1
    return f"{base}{counter}"


def _paren(rendered: str, need: bool) -> str:
    return f"({rendered})" if need else rendered
