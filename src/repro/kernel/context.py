"""Local typing contexts for de Bruijn terms.

A :class:`Context` is an immutable stack of ``(name, type)`` entries where
entry 0 is the *innermost* binder (``Rel(0)``).  Types are stored as they
were at declaration time; :meth:`Context.type_of` lifts them into the
current context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from .term import Term, TermError, lift


@dataclass(frozen=True)
class Context:
    """An immutable local typing context."""

    entries: Tuple[Tuple[str, Term], ...] = ()

    @staticmethod
    def empty() -> "Context":
        return Context(())

    def push(self, name: str, ty: Term) -> "Context":
        """Extend the context with a new innermost binder."""
        return Context(((name, ty),) + self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Tuple[str, Term]]:
        return iter(self.entries)

    def type_of(self, index: int) -> Term:
        """Type of ``Rel(index)``, lifted into the current context."""
        if index < 0 or index >= len(self.entries):
            raise TermError(
                f"unbound de Bruijn index {index} in context of size "
                f"{len(self.entries)}"
            )
        _name, ty = self.entries[index]
        return lift(ty, index + 1)

    def name_of(self, index: int) -> str:
        """Display name of ``Rel(index)``."""
        if index < 0 or index >= len(self.entries):
            return f"_rel{index}"
        return self.entries[index][0]

    def fresh_name(self, hint: str) -> str:
        """Return ``hint`` or a primed variant unused in this context."""
        used = {name for name, _ in self.entries}
        if hint not in used:
            return hint
        counter = 0
        while f"{hint}{counter}" in used:
            counter += 1
        return f"{hint}{counter}"
