"""Local typing contexts for de Bruijn terms.

A :class:`Context` is an immutable stack of ``(name, type)`` entries where
entry 0 is the *innermost* binder (``Rel(0)``).  Types are stored as they
were at declaration time; :meth:`Context.type_of` lifts them into the
current context.

Contexts are interned the way terms are: :meth:`Context.empty` is a
singleton and :meth:`Context.push` memoizes per (parent, name, type)
identity, so the same binder chain always yields the *same* context
object.  Identity-keyed caches (the transform cache's key memo, the
``infer``/``check`` verdict memos) rely on this to hit without hashing
entry tuples; the memo's values pin their referents so ids stay valid,
and the table is registered with the term-cache registry so
``clear_term_caches`` empties it with the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from .term import (
    Term,
    TermError,
    lift,
    register_term_cache,
    term_memo_enabled,
)

#: (id(parent), name, id(type)) -> (parent, type, child); the value pins
#: the key's referents so their ids cannot be recycled while it lives.
_PUSH_MEMO: Dict[tuple, tuple] = register_term_cache({})
_PUSH_MEMO_MAX = 1 << 20


@dataclass(frozen=True)
class Context:
    """An immutable local typing context."""

    entries: Tuple[Tuple[str, Term], ...] = ()

    @staticmethod
    def empty() -> "Context":
        return _EMPTY_CONTEXT

    def push(self, name: str, ty: Term) -> "Context":
        """Extend the context with a new innermost binder."""
        if not term_memo_enabled():
            return Context(((name, ty),) + self.entries)
        key = (id(self), name, id(ty))
        entry = _PUSH_MEMO.get(key)
        if entry is not None:
            return entry[2]
        child = Context(((name, ty),) + self.entries)
        if len(_PUSH_MEMO) >= _PUSH_MEMO_MAX:
            _PUSH_MEMO.clear()
        _PUSH_MEMO[key] = (self, ty, child)
        return child

    def type_ids(self) -> Tuple[int, ...]:
        """The entry types' ids, for identity-keyed kernel cache keys.

        Computed once per context object; the ids stay valid because the
        context itself pins every entry type.
        """
        ids = self.__dict__.get("_type_ids")
        if ids is None:
            ids = tuple(id(ty) for _name, ty in self.entries)
            object.__setattr__(self, "_type_ids", ids)
        return ids

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Tuple[str, Term]]:
        return iter(self.entries)

    def type_of(self, index: int) -> Term:
        """Type of ``Rel(index)``, lifted into the current context."""
        if index < 0 or index >= len(self.entries):
            raise TermError(
                f"unbound de Bruijn index {index} in context of size "
                f"{len(self.entries)}"
            )
        _name, ty = self.entries[index]
        return lift(ty, index + 1)

    def name_of(self, index: int) -> str:
        """Display name of ``Rel(index)``."""
        if index < 0 or index >= len(self.entries):
            return f"_rel{index}"
        return self.entries[index][0]

    def fresh_name(self, hint: str) -> str:
        """Return ``hint`` or a primed variant unused in this context."""
        used = {name for name, _ in self.entries}
        if hint not in used:
            return hint
        counter = 0
        while f"{hint}{counter}" in used:
            counter += 1
        return f"{hint}{counter}"


_EMPTY_CONTEXT = Context(())
