"""The type checker for CIC_omega with primitive eliminators.

Bidirectional-in-spirit: :func:`infer` synthesizes a type; :func:`check`
verifies a term against an expected type using cumulativity.  The typing
rules are the standard ones (the paper says "the typing rules are
standard", Section 4); the eliminator rule uses
:func:`repro.kernel.inductive.case_type` to compute branch types.

Sort arithmetic:

* ``Prop : Type(1)``, ``Set : Type(1)``, ``Type(i) : Type(i+1)``.
* ``Pi (x : A), B`` lands in ``Prop`` when ``B`` does (impredicative
  Prop), otherwise in ``Type(max(level A, level B))``.
* Cumulativity ``Prop <= Set <= Type(1) <= ...`` is used when checking.

Like Coq's kernel as used by Pumpkin Pi, the checker is liberal about
elimination sorts (no Prop-elimination restriction); the paper's formal
setting, CIC_omega, does not impose one either.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .context import Context
from .convert import conv, sub
from .env import ABSENT, Environment
from .fastpath import transform_fast_enabled
from .inductive import case_type
from .reduce import whnf
from .stats import KERNEL_STATS
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
    lift,
    mk_app,
    subst,
    subst_many,
    unfold_app,
)


class TypeError_(TermError):
    """A type error, carrying a human-readable explanation."""


_INFER_COUNTER = KERNEL_STATS.counter("infer")
_INFER_TAG = "infer"


def infer(env: Environment, ctx: Context, term: Term) -> Term:
    """Infer the type of ``term`` in ``ctx``; raise TypeError_ on failure.

    Successful inferences are memoized in the environment's reduction
    cache under ``(term, context entries)``: inference is deterministic
    given the environment, and the cache is invalidated whenever the
    environment changes non-additively.  Failures are not cached.
    """
    # Identity keys (term and context types pinned in the value) keep
    # the cache name-faithful: a structural key could return a type
    # whose binder display names came from a different, equal term.
    cache = env.reduction_cache
    key = None
    if cache.enabled and not isinstance(term, (Rel, Sort, Const)):
        key = (_INFER_TAG, id(term), ctx.type_ids())
        hit = cache.get(key, _INFER_COUNTER)
        if hit is not ABSENT:
            return hit[-1]
    result = _infer(env, ctx, term)
    if key is not None:
        cache.put(key, (term, ctx.entries, result))
    return result


def _infer(env: Environment, ctx: Context, term: Term) -> Term:
    if isinstance(term, Rel):
        return ctx.type_of(term.index)

    if isinstance(term, Sort):
        if term.is_prop or term.is_set:
            return Sort(1)
        return Sort(term.level + 1)

    if isinstance(term, Const):
        return env.constant(term.name).type

    if isinstance(term, Ind):
        return env.inductive(term.name).arity()

    if isinstance(term, Constr):
        decl = env.inductive(term.ind)
        if not (0 <= term.index < decl.n_constructors):
            raise TypeError_(
                f"{term.ind} has no constructor #{term.index}"
            )
        return decl.constructor_type(term.index)

    if isinstance(term, Pi):
        dom_sort = infer_sort(env, ctx, term.domain)
        cod_sort = infer_sort(
            env, ctx.push(term.name, term.domain), term.codomain
        )
        if cod_sort.is_prop:
            return Sort(-1)
        return Sort(max(dom_sort.level, cod_sort.level, 0))

    if isinstance(term, Lam):
        infer_sort(env, ctx, term.domain)
        body_ty = infer(env, ctx.push(term.name, term.domain), term.body)
        return Pi(term.name, term.domain, body_ty)

    if isinstance(term, App):
        if transform_fast_enabled():
            return _infer_spine(env, ctx, term)
        fn_ty = infer(env, ctx, term.fn)
        if not isinstance(fn_ty, Pi):
            # Inferred function types are almost always Pi already;
            # dispatching to the reduction engine (either one) only pays
            # off when there is an actual redex or constant to unfold.
            fn_ty = whnf(env, fn_ty)
        if not isinstance(fn_ty, Pi):
            raise TypeError_(
                f"application of a non-function: head has type {fn_ty!r}"
            )
        check(env, ctx, term.arg, fn_ty.domain)
        return _head_beta(subst(fn_ty.codomain, term.arg))

    if isinstance(term, Elim):
        return _infer_elim(env, ctx, term)

    raise TypeError_(f"cannot infer type of {term!r}")


def _infer_spine(env: Environment, ctx: Context, term: App) -> Term:
    """Infer an application spine iteratively (the fast-path App rule).

    One loop handles the whole spine instead of one ``infer``/``_infer``
    frame pair per ``App`` node.  The memo behaviour is the recursive
    path's exactly: each prefix is probed on the way down (stopping at
    the innermost hit), and every uncached prefix is stored on the way
    back up, so later spines sharing a prefix still hit.
    """
    cache = env.reduction_cache
    caching = cache.enabled
    ids = ctx.type_ids() if caching else None
    spine = [term]
    t = term.fn
    fn_ty = None
    while isinstance(t, App):
        if caching:
            hit = cache.get((_INFER_TAG, id(t), ids), _INFER_COUNTER)
            if hit is not ABSENT:
                fn_ty = hit[-1]
                break
        spine.append(t)
        t = t.fn
    if fn_ty is None:
        fn_ty = infer(env, ctx, t)
    # Substitutions into the function type are *delayed*: while the type
    # is a syntactic Pi tower, only each (usually small, often closed)
    # domain is instantiated with the pending arguments, and the whole
    # tower is materialized once — with a single parallel substitution —
    # when a non-Pi codomain or the end of the spine forces it.  Parallel
    # substitution of a spine equals the sequential per-step fold (each
    # argument lives outside every crossed binder), so the result is
    # byte-identical to substituting at every step; what is saved is
    # rebuilding the remaining tower once per argument.
    ty = fn_ty
    pending: list = []
    for node in reversed(spine):
        if not isinstance(ty, Pi):
            if pending:
                ty = _head_beta(subst_many(ty, tuple(reversed(pending))))
                pending = []
            if not isinstance(ty, Pi):
                # Inferred function types are almost always Pi already;
                # dispatching to the reduction engine only pays off when
                # there is an actual redex or constant to unfold.
                ty = whnf(env, ty)
            if not isinstance(ty, Pi):
                raise TypeError_(
                    f"application of a non-function: head has type {ty!r}"
                )
        dom = ty.domain
        if pending:
            dom = subst_many(dom, tuple(reversed(pending)))
        check(env, ctx, node.arg, dom)
        pending.append(node.arg)
        ty = ty.codomain
    if pending:
        ty = _head_beta(subst_many(ty, tuple(reversed(pending))))
    return ty


def _head_beta(term: Term) -> Term:
    """Contract leading beta redexes (cosmetic cleanup of inferred types).

    On the fast path a whole ``Lam``-spine is contracted with one
    parallel :func:`subst_many` instead of one :func:`subst` per binder;
    parallel substitution of a beta spine equals the sequential fold
    (each argument is interpreted outside all the contracted binders),
    so the result is byte-identical either way.
    """
    while True:
        head, args = unfold_app(term)
        if not (isinstance(head, Lam) and args):
            return term
        if transform_fast_enabled():
            body = head
            n = 0
            while isinstance(body, Lam) and n < len(args):
                body = body.body
                n += 1
            if n > 1:
                term = mk_app(
                    subst_many(body, tuple(reversed(args[:n]))), args[n:]
                )
                continue
        term = mk_app(subst(head.body, args[0]), args[1:])


_CHECK_COUNTER = KERNEL_STATS.counter("check")
_CHECK_TAG = "check"


def check(env: Environment, ctx: Context, term: Term, expected: Term) -> None:
    """Check ``term`` against ``expected`` (up to cumulativity).

    The default path is bidirectional: a ``Lam`` checked against a
    ``Pi`` whose domain is convertible descends straight into the body
    against the codomain, instead of synthesizing the whole spine's type
    and comparing after the fact — the Figure-10 rule outputs and
    repaired definitions the transformer produces are all checked
    against expected (configuration-derived) types, so this skips
    re-deriving what the caller already knows.  Successful verdicts are
    memoized in the environment's reduction cache (identity keys with
    the referents pinned in the value, like ``infer``); checking is
    stable under additive environment extension, and the cache is
    cleared on any non-additive change.  Failures are not cached and
    fall back to the synthesizing path, preserving its error reporting.
    ``REPRO_DISABLE_TRANSFORM_FAST=1`` restores the original
    infer-then-subsume behaviour.
    """
    if not transform_fast_enabled():
        actual = infer(env, ctx, term)
        if actual is expected:
            return
        if not sub(env, actual, expected):
            _raise_mismatch(env, ctx, term, actual, expected)
        return
    cache = env.reduction_cache
    key = None
    if cache.enabled:
        key = (_CHECK_TAG, id(term), id(expected), ctx.type_ids())
        hit = cache.get(key, _CHECK_COUNTER)
        if hit is not ABSENT:
            return
    _check_bidirectional(env, ctx, term, expected)
    if key is not None:
        cache.put(key, (term, expected, ctx.entries, True))


def _check_bidirectional(
    env: Environment, ctx: Context, term: Term, expected: Term
) -> None:
    while isinstance(term, Lam):
        exp = expected if isinstance(expected, Pi) else whnf(env, expected)
        if not (isinstance(exp, Pi) and conv(env, term.domain, exp.domain)):
            # Structure (or domain) disagrees: synthesize and subsume so
            # the error message matches the standard path.
            break
        infer_sort(env, ctx, term.domain)
        ctx = ctx.push(term.name, term.domain)
        term = term.body
        expected = exp.codomain
    actual = infer(env, ctx, term)
    if actual is expected:
        return
    if not sub(env, actual, expected):
        _raise_mismatch(env, ctx, term, actual, expected)


def _raise_mismatch(
    env: Environment, ctx: Context, term: Term, actual: Term, expected: Term
) -> None:
    from .pretty import pretty

    raise TypeError_(
        "type mismatch:\n"
        f"  term:     {pretty(term, ctx=ctx)}\n"
        f"  has type: {pretty(actual, ctx=ctx)}\n"
        f"  expected: {pretty(expected, ctx=ctx)}"
    )


def infer_sort(env: Environment, ctx: Context, term: Term) -> Sort:
    """Infer the type of ``term`` and require it to be a sort."""
    ty = infer(env, ctx, term)
    if not isinstance(ty, Sort):
        ty = whnf(env, ty)
    if not isinstance(ty, Sort):
        raise TypeError_(f"expected a type, got a term of type {ty!r}")
    return ty


def _infer_elim(env: Environment, ctx: Context, term: Elim) -> Term:
    decl = env.inductive(term.ind)
    if len(term.cases) != decl.n_constructors:
        raise TypeError_(
            f"Elim over {term.ind}: expected {decl.n_constructors} cases, "
            f"got {len(term.cases)}"
        )

    # Scrutinee type determines parameters and indices.
    scrut_ty = whnf(env, infer(env, ctx, term.scrut))
    head, args = unfold_app(scrut_ty)
    if not (isinstance(head, Ind) and head.name == term.ind):
        raise TypeError_(
            f"Elim over {term.ind}: scrutinee has type {scrut_ty!r}"
        )
    params = args[: decl.n_params]
    indices = args[decl.n_params :]

    # The motive must accept the indices and the scrutinee.
    motive_ty = infer(env, ctx, term.motive)
    expected_motive_ty = _expected_motive_type(env, decl, params)
    if not _motive_ok(env, ctx, motive_ty, expected_motive_ty):
        from .pretty import pretty

        raise TypeError_(
            f"Elim over {term.ind}: motive has type "
            f"{pretty(motive_ty, ctx=ctx)}, expected shape "
            f"{pretty(expected_motive_ty, ctx=ctx)}"
        )

    for j, case in enumerate(term.cases):
        expected = case_type(decl, j, params, term.motive)
        check(env, ctx, case, expected)

    from .reduce import beta_reduce

    return beta_reduce(mk_app(term.motive, tuple(indices) + (term.scrut,)))


def _expected_motive_type(
    env: Environment, decl, params: Tuple[Term, ...]
) -> Term:
    """``Pi indices, I params indices -> Type(big)`` for shape checking."""
    from .inductive import instantiate_telescope
    from .term import mk_pis, type_sort

    index_tele = instantiate_telescope(
        tuple(decl.params) + tuple(decl.indices), params
    )
    ni = decl.n_indices
    applied = mk_app(
        Ind(decl.name),
        tuple(lift(p, ni) for p in params)
        + tuple(Rel(ni - 1 - k) for k in range(ni)),
    )
    return mk_pis(index_tele, Pi("_x", applied, type_sort(2)))


def _motive_ok(
    env: Environment, ctx: Context, motive_ty: Term, expected: Term
) -> bool:
    """Motive type matches the expected telescope, landing in any sort."""
    mt = whnf(env, motive_ty)
    et = whnf(env, expected)
    while isinstance(et, Pi):
        if not isinstance(mt, Pi):
            return False
        if not conv(env, mt.domain, et.domain):
            return False
        mt = whnf(env, mt.codomain)
        et = whnf(env, et.codomain)
    # ``et`` is the placeholder sort; the motive may land in any sort.
    return isinstance(mt, Sort)


def typecheck_closed(env: Environment, term: Term) -> Term:
    """Infer the type of a closed term in the empty context."""
    return infer(env, Context.empty(), term)


def is_well_typed(env: Environment, term: Term, ctx: Optional[Context] = None) -> bool:
    """Return True when ``term`` type checks (convenience for tests)."""
    try:
        infer(env, ctx or Context.empty(), term)
        return True
    except TermError:
        return False
