"""The transformer fast-path switch (``REPRO_DISABLE_TRANSFORM_FAST``).

The Figure-10 transformer has two observationally identical drivers: the
original recursive descent and the single memoized explicit-stack pass
(:mod:`repro.core.transform`), plus the fast-path codepaths that ride on
it — bidirectional ``check`` with verdict memoization
(:mod:`repro.kernel.typecheck`) and batched head-spine substitution in
``_head_beta`` / the ``TermSide`` constructors.  Both produce
byte-identical repairs; the differential fuzz suite in
``tests/test_transform_fast.py`` enforces it.

The flag lives in its own kernel module so both the kernel
(``typecheck``) and the core (``transform``, ``config``) can consult it
without import cycles.  It mirrors the NbE and kernel-cache switches:
off by default only when ``REPRO_DISABLE_TRANSFORM_FAST=1`` is set
before import, toggleable at runtime with :func:`set_transform_fast`
(which returns the previous setting, for try/finally scoping in tests
and ablation benchmarks).
"""

from __future__ import annotations

import os

#: True when the fast path was disabled via the environment.
TRANSFORM_FAST_DISABLED_BY_ENV: bool = os.environ.get(
    "REPRO_DISABLE_TRANSFORM_FAST", ""
) not in ("", "0")

_fast_enabled: bool = not TRANSFORM_FAST_DISABLED_BY_ENV


def set_transform_fast(enabled: bool) -> bool:
    """Enable/disable the fast path; returns the previous setting."""
    global _fast_enabled
    previous = _fast_enabled
    _fast_enabled = enabled
    return previous


def transform_fast_enabled() -> bool:
    """True when the single-pass transformer and its codepaths are on."""
    return _fast_enabled


__all__ = [
    "TRANSFORM_FAST_DISABLED_BY_ENV",
    "set_transform_fast",
    "transform_fast_enabled",
]
