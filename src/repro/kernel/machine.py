"""NbE abstract machine: closure-based reduction and lazy conversion.

This module is the machine half of the kernel's reduction engine — a
Krivine-style environment machine computing weak-head forms over
*closures* (a term paired with a lazy de Bruijn environment), in the
style of Coq's own machine-based normalization.  The substitution-based
reducers in :mod:`repro.kernel.reduce` walk the whole term on every beta
step (``subst`` is the hottest kernel operation in BENCH_pipeline.json);
here a beta step is an O(1) environment extension, and substitution is
deferred until a *readback* pass quotes the semantic value to a
hash-consed term.

Three entry points slot in behind the existing public signatures:

* :func:`whnf_term` — weak-head normal form.  The readback substitutes
  environments into the stuck parts **without reducing**, so the result
  is byte-identical to the legacy ``_whnf`` (same reduction strategy:
  beta, iota with interleaved induction hypotheses, delta respecting the
  ``frozen`` set).
* :func:`nf_term` — full normalization via quote: weak-head evaluate,
  then recursively quote under fresh variables (de Bruijn *levels*).
* :func:`conv_terms` — conversion directly on values with a **lazy
  delta oracle**: when both sides are applications of the *same*
  constant, the argument spines are compared first and the constant is
  only unfolded when they disagree (Coq's ``fconv`` discipline); the
  legacy path unfolds every unfoldable head eagerly inside whnf.

Values
------

``VSort`` / ``VLam`` / ``VPi`` / ``VSpine(head, args)`` where the spine
args are :class:`Thunk` closures and the head is a rigid ``HVar`` /
``HConst`` / ``HInd`` / ``HConstr`` / ``HElim`` (or a stuck ``VSort`` /
``VPi`` — ill-typed applications must reduce exactly like the legacy
normalizer, which leaves them in place).  Variables are de Bruijn
*levels*: a fresh variable bound at quote/conversion depth ``d`` has
level ``d``; an ambient free ``Rel(i)`` is encoded as level ``-(i+1)``.
Readback at depth ``d`` is uniformly ``Rel(d - 1 - level)`` for both.

Closure sharing
---------------

Closures over closed terms are environment-independent, so they are
shared through the environment's :class:`~repro.kernel.env.ReductionCache`
(key tag ``"machine_thunk"``): repeated library subterms are evaluated
and quoted once per (delta, frozen, laziness) mode.  The cache is
cleared on ``redefine``/``remove``, which keeps constant bodies baked
into shared values from going stale.  Identity-keyed term caches in
:mod:`repro.kernel.reduce` compose with the machine unchanged: the
machine produces interned terms, so its results pin the same nodes the
legacy reducers would.

Both engines are observationally identical on well-typed terms — same
normal forms, verdicts, and errors (the differential fuzz suite in
``tests/test_kernel_machine.py`` enforces this).  On *ill-typed* terms
the engines may explore different subterms during conversion: the legacy
engine's syntactic short-circuit can skip an ill-formed elimination that
the machine's forcing reaches, so the machine can raise an
``InductiveError`` where the legacy engine returns a verdict.
Conversion is only specified for well-typed inputs (the same contract
Coq's VM conversion has with its kernel's lazy conversion).

The engine is on by default; ``REPRO_DISABLE_NBE=1`` (mirroring
``REPRO_DISABLE_KERNEL_CACHES``) or :func:`set_nbe` falls back to the
substitution-based reducers.  :data:`~repro.kernel.stats.KERNEL_STATS`
records ``machine_steps`` (eval transitions), ``machine_closures``
(thunk allocations), ``machine_readbacks`` (readback/quote passes), and
``machine_delta_avoided`` (conversions decided without unfolding an
unfoldable constant head).
"""

from __future__ import annotations

import os
from typing import FrozenSet, List, Optional, Tuple, Union

from .env import ABSENT, Environment
from .inductive import analyze_recursive_args, iota_reduce
from .stats import KERNEL_STATS
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
    free_rels,
    lift,
    max_free_rel,
    _transform_rels,
)

#: True when the machine engine was disabled via the environment.
NBE_DISABLED_BY_ENV: bool = os.environ.get(
    "REPRO_DISABLE_NBE", ""
) not in ("", "0")

_nbe_enabled: bool = not NBE_DISABLED_BY_ENV


def set_nbe(enabled: bool) -> bool:
    """Enable/disable the machine engine; returns the previous setting."""
    global _nbe_enabled
    previous = _nbe_enabled
    _nbe_enabled = enabled
    return previous


def nbe_enabled() -> bool:
    """True when whnf/nf/conv dispatch to the abstract machine."""
    return _nbe_enabled


_STEPS = KERNEL_STATS.event("machine_steps")
_CLOSURES = KERNEL_STATS.event("machine_closures")
_READBACKS = KERNEL_STATS.event("machine_readbacks")
_DELTA_AVOIDED = KERNEL_STATS.event("machine_delta_avoided")
_THUNK_COUNTER = KERNEL_STATS.counter("machine_thunk")
_CONV_COUNTER = KERNEL_STATS.counter("conv")

_EMPTY_FROZEN: FrozenSet[str] = frozenset()

_THUNK_TAG = "machine_thunk"
_CONST_TAG = "machine_const"
_CONV_TAG = "conv"  # shared with convert.py so both engines reuse entries
_VCONV_TAG = "machine_vconv"


# ---------------------------------------------------------------------------
# Runtime representation: environments, closures, values
# ---------------------------------------------------------------------------


class _Env:
    """A cons cell of the machine environment (innermost binder first)."""

    __slots__ = ("entry", "rest", "length")

    def __init__(self, entry: "Thunk", rest: Optional["_Env"]) -> None:
        self.entry = entry
        self.rest = rest
        self.length = 1 if rest is None else rest.length + 1


class Thunk:
    """A lazily-evaluated closure: a term under a machine environment.

    ``value`` memoizes the weak-head value once forced; ``rb`` memoizes
    the non-reducing readback (environment substituted in, no further
    reduction) used by whnf-mode readback; ``nfq`` memoizes the full
    quote for *closed* terms (whose quote is depth-independent).
    """

    __slots__ = ("term", "env", "value", "rb", "nfq")

    def __init__(self, term: Optional[Term], env: Optional[_Env]) -> None:
        self.term = term
        self.env = env
        self.value: Optional[Value] = None
        self.rb: Optional[Term] = None
        self.nfq: Optional[Term] = None
        _CLOSURES.count += 1


class VSort:
    __slots__ = ("level",)

    def __init__(self, level: int) -> None:
        self.level = level


class VLam:
    """A function value: binder name, domain/body terms, closing env."""

    __slots__ = ("name", "domain", "body", "env")

    def __init__(
        self, name: str, domain: Term, body: Term, env: Optional[_Env]
    ) -> None:
        self.name = name
        self.domain = domain
        self.body = body
        self.env = env


class VPi:
    __slots__ = ("name", "domain", "body", "env")

    def __init__(
        self, name: str, domain: Term, body: Term, env: Optional[_Env]
    ) -> None:
        self.name = name
        self.domain = domain
        self.body = body  # the codomain, under one binder
        self.env = env


class VSpine:
    """A stuck application: rigid head applied to arg closures in order."""

    __slots__ = ("head", "args")

    def __init__(self, head: "Head", args: Tuple[Thunk, ...]) -> None:
        self.head = head
        self.args = args


class HVar:
    """A variable head, as a de Bruijn level (ambient ``Rel(i)`` is
    level ``-(i+1)``; fresh quote/conversion variables are ``>= 0``)."""

    __slots__ = ("level",)

    def __init__(self, level: int) -> None:
        self.level = level


class HConst:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class HInd:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name


class HConstr:
    __slots__ = ("ind", "index")

    def __init__(self, ind: str, index: int) -> None:
        self.ind = ind
        self.index = index


class HElim:
    """A stuck eliminator: motive/cases as a closure, scrut as a value."""

    __slots__ = ("ind", "motive", "cases", "env", "scrut")

    def __init__(
        self,
        ind: str,
        motive: Term,
        cases: Tuple[Term, ...],
        env: Optional[_Env],
        scrut: "Value",
    ) -> None:
        self.ind = ind
        self.motive = motive
        self.cases = cases
        self.env = env
        self.scrut = scrut


Value = Union[VSort, VLam, VPi, VSpine]
Head = Union[HVar, HConst, HInd, HConstr, HElim, VSort, VPi]


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------


def _env_lookup(sigma: Optional[_Env], index: int) -> Union[Thunk, int]:
    """The closure bound at ``Rel(index)``, or the leftover ambient index."""
    while sigma is not None:
        if index == 0:
            return sigma.entry
        index -= 1
        sigma = sigma.rest
    return index


def _thunk(
    env: Environment,
    term: Term,
    sigma: Optional[_Env],
    delta: bool,
    frozen: FrozenSet[str],
    lazy: bool,
) -> Thunk:
    """A closure for ``term`` under ``sigma``, shared when env-independent.

    A term with no free variables below ``sigma`` (closed, or ``sigma``
    empty) evaluates the same under any environment, so its closure is
    shared through the reduction cache — repeated library subterms are
    forced and quoted once per evaluation mode.
    """
    if env is None or (sigma is not None and max_free_rel(term) > 0):
        return Thunk(term, sigma)
    cache = env.reduction_cache
    if not cache.enabled:
        return Thunk(term, None)
    key = (_THUNK_TAG, id(term), delta, frozen, lazy)
    hit = cache.get(key, _THUNK_COUNTER)
    if hit is not ABSENT:
        return hit[1]
    th = Thunk(term, None)
    # The value pins the term so its id is not recycled while the entry
    # lives (the same discipline as every identity-keyed kernel cache).
    cache.put(key, (term, th))
    return th


def _force(
    env: Environment,
    th: Thunk,
    delta: bool,
    frozen: FrozenSet[str],
    lazy: bool,
) -> "Value":
    value = th.value
    if value is None:
        value = _eval(env, th.env, th.term, [], delta, frozen, lazy)
        th.value = value
    return value


def _const_value(
    env: Environment, name: str, frozen: FrozenSet[str], lazy: bool
) -> "Value":
    """The value of constant ``name``'s body (cached per environment).

    Constant bodies are closed, so their values are environment- and
    depth-independent; sharing them through the reduction cache is the
    machine's analogue of the legacy engine caching ``whnf(Const(c))``
    — without it every occurrence of a constant re-evaluates its body.
    """
    cache = env.reduction_cache
    if not cache.enabled:
        return _eval(env, None, env.constant(name).body, [], True, frozen, lazy)
    key = (_CONST_TAG, name, frozen, lazy)
    hit = cache.get(key, _THUNK_COUNTER)
    if hit is not ABSENT:
        return hit
    value = _eval(env, None, env.constant(name).body, [], True, frozen, lazy)
    cache.put(key, value)
    return value


def _mk_spine(value: "Value", stack: List[Thunk]) -> VSpine:
    """Append the pending argument stack (first arg last) to ``value``."""
    stack.reverse()
    if type(value) is VSpine:
        return VSpine(value.head, value.args + tuple(stack))
    return VSpine(value, tuple(stack))


_REC_INFOS_MEMO: dict = {}


def _rec_infos(decl, j: int):
    """Memoized :func:`analyze_recursive_args` (hot inside iota steps)."""
    key = (id(decl), j)
    entry = _REC_INFOS_MEMO.get(key)
    if entry is None:
        infos = analyze_recursive_args(decl, j)
        # Pin the declaration so its id stays valid for the entry.
        entry = _REC_INFOS_MEMO[key] = (decl, infos)
    return entry[1]


# Control-stack frame tags (identity-compared, see _eval).
_FORCE = object()
_ELIM = object()


def _eval(
    env: Environment,
    sigma: Optional[_Env],
    term: Term,
    stack: List[Thunk],
    delta: bool,
    frozen: FrozenSet[str],
    lazy: bool,
) -> "Value":
    """Weak-head evaluate ``term`` under ``sigma`` applied to ``stack``.

    ``stack`` holds pending argument closures with the *first* argument
    last (so ``pop()`` yields the next one).  ``lazy`` keeps unfoldable
    constants folded at head position (the conversion oracle unfolds
    them on demand); eager mode mirrors the legacy ``_whnf`` strategy
    exactly.  Mirrors the legacy transitions one for one — beta is an
    environment extension instead of ``subst``.

    The machine is fully iterative: thunk forcing and eliminator
    scrutinees run on an explicit ``control`` stack of resume frames
    instead of Python recursion, so evaluation depth is bounded by heap,
    not the interpreter stack (deep numerals force a closure chain as
    long as the numeral).  ``value = None`` means the loop is descending
    into ``term``; anything else is a finished value being delivered to
    the innermost frame.
    """
    steps = _STEPS
    # Frames: (_FORCE, thunk, saved_stack) fills the thunk and applies
    # the saved arguments; (_ELIM, elim_term, sigma, saved_stack)
    # receives the scrutinee's value and runs iota (or gets stuck).
    control: List[tuple] = []
    value = None
    while True:
        if value is not None:
            if not control:
                return value
            frame = control.pop()
            if frame[0] is _FORCE:
                th = frame[1]
                th.value = value
                stack = frame[2]
                if not stack:
                    continue
                if type(value) is VLam:
                    sigma = _Env(stack.pop(), value.env)
                    term = value.body
                    value = None
                    continue
                value = _mk_spine(value, stack)
                continue
            # _ELIM frame: `value` is the evaluated scrutinee.
            term = frame[1]
            sigma = frame[2]
            stack = frame[3]
            scrut = value
            value = None
            if lazy:
                scrut = _unfold_head(env, scrut, frozen)
            if (
                env is not None
                and type(scrut) is VSpine
                and type(scrut.head) is HConstr
                and scrut.head.ind == term.ind
            ):
                decl = env.inductive(term.ind)
                n_params = decl.n_params
                j = scrut.head.index
                ctor = decl.constructors[j]
                arg_ths = scrut.args
                value_ths = arg_ths[n_params:]
                if len(value_ths) != len(ctor.args):
                    from .inductive import InductiveError

                    raise InductiveError(
                        f"iota: {decl.name} constructor {j} expects "
                        f"{len(ctor.args)} arguments, got {len(value_ths)}"
                    )
                infos = _rec_infos(decl, j)
                if any(i is not None and i.inner_binders for i in infos):
                    # Functional recursive arguments need the term-level
                    # eta-expanded induction hypotheses; run the legacy
                    # iota over variables and bind the argument closures
                    # in the environment (substitution commutes with
                    # reduction, so the readback is unchanged).
                    n = len(arg_ths)
                    reduced = iota_reduce(
                        decl,
                        lift(term.motive, n),
                        tuple(lift(c, n) for c in term.cases),
                        j,
                        tuple(Rel(n - 1 - k) for k in range(n_params)),
                        tuple(Rel(n - 1 - k) for k in range(n_params, n)),
                    )
                    for th in arg_ths:
                        sigma = _Env(th, sigma)
                    term = reduced
                    continue
                # Plain recursion: push the case's arguments (value then
                # induction hypothesis for each recursive position) as
                # closures — the IH is a deferred eliminator over the
                # argument closure.
                extra: List[Thunk] = []
                motive_l = None
                for i, th in enumerate(value_ths):
                    extra.append(th)
                    if infos[i] is not None:
                        if motive_l is None:
                            motive_l = lift(term.motive, 1)
                            cases_l = tuple(lift(c, 1) for c in term.cases)
                            ih_term = Elim(term.ind, motive_l, cases_l, Rel(0))
                        ih = Thunk(ih_term, _Env(th, sigma))
                        extra.append(ih)
                term = term.cases[j]
                extra.reverse()
                stack.extend(extra)
                continue
            # Stuck: remember motive/cases as a closure, scrut as a value.
            head = HElim(term.ind, term.motive, term.cases, sigma, scrut)
            value = _mk_spine(VSpine(head, ()), stack)
            continue
        steps.count += 1
        cls = term.__class__
        if cls is App:
            stack.append(_thunk(env, term.arg, sigma, delta, frozen, lazy))
            term = term.fn
            continue
        if cls is Lam:
            if stack:
                sigma = _Env(stack.pop(), sigma)
                term = term.body
                continue
            value = VLam(term.name, term.domain, term.body, sigma)
            continue
        if cls is Rel:
            entry = _env_lookup(sigma, term.index)
            if type(entry) is int:
                value = _mk_spine(VSpine(HVar(-entry - 1), ()), stack)
                stack = []
                continue
            forced = entry.value
            if forced is None:
                control.append((_FORCE, entry, stack))
                term = entry.term
                sigma = entry.env
                stack = []
                continue
            if not stack:
                value = forced
                continue
            if type(forced) is VLam:
                sigma = _Env(stack.pop(), forced.env)
                term = forced.body
                continue
            value = _mk_spine(forced, stack)
            stack = []
            continue
        if cls is Const:
            name = term.name
            if delta and name not in frozen:
                decl = env.constant(name)
                if decl.unfoldable and not lazy:
                    cvalue = _const_value(env, name, frozen, False)
                    if not stack:
                        value = cvalue
                        continue
                    if type(cvalue) is VLam:
                        sigma = _Env(stack.pop(), cvalue.env)
                        term = cvalue.body
                        continue
                    value = _mk_spine(cvalue, stack)
                    stack = []
                    continue
            value = _mk_spine(VSpine(HConst(name), ()), stack)
            stack = []
            continue
        if cls is Elim:
            control.append((_ELIM, term, sigma, stack))
            term = term.scrut
            stack = []
            continue
        if cls is Pi:
            value = VPi(term.name, term.domain, term.codomain, sigma)
            if stack:
                value = _mk_spine(VSpine(value, ()), stack)
                stack = []
            continue
        if cls is Sort:
            value = VSort(term.level)
            if stack:
                value = _mk_spine(VSpine(value, ()), stack)
                stack = []
            continue
        if cls is Ind:
            value = _mk_spine(VSpine(HInd(term.name), ()), stack)
            stack = []
            continue
        if cls is Constr:
            value = _mk_spine(VSpine(HConstr(term.ind, term.index), ()), stack)
            stack = []
            continue
        raise TermError(f"machine: unknown term {term!r}")


def _unfold_head(
    env: Environment, value: "Value", frozen: FrozenSet[str]
) -> "Value":
    """Unfold folded constant heads (lazy mode) until the value is rigid.

    Used on eliminator scrutinees and by the conversion oracle's
    fallback: lazily-evaluated values may carry an unfoldable constant
    at head position; iota progress and rigid-rigid comparison both
    need them expanded.
    """
    while (
        type(value) is VSpine
        and type(value.head) is HConst
        and value.head.name not in frozen
    ):
        decl = env.constant(value.head.name)
        if not decl.unfoldable:
            return value
        value = _apply_value(
            env, _const_value(env, decl.name, frozen, True),
            list(value.args), True, frozen, True,
        )
    return value


def _apply_value(
    env: Environment,
    value: "Value",
    args: List[Thunk],
    delta: bool,
    frozen: FrozenSet[str],
    lazy: bool,
) -> "Value":
    """Apply ``value`` to ``args`` (in application order)."""
    if not args:
        return value
    args.reverse()
    if type(value) is VLam:
        sigma = _Env(args.pop(), value.env)
        return _eval(env, sigma, value.body, args, delta, frozen, lazy)
    return _mk_spine(value, args)


# ---------------------------------------------------------------------------
# Readback, whnf mode: substitute environments, do not reduce
# ---------------------------------------------------------------------------
#
# The legacy _whnf returns stuck subterms with all pending substitutions
# applied but *no* further reduction.  Readback therefore substitutes
# each closure's environment into its term exactly like subst_many
# (replacements readback-ed lazily and memoized per closure), which
# makes whnf results byte-identical between the two engines.


def _rb_thunk(th: Thunk) -> Term:
    rb = th.rb
    if rb is not None:
        return rb
    # Closure readbacks depend on the readbacks of the environment
    # entries the term actually references; the chain can be as long as
    # the evaluation that built it (one closure per iota step), so it is
    # walked as an explicit post-order worklist rather than recursively.
    # Entries are computed dependencies-first, which keeps the nested
    # _rb_thunk calls inside _subst_env's on_rel at depth one.
    stack: List[tuple] = [(th, False)]
    while stack:
        t, ready = stack.pop()
        if t.rb is not None:
            continue
        if ready:
            t.rb = _subst_env(t.term, t.env, 0)
            continue
        stack.append((t, True))
        sigma = t.env
        if sigma is None:
            continue
        entries: List[Thunk] = []
        cell = sigma
        while cell is not None:
            entries.append(cell.entry)
            cell = cell.rest
        count = len(entries)
        for i in free_rels(t.term):
            if i < count:
                entry = entries[i]
                if entry.rb is None and entry.term is not None:
                    stack.append((entry, False))
    return th.rb


def _subst_env(term: Term, sigma: Optional[_Env], cutoff: int) -> Term:
    """Substitute ``sigma``'s readbacks into ``term`` under ``cutoff``
    binders (the parallel-substitution discipline of ``subst_many``)."""
    if sigma is None:
        return term
    count = sigma.length
    if max_free_rel(term) <= cutoff:
        return term
    entries: List[Thunk] = []
    cell = sigma
    while cell is not None:
        entries.append(cell.entry)
        cell = cell.rest

    def on_rel(i: int, cut: int) -> Term:
        j = i - cut
        if j < count:
            return lift(_rb_thunk(entries[j]), cut)
        return Rel(i - count)

    return _transform_rels(term, cutoff, on_rel)


def _rb_value(value: "Value") -> Term:
    cls = value.__class__
    if cls is VSort:
        return Sort(value.level)
    if cls is VLam:
        return Lam(
            value.name,
            _subst_env(value.domain, value.env, 0),
            _subst_env(value.body, value.env, 1),
        )
    if cls is VPi:
        return Pi(
            value.name,
            _subst_env(value.domain, value.env, 0),
            _subst_env(value.body, value.env, 1),
        )
    # VSpine
    head = value.head
    hcls = head.__class__
    if hcls is HVar:
        # whnf never introduces fresh variables, so levels are ambient.
        result: Term = Rel(-head.level - 1)
    elif hcls is HConst:
        result = Const(head.name)
    elif hcls is HInd:
        result = Ind(head.name)
    elif hcls is HConstr:
        result = Constr(head.ind, head.index)
    elif hcls is HElim:
        result = Elim(
            head.ind,
            _subst_env(head.motive, head.env, 0),
            tuple(_subst_env(c, head.env, 0) for c in head.cases),
            _rb_value(head.scrut),
        )
    else:  # a stuck VSort/VPi head
        result = _rb_value(head)
    for arg in value.args:
        result = App(result, _rb_thunk(arg))
    return result


# ---------------------------------------------------------------------------
# Quote: full normalization of values (nf mode)
# ---------------------------------------------------------------------------


def _fresh(depth: int) -> Thunk:
    """A pre-forced closure for the fresh variable at level ``depth``."""
    th = Thunk(None, None)
    th.value = VSpine(HVar(depth), ())
    return th


def _quote_thunk(
    env: Optional[Environment],
    th: Thunk,
    depth: int,
    delta: bool,
    frozen: FrozenSet[str],
    memo: Optional[dict] = None,
) -> Term:
    nfq = th.nfq
    if nfq is not None:
        return nfq
    # Closed closures quote to closed terms: the result mentions neither
    # fresh variables nor ambient ones (and the environment is unused),
    # so it is depth-independent and safe to memoize on the closure —
    # and, when the caller supplied a cross-call memo (the pure-beta
    # path shares reduce._BETA_MEMO), under the term's identity too.
    closed = th.term is not None and max_free_rel(th.term) == 0
    if memo is not None and closed:
        entry = memo.get(id(th.term))
        if entry is not None:
            th.nfq = entry[1]
            return entry[1]
    result = _quote(
        env, _force(env, th, delta, frozen, False), depth, delta, frozen, memo
    )
    if closed:
        th.nfq = result
        if memo is not None and len(memo) < _QUOTE_MEMO_MAX:
            memo[id(th.term)] = (th.term, result)
    return result


_QUOTE_MEMO_MAX = 1 << 19


def _quote(
    env: Optional[Environment],
    value: "Value",
    depth: int,
    delta: bool,
    frozen: FrozenSet[str],
    memo: Optional[dict] = None,
) -> Term:
    cls = value.__class__
    if cls is VSort:
        return Sort(value.level)
    if cls is VLam or cls is VPi:
        domain_v = _eval(env, value.env, value.domain, [], delta, frozen, False)
        domain = _quote(env, domain_v, depth, delta, frozen, memo)
        body_v = _eval(
            env,
            _Env(_fresh(depth), value.env),
            value.body,
            [],
            delta,
            frozen,
            False,
        )
        body = _quote(env, body_v, depth + 1, delta, frozen, memo)
        if cls is VLam:
            return Lam(value.name, domain, body)
        return Pi(value.name, domain, body)
    # VSpine
    head = value.head
    hcls = head.__class__
    if hcls is HVar:
        result: Term = Rel(depth - 1 - head.level)
    elif hcls is HConst:
        result = Const(head.name)
    elif hcls is HInd:
        result = Ind(head.name)
    elif hcls is HConstr:
        result = Constr(head.ind, head.index)
    elif hcls is HElim:
        motive_v = _eval(env, head.env, head.motive, [], delta, frozen, False)
        cases = tuple(
            _quote(
                env,
                _eval(env, head.env, c, [], delta, frozen, False),
                depth,
                delta,
                frozen,
                memo,
            )
            for c in head.cases
        )
        result = Elim(
            head.ind,
            _quote(env, motive_v, depth, delta, frozen, memo),
            cases,
            _quote(env, head.scrut, depth, delta, frozen, memo),
        )
    else:  # a stuck VSort/VPi head
        result = _quote(env, head, depth, delta, frozen, memo)
    for arg in value.args:
        result = App(
            result, _quote_thunk(env, arg, depth, delta, frozen, memo)
        )
    return result


# ---------------------------------------------------------------------------
# Conversion: lazy delta oracle over values
# ---------------------------------------------------------------------------


def _try_unfold(env: Environment, value: "Value") -> Optional["Value"]:
    """One delta step on a folded spine head, or None when rigid."""
    if type(value) is not VSpine or type(value.head) is not HConst:
        return None
    decl = env.constant(value.head.name)
    if not decl.unfoldable:
        return None
    return _apply_value(
        env, _const_value(env, decl.name, _EMPTY_FROZEN, True),
        list(value.args), True, _EMPTY_FROZEN, True,
    )


def _conv_eval(
    env: Environment, term: Term, sigma: Optional[_Env]
) -> "Value":
    """Evaluate a conversion operand, sharing env-independent values.

    Routing through :func:`_thunk` means a closed (or ambient-open)
    subterm the checker compares repeatedly — a type family, a motive, a
    constant's type — is evaluated once per environment instead of once
    per comparison, the machine's analogue of the legacy engine's whnf
    cache hits inside ``_conv_slow``.
    """
    return _force(
        env,
        _thunk(env, term, sigma, True, _EMPTY_FROZEN, True),
        True,
        _EMPTY_FROZEN,
        True,
    )


def _conv_values_cached(
    env: Environment,
    v1: "Value",
    v2: "Value",
    depth: int,
    cumulative: bool,
) -> bool:
    """Conversion of two values through an identity-keyed pair cache.

    Sound because a conversion verdict is *depth-independent*: variable
    heads are absolute de Bruijn levels, so the outcome never depends on
    how many binders the comparison happens under (``depth`` only mints
    fresh levels).  Value identities are stable exactly when the values
    came from shared closures, which is where repeated comparisons
    arise; both values are pinned in the entry to keep the ids valid.
    """
    if v1 is v2:
        return True
    cache = env.reduction_cache
    if not cache.enabled:
        return _conv_values(env, v1, v2, depth, cumulative)
    key = (_VCONV_TAG, id(v1), id(v2), cumulative)
    hit = cache.get(key, _CONV_COUNTER)
    if hit is not ABSENT:
        return hit[-1]
    result = _conv_values(env, v1, v2, depth, cumulative)
    cache.put(key, (v1, v2, result))
    return result


def _conv_thunks(
    env: Environment, a: Thunk, b: Thunk, depth: int
) -> bool:
    if a is b:
        return True
    if (
        a.env is b.env
        and a.term is not None
        and (a.term is b.term or a.term == b.term)
    ):
        # Equal terms under the same environment are the same value.
        return True
    # Closed closure pairs are plain term-level conversion problems, so
    # they go through the same structural cache convert.py uses — both
    # engines share entries, and repeated library arguments hit.
    key = None
    if a.env is None and b.env is None and a.term is not None:
        t1, t2 = a.term, b.term
        if t2 is not None:
            if t1 is t2 or t1 == t2:
                return True
            cache = env.reduction_cache
            if cache.enabled:
                key = (_CONV_TAG, t1, t2, False)
                hit = cache.get(key, _CONV_COUNTER)
                if hit is not ABSENT:
                    return hit
    result = _conv_values_cached(
        env,
        _force(env, a, True, _EMPTY_FROZEN, True),
        _force(env, b, True, _EMPTY_FROZEN, True),
        depth,
        False,
    )
    if key is not None:
        env.reduction_cache.put(key, result)
    return result


def _conv_args(
    env: Environment,
    args1: Tuple[Thunk, ...],
    args2: Tuple[Thunk, ...],
    depth: int,
) -> bool:
    for a, b in zip(args1, args2):
        if not _conv_thunks(env, a, b, depth):
            return False
    return True


def _eval_body(
    env: Environment, value: Union[VLam, VPi], fresh: Thunk
) -> "Value":
    return _eval(
        env,
        _Env(fresh, value.env),
        value.body,
        [],
        True,
        _EMPTY_FROZEN,
        True,
    )


def _apply_one(env: Environment, value: "Value", arg: Thunk) -> "Value":
    """Apply a value to one extra argument (the eta expansion)."""
    if type(value) is VLam:
        return _eval_body(env, value, arg)
    if type(value) is VSpine:
        return VSpine(value.head, value.args + (arg,))
    return VSpine(value, (arg,))


def _conv_values(
    env: Environment,
    v1: "Value",
    v2: "Value",
    depth: int,
    cumulative: bool,
) -> bool:
    while True:
        c1 = v1.__class__
        c2 = v2.__class__
        if c1 is VSort and c2 is VSort:
            if cumulative:
                return v1.level <= v2.level
            return v1.level == v2.level
        if c1 is VPi and c2 is VPi:
            d1 = _conv_eval(env, v1.domain, v1.env)
            d2 = _conv_eval(env, v2.domain, v2.env)
            if not _conv_values_cached(env, d1, d2, depth, False):
                return False
            fresh = _fresh(depth)
            v1 = _eval_body(env, v1, fresh)
            v2 = _eval_body(env, v2, fresh)
            depth += 1
            continue  # codomains keep the cumulativity mode (covariant)
        if c1 is VLam and c2 is VLam:
            d1 = _conv_eval(env, v1.domain, v1.env)
            d2 = _conv_eval(env, v2.domain, v2.env)
            if not _conv_values_cached(env, d1, d2, depth, False):
                return False
            fresh = _fresh(depth)
            v1 = _eval_body(env, v1, fresh)
            v2 = _eval_body(env, v2, fresh)
            depth += 1
            cumulative = False
            continue
        if c1 is VSpine and c2 is VSpine:
            h1 = v1.head
            h2 = v2.head
            hc1 = h1.__class__
            hc2 = h2.__class__
            if hc1 is HConst and hc2 is HConst and h1.name == h2.name:
                # Lazy delta: same constant on both sides — compare the
                # spines first and only unfold when they disagree.
                if len(v1.args) == len(v2.args) and _conv_args(
                    env, v1.args, v2.args, depth
                ):
                    if env.constant(h1.name).unfoldable:
                        _DELTA_AVOIDED.count += 1
                    return True
                u1 = _try_unfold(env, v1)
                if u1 is None:
                    return False  # rigid constant, distinct spines
                v1 = u1
                v2 = _try_unfold(env, v2) or v2
                continue
            if hc1 is HConst:
                u1 = _try_unfold(env, v1)
                if u1 is not None:
                    v1 = u1
                    continue
            if hc2 is HConst:
                u2 = _try_unfold(env, v2)
                if u2 is not None:
                    v2 = u2
                    continue
            # Rigid-rigid.
            if hc1 is not hc2:
                return False
            if hc1 is HVar:
                if h1.level != h2.level:
                    return False
            elif hc1 is HConst or hc1 is HInd:
                if h1.name != h2.name:
                    return False
            elif hc1 is HConstr:
                if h1.ind != h2.ind or h1.index != h2.index:
                    return False
            elif hc1 is HElim:
                if h1.ind != h2.ind or len(h1.cases) != len(h2.cases):
                    return False
                m1 = _conv_eval(env, h1.motive, h1.env)
                m2 = _conv_eval(env, h2.motive, h2.env)
                if not _conv_values_cached(env, m1, m2, depth, False):
                    return False
                for case1, case2 in zip(h1.cases, h2.cases):
                    k1 = _conv_eval(env, case1, h1.env)
                    k2 = _conv_eval(env, case2, h2.env)
                    if not _conv_values_cached(env, k1, k2, depth, False):
                        return False
                if not _conv_values_cached(
                    env, h1.scrut, h2.scrut, depth, False
                ):
                    return False
            elif hc1 is VSort:
                if h1.level != h2.level:
                    return False
            elif hc1 is VPi:
                if not _conv_values(env, h1, h2, depth, False):
                    return False
            else:
                return False
            if len(v1.args) != len(v2.args):
                return False
            return _conv_args(env, v1.args, v2.args, depth)
        # Mixed shapes: a folded constant head can still hide the match
        # (the legacy engine unfolds it inside whnf before comparing).
        if c1 is VSpine:
            u1 = _try_unfold(env, v1)
            if u1 is not None:
                v1 = u1
                continue
        if c2 is VSpine:
            u2 = _try_unfold(env, v2)
            if u2 is not None:
                v2 = u2
                continue
        # Eta: compare a function body against the other side applied to
        # the fresh variable (both sides are rigid by now, so this
        # matches the legacy expansion against the whnf-ed other side).
        if c1 is VLam:
            fresh = _fresh(depth)
            v1 = _eval_body(env, v1, fresh)
            v2 = _apply_one(env, v2, fresh)
            depth += 1
            cumulative = False
            continue
        if c2 is VLam:
            fresh = _fresh(depth)
            v1 = _apply_one(env, v1, fresh)
            v2 = _eval_body(env, v2, fresh)
            depth += 1
            cumulative = False
            continue
        return False


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def whnf_term(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    """Weak-head normal form via the machine (byte-identical to legacy)."""
    value = _eval(env, None, term, [], delta, frozen, False)
    _READBACKS.count += 1
    return _rb_value(value)


def nf_term(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    """Full normal form via evaluate-then-quote."""
    value = _eval(env, None, term, [], delta, frozen, False)
    _READBACKS.count += 1
    return _quote(env, value, 0, delta, frozen)


def beta_nf_term(term: Term, memo: Optional[dict] = None) -> Term:
    """Pure-beta normal form (no environment: no delta, no iota).

    The machine analogue of the legacy ``_beta_reduce``: with no
    environment, constants and eliminators are rigid, so evaluation
    contracts exactly the beta redexes — in one walk, instead of
    substitute-then-renormalize per redex.  Beta reduction is confluent,
    so both engines produce the same (hash-consed) normal form.
    """
    value = _eval(None, None, term, [], False, _EMPTY_FROZEN, False)
    _READBACKS.count += 1
    return _quote(None, value, 0, False, _EMPTY_FROZEN, memo)


def conv_terms(
    env: Environment, t1: Term, t2: Term, cumulative: bool
) -> bool:
    """Conversion (or cumulativity) via the lazy delta value oracle."""
    v1 = _conv_eval(env, t1, None)
    v2 = _conv_eval(env, t2, None)
    return _conv_values_cached(env, v1, v2, 0, cumulative)
