"""Inductive type declarations and eliminator machinery.

An inductive family is declared with a telescope of parameters, a telescope
of indices, a result sort, and a list of constructors.  From a declaration
we derive:

* the closed type of the family and of each constructor,
* the type of each case of the primitive eliminator (``case_type``),
* the iota-reduction of an eliminator applied to a constructor value
  (``iota_reduce_args``), and
* a strict-positivity check (non-nested, uniform parameters).

Constructor argument types are stored under the context
``[params..., previous args...]`` and the result indices under
``[params..., all args...]``, both as de Bruijn terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .stats import KERNEL_STATS
from .term import (
    App,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
    lift,
    mk_app,
    mk_lams,
    mk_pis,
    register_term_cache,
    subst,
    term_memo_enabled,
    unfold_app,
    unfold_pis,
)


class InductiveError(TermError):
    """Raised for malformed inductive declarations or eliminations."""


Telescope = Tuple[Tuple[str, Term], ...]


@dataclass(frozen=True)
class ConstructorDecl:
    """One constructor of an inductive family.

    ``args`` is a telescope under ``[params..., previous args...]``;
    ``result_indices`` are the index values of the constructed term, under
    ``[params..., all args...]``.
    """

    name: str
    args: Telescope
    result_indices: Tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "result_indices", tuple(self.result_indices))


@dataclass(frozen=True)
class InductiveDecl:
    """A declared inductive family."""

    name: str
    params: Telescope
    indices: Telescope
    sort: Sort
    constructors: Tuple[ConstructorDecl, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(self.params))
        object.__setattr__(self, "indices", tuple(self.indices))
        object.__setattr__(self, "constructors", tuple(self.constructors))

    @property
    def n_params(self) -> int:
        return len(self.params)

    @property
    def n_indices(self) -> int:
        return len(self.indices)

    @property
    def n_constructors(self) -> int:
        return len(self.constructors)

    def constructor_index(self, name: str) -> int:
        """Return the 0-based index of the constructor called ``name``."""
        for i, ctor in enumerate(self.constructors):
            if ctor.name == name:
                return i
        raise InductiveError(f"{self.name} has no constructor {name!r}")

    # -- Closed types -------------------------------------------------------

    def arity(self) -> Term:
        """Closed type of the family: ``Pi params indices, sort``."""
        return mk_pis(tuple(self.params) + tuple(self.indices), self.sort)

    def constructor_type(self, j: int) -> Term:
        """Closed type of constructor ``j``.

        ``Pi params args, Ind params result_indices``.
        """
        ctor = self.constructors[j]
        n_binders = self.n_params + len(ctor.args)
        param_vars = [
            Rel(n_binders - 1 - i) for i in range(self.n_params)
        ]
        head = mk_app(
            Ind(self.name), tuple(param_vars) + tuple(ctor.result_indices)
        )
        return mk_pis(tuple(self.params) + tuple(ctor.args), head)


# ---------------------------------------------------------------------------
# Instantiation helpers
# ---------------------------------------------------------------------------


def instantiate_telescope(tele: Telescope, values: Sequence[Term]) -> Telescope:
    """Substitute ``values`` for the first ``len(values)`` telescope binders.

    Each value is in the ambient context; telescope types are under the
    previous binders.  After substituting a value for the first binder, the
    i-th remaining type (which was under ``1 + i`` binders) is substituted
    at index ``i`` (the subst primitive lifts the value as needed).
    """
    remaining = list(tele)
    for value in values:
        if not remaining:
            raise InductiveError("too many arguments for telescope")
        remaining.pop(0)
        remaining = [
            (name, subst(ty, value, i)) for i, (name, ty) in enumerate(remaining)
        ]
    return tuple(remaining)


_instantiate_prefix = instantiate_telescope


def constructor_args_and_indices(
    decl: InductiveDecl, j: int, params: Sequence[Term]
) -> Tuple[Telescope, Tuple[Term, ...]]:
    """Instantiate constructor ``j`` with parameter values ``params``.

    Returns ``(args, indices)`` where ``args`` is the argument telescope in
    the ambient context (parameters substituted away) and ``indices`` are
    the result indices under the argument binders.
    """
    if len(params) != decl.n_params:
        raise InductiveError(
            f"{decl.name}: expected {decl.n_params} parameters, got {len(params)}"
        )
    ctor = decl.constructors[j]
    args = _instantiate_prefix(
        tuple(decl.params) + tuple(ctor.args), params
    )
    n_args = len(ctor.args)
    n_params = decl.n_params
    indices = []
    for idx in ctor.result_indices:
        # idx is under [params..., args...]; the m-th param sits at index
        # ``n_args + n_params - 1 - m``.  Substitute outermost-first: the
        # ``subst`` primitive lifts each ambient value across the binders
        # below its index, and removing an outer binder leaves the
        # indices of the inner ones unchanged.
        inst = idx
        for m, value in enumerate(params):
            inst = subst(inst, value, n_args + n_params - 1 - m)
        indices.append(inst)
    return args, tuple(indices)


@dataclass(frozen=True)
class RecArgInfo:
    """Description of one recursive occurrence in a constructor argument.

    ``position`` is the index of the argument within the constructor's
    telescope.  ``inner_binders`` is the number of Pi binders wrapping the
    recursive occurrence (0 for a plain recursive argument).  ``indices``
    are the index values at the occurrence, under the argument telescope
    plus the inner binders.
    """

    position: int
    inner_binders: int
    indices: Tuple[Term, ...]


def analyze_recursive_args(
    decl: InductiveDecl, j: int
) -> Tuple[Optional[RecArgInfo], ...]:
    """For each argument of constructor ``j``: recursion info or None.

    An argument is recursive when its type is ``Pi Delta, Ind(name) ...``
    for the inductive being declared.  The parameters of the occurrence
    must be the declared parameter variables (uniformity); this is checked
    by :func:`check_positivity`, not here.
    """
    ctor = decl.constructors[j]
    infos: List[Optional[RecArgInfo]] = []
    for position, (_name, arg_ty) in enumerate(ctor.args):
        inner, body = unfold_pis(arg_ty)
        head, head_args = unfold_app(body)
        if isinstance(head, Ind) and head.name == decl.name:
            indices = head_args[decl.n_params :]
            infos.append(
                RecArgInfo(
                    position=position,
                    inner_binders=len(inner),
                    indices=tuple(indices),
                )
            )
        else:
            infos.append(None)
    return tuple(infos)


def check_positivity(decl: InductiveDecl) -> None:
    """Check strict positivity (non-nested, uniform parameters).

    Every constructor argument type must either not mention the inductive,
    or have the shape ``Pi Delta, Ind(name) p... i...`` where ``Delta`` does
    not mention the inductive and the parameters ``p...`` are exactly the
    declared parameter variables.
    """
    from .term import mentions_global

    for j, ctor in enumerate(decl.constructors):
        for position, (arg_name, arg_ty) in enumerate(ctor.args):
            if not mentions_global(arg_ty, decl.name):
                continue
            inner, body = unfold_pis(arg_ty)
            for _n, dom in inner:
                if mentions_global(dom, decl.name):
                    raise InductiveError(
                        f"{decl.name}.{ctor.name}: argument {arg_name!r} is "
                        "not strictly positive (recursive occurrence to the "
                        "left of an arrow)"
                    )
            head, head_args = unfold_app(body)
            if not (isinstance(head, Ind) and head.name == decl.name):
                raise InductiveError(
                    f"{decl.name}.{ctor.name}: nested occurrence of the "
                    f"inductive in argument {arg_name!r} is unsupported"
                )
            if any(
                mentions_global(a, decl.name) for a in head_args
            ):
                raise InductiveError(
                    f"{decl.name}.{ctor.name}: recursive occurrence applied "
                    "to itself"
                )
            # Uniform parameters: under [params..., prev args..., Delta...],
            # the m-th parameter variable has index
            # inner + position + (n_params - 1 - m).
            depth = len(inner) + position
            for m in range(decl.n_params):
                expected = Rel(depth + decl.n_params - 1 - m)
                if m >= len(head_args) or head_args[m] != expected:
                    raise InductiveError(
                        f"{decl.name}.{ctor.name}: non-uniform parameter "
                        f"in recursive occurrence of argument {arg_name!r}"
                    )


# ---------------------------------------------------------------------------
# Renaming helper for interleaved IH binders
# ---------------------------------------------------------------------------


def apply_rel_renaming(term: Term, ren: Sequence[int], n_new: int) -> Term:
    """Rename de Bruijn variables according to ``ren``.

    Old ``Rel(k)`` for ``k < len(ren)`` becomes ``Rel(ren[k])``; old
    ``Rel(k)`` for ``k >= len(ren)`` becomes ``Rel(k - len(ren) + n_new)``.
    """
    return _rename(term, tuple(ren), n_new, 0)


def _rename(term: Term, ren: Tuple[int, ...], n_new: int, cutoff: int) -> Term:
    if isinstance(term, Rel):
        if term.index < cutoff:
            return term
        k = term.index - cutoff
        if k < len(ren):
            return Rel(ren[k] + cutoff)
        return Rel(k - len(ren) + n_new + cutoff)
    from .term import Const

    if isinstance(term, (Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        return App(
            _rename(term.fn, ren, n_new, cutoff),
            _rename(term.arg, ren, n_new, cutoff),
        )
    if isinstance(term, Lam):
        return Lam(
            term.name,
            _rename(term.domain, ren, n_new, cutoff),
            _rename(term.body, ren, n_new, cutoff + 1),
        )
    if isinstance(term, Pi):
        return Pi(
            term.name,
            _rename(term.domain, ren, n_new, cutoff),
            _rename(term.codomain, ren, n_new, cutoff + 1),
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            _rename(term.motive, ren, n_new, cutoff),
            tuple(_rename(c, ren, n_new, cutoff) for c in term.cases),
            _rename(term.scrut, ren, n_new, cutoff),
        )
    raise InductiveError(f"rename: unknown term {term!r}")


# ---------------------------------------------------------------------------
# Case types (the types of eliminator branches)
# ---------------------------------------------------------------------------


_CASE_TYPE_MEMO: dict = register_term_cache({})
_CASE_TYPE_MEMO_MAX = 1 << 18
_CASE_TYPE_COUNTER = KERNEL_STATS.counter("case_type")


def case_type(
    decl: InductiveDecl, j: int, params: Sequence[Term], motive: Term
) -> Term:
    """The type of the ``j``-th case of ``Elim`` at ``params`` and ``motive``.

    ``params`` and ``motive`` live in the ambient context.  The case type
    binds the constructor arguments in order, with an induction-hypothesis
    binder inserted immediately after each recursive argument, and
    concludes ``motive result_indices (Constr j params args)``.

    The result is a pure function of the (immutable) declaration, the
    parameters, and the motive, so it is memoized; the type checker asks
    for the same case types over and over while checking eliminations.
    """
    if term_memo_enabled():
        # Keyed by identity, with the referents pinned in the value, so
        # a hit can never swap in binder names from an equal-but-
        # differently-named motive or parameter.
        key = (id(decl), j, tuple(id(p) for p in params), id(motive))
        entry = _CASE_TYPE_MEMO.get(key)
        if entry is not None:
            _CASE_TYPE_COUNTER.hits += 1
            return entry[-1]
        _CASE_TYPE_COUNTER.misses += 1
        result = _case_type(decl, j, params, motive)
        if len(_CASE_TYPE_MEMO) >= _CASE_TYPE_MEMO_MAX:
            _CASE_TYPE_MEMO.clear()
        _CASE_TYPE_MEMO[key] = (decl, tuple(params), motive, result)
        return result
    return _case_type(decl, j, params, motive)


def _case_type(
    decl: InductiveDecl, j: int, params: Sequence[Term], motive: Term
) -> Term:
    args, result_indices = constructor_args_and_indices(decl, j, params)
    rec_infos = analyze_recursive_args(decl, j)
    n_args = len(args)

    binders: List[Tuple[str, Term]] = []
    heights: List[int] = []  # bottom-height of each constructor arg binder
    height = 0

    for i, (arg_name, arg_ty) in enumerate(args):
        # arg_ty is under the ambient context + previous constructor args
        # (i of them); rename into the interleaved context (height binders).
        ren = [height - 1 - heights[i - 1 - m] for m in range(i)]
        arg_ty_new = apply_rel_renaming(arg_ty, ren, height)
        binders.append((arg_name, arg_ty_new))
        heights.append(height)
        height += 1

        info = rec_infos[i]
        if info is not None:
            ih_ty = _ih_type(decl, motive, arg_ty_new, height)
            binders.append((f"IH{arg_name}", ih_ty))
            height += 1

    # Conclusion: motive (renamed result indices) (Constr j params argvars).
    ren = [height - 1 - heights[n_args - 1 - m] for m in range(n_args)]
    concl_indices = [
        apply_rel_renaming(idx, ren, height) for idx in result_indices
    ]
    arg_vars = [Rel(height - 1 - heights[i]) for i in range(n_args)]
    lifted_params = [lift(p, height) for p in params]
    value = mk_app(Constr(decl.name, j), tuple(lifted_params) + tuple(arg_vars))
    conclusion = mk_app(
        lift(motive, height), tuple(concl_indices) + (value,)
    )
    return mk_pis(binders, conclusion)


def _ih_type(
    decl: InductiveDecl, motive: Term, arg_ty_new: Term, height: int
) -> Term:
    """Type of the IH binder for a recursive argument.

    ``arg_ty_new`` is the argument's type in the interleaved context just
    *before* the argument binder was pushed; ``height`` is the number of
    binders pushed so far (including the argument binder itself).  The IH
    binder sits directly after the argument, so the argument is ``Rel(0)``
    at the IH position.
    """
    # Read the argument type under the argument binder itself.
    ty = lift(arg_ty_new, 1)
    inner, body = unfold_pis(ty)
    d = len(inner)
    _head, head_args = unfold_app(body)
    occ_indices = head_args[decl.n_params :]
    arg_var = Rel(d)  # the recursive argument, under the inner binders
    applied = mk_app(arg_var, tuple(Rel(d - 1 - k) for k in range(d)))
    motive_lifted = lift(motive, height + d)
    return mk_pis(inner, mk_app(motive_lifted, tuple(occ_indices) + (applied,)))


# ---------------------------------------------------------------------------
# Iota reduction
# ---------------------------------------------------------------------------


def iota_reduce(
    decl: InductiveDecl,
    motive: Term,
    cases: Sequence[Term],
    j: int,
    params: Sequence[Term],
    ctor_args: Sequence[Term],
) -> Term:
    """Reduce ``Elim(Constr(j) params ctor_args, motive){cases}``.

    Returns ``cases[j]`` applied to the constructor arguments with the
    recursive calls (induction hypotheses) interleaved, *unreduced* (the
    caller's normalizer will continue).
    """
    ctor = decl.constructors[j]
    if len(ctor_args) != len(ctor.args):
        raise InductiveError(
            f"iota: {decl.name} constructor {j} expects {len(ctor.args)} "
            f"arguments, got {len(ctor_args)}"
        )
    rec_infos = analyze_recursive_args(decl, j)
    inst_arg_types = instantiate_arg_types(decl, j, params, ctor_args)

    applied: List[Term] = []
    for i, value in enumerate(ctor_args):
        applied.append(value)
        info = rec_infos[i]
        if info is None:
            continue
        if info.inner_binders == 0:
            applied.append(Elim(decl.name, motive, tuple(cases), value))
        else:
            # Functional recursive argument: eta-expand the IH.  The
            # argument's type (with parameters and previous argument values
            # substituted in) gives the inner telescope.
            arg_ty = inst_arg_types[i]
            inner, _body = unfold_pis(arg_ty)
            d = len(inner)
            applied_arg = mk_app(
                lift(value, d), tuple(Rel(d - 1 - k) for k in range(d))
            )
            ih = mk_lams(
                inner,
                Elim(
                    decl.name,
                    lift(motive, d),
                    tuple(lift(c, d) for c in cases),
                    applied_arg,
                ),
            )
            applied.append(ih)
    return mk_app(cases[j], applied)


def instantiate_arg_types(
    decl: InductiveDecl, j: int, params: Sequence[Term], values: Sequence[Term]
) -> Tuple[Term, ...]:
    """Types of constructor ``j``'s arguments at concrete ``values``.

    Returns, for each argument position, its type in the ambient context
    with parameters and all previous argument values substituted in.
    """
    args_tele, _ = constructor_args_and_indices(decl, j, params)
    out: List[Term] = []
    remaining = list(args_tele)
    consumed: List[Term] = []
    for value in values:
        if not remaining:
            break
        name, ty = remaining.pop(0)
        out.append(ty)
        remaining = [
            (n, subst(t, value, i)) for i, (n, t) in enumerate(remaining)
        ]
        consumed.append(value)
    return tuple(out)
