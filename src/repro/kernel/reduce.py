"""Reduction: beta, iota, delta, and normal forms.

Implements weak-head normalization (:func:`whnf`) and full normalization
(:func:`nf`).  Delta unfolding of constants can be restricted via a
``frozen`` set — the implementation analogue of Pumpkin Pi's cache that
tells the tool *not* to delta-reduce certain terms (Section 4.4).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from .env import Environment
from .inductive import iota_reduce
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
    mk_app,
    subst,
    unfold_app,
)


class ReduceError(TermError):
    """Raised when reduction encounters an ill-formed redex."""


def whnf(
    env: Environment,
    term: Term,
    delta: bool = True,
    frozen: Optional[FrozenSet[str]] = None,
) -> Term:
    """Weak-head normal form of ``term``.

    ``delta=False`` disables constant unfolding entirely; ``frozen`` names
    constants that must not be unfolded even when delta is enabled.
    """
    frozen = frozen or frozenset()
    args: List[Term] = []
    while True:
        if isinstance(term, App):
            args.append(term.arg)
            term = term.fn
            continue
        if isinstance(term, Lam) and args:
            term = subst(term.body, args.pop())
            continue
        if isinstance(term, Const) and delta and term.name not in frozen:
            decl = env.constant(term.name)
            if decl.unfoldable:
                term = decl.body
                continue
        if isinstance(term, Elim):
            scrut = whnf(env, term.scrut, delta=delta, frozen=frozen)
            head, ctor_args = unfold_app(scrut)
            if isinstance(head, Constr) and head.ind == term.ind:
                decl = env.inductive(term.ind)
                n_params = decl.n_params
                params = ctor_args[:n_params]
                value_args = ctor_args[n_params:]
                term = iota_reduce(
                    decl,
                    term.motive,
                    term.cases,
                    head.index,
                    params,
                    value_args,
                )
                continue
            term = Elim(term.ind, term.motive, term.cases, scrut)
        break
    args.reverse()
    return mk_app(term, args)


def nf(
    env: Environment,
    term: Term,
    delta: bool = True,
    frozen: Optional[FrozenSet[str]] = None,
) -> Term:
    """Full (strong) normal form of ``term``."""
    frozen = frozen or frozenset()
    term = whnf(env, term, delta=delta, frozen=frozen)
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        head, args = unfold_app(term)
        # The head of a whnf application is not a redex; normalize pieces.
        norm_head = _nf_head(env, head, delta, frozen)
        norm_args = [nf(env, a, delta=delta, frozen=frozen) for a in args]
        return mk_app(norm_head, norm_args)
    if isinstance(term, Lam):
        return Lam(
            term.name,
            nf(env, term.domain, delta=delta, frozen=frozen),
            nf(env, term.body, delta=delta, frozen=frozen),
        )
    if isinstance(term, Pi):
        return Pi(
            term.name,
            nf(env, term.domain, delta=delta, frozen=frozen),
            nf(env, term.codomain, delta=delta, frozen=frozen),
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            nf(env, term.motive, delta=delta, frozen=frozen),
            tuple(nf(env, c, delta=delta, frozen=frozen) for c in term.cases),
            nf(env, term.scrut, delta=delta, frozen=frozen),
        )
    raise ReduceError(f"nf: unknown term {term!r}")


def _nf_head(
    env: Environment, head: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    """Normalize the head of a stuck application spine."""
    if isinstance(head, (Rel, Sort, Const, Ind, Constr)):
        return head
    if isinstance(head, Elim):
        return Elim(
            head.ind,
            nf(env, head.motive, delta=delta, frozen=frozen),
            tuple(nf(env, c, delta=delta, frozen=frozen) for c in head.cases),
            nf(env, head.scrut, delta=delta, frozen=frozen),
        )
    if isinstance(head, (Lam, Pi)):
        # A whnf application cannot have a Lam head with pending args, but a
        # spine can be empty; normalize structurally.
        return nf(env, head, delta=delta, frozen=frozen)
    raise ReduceError(f"nf: unexpected application head {head!r}")


def beta_reduce(term: Term) -> Term:
    """Pure beta reduction to normal form (no environment needed).

    Used by the transformation to clean up configuration-term
    applications without unfolding any globals.
    """
    if isinstance(term, App):
        fn = beta_reduce(term.fn)
        arg = beta_reduce(term.arg)
        if isinstance(fn, Lam):
            return beta_reduce(subst(fn.body, arg))
        return App(fn, arg)
    if isinstance(term, Lam):
        return Lam(term.name, beta_reduce(term.domain), beta_reduce(term.body))
    if isinstance(term, Pi):
        return Pi(
            term.name, beta_reduce(term.domain), beta_reduce(term.codomain)
        )
    if isinstance(term, Elim):
        return Elim(
            term.ind,
            beta_reduce(term.motive),
            tuple(beta_reduce(c) for c in term.cases),
            beta_reduce(term.scrut),
        )
    return term


def beta_iota_reduce(env: Environment, term: Term) -> Term:
    """Beta + iota normalization without delta unfolding.

    This is the reduction the proof term transformation applies to its
    output (step 4 in Figure 11): it simplifies applications of the
    configuration terms without unfolding unrelated constants.
    """
    return nf(env, term, delta=False)


def unfold_constant(env: Environment, term: Term, name: str) -> Term:
    """Delta-unfold exactly the constant ``name`` everywhere in ``term``."""
    decl = env.constant(name)
    if decl.body is None:
        raise ReduceError(f"constant {name!r} has no body to unfold")

    def go(t: Term) -> Term:
        if isinstance(t, Const) and t.name == name:
            return decl.body
        if isinstance(t, App):
            return App(go(t.fn), go(t.arg))
        if isinstance(t, Lam):
            return Lam(t.name, go(t.domain), go(t.body))
        if isinstance(t, Pi):
            return Pi(t.name, go(t.domain), go(t.codomain))
        if isinstance(t, Elim):
            return Elim(
                t.ind, go(t.motive), tuple(go(c) for c in t.cases), go(t.scrut)
            )
        return t

    return go(term)
