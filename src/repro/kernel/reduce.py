"""Reduction: beta, iota, delta, and normal forms.

Implements weak-head normalization (:func:`whnf`) and full normalization
(:func:`nf`).  Delta unfolding of constants can be restricted via a
``frozen`` set — the implementation analogue of Pumpkin Pi's cache that
tells the tool *not* to delta-reduce certain terms (Section 4.4).

Both normalizers consult the :class:`~repro.kernel.env.ReductionCache`
attached to the environment, keyed by ``(operation, term, delta,
frozen)``.  The transformer, the type checker, and the decompiler all
normalize through the same environment, so a reduction computed once is
shared kernel-wide; hash-consed terms make the keys O(1) to hash and
compare.  The structural rebuilders return their input unchanged when no
child changed, so repeated normalization of an already-normal term
allocates nothing.

By default both normalizers dispatch to the NbE abstract machine in
:mod:`repro.kernel.machine` (closure-based evaluation: beta steps are
O(1) environment extensions instead of ``subst`` traversals), falling
back to the substitution-based reducers in this module when the machine
is disabled (``REPRO_DISABLE_NBE=1`` or
:func:`~repro.kernel.machine.set_nbe`).  Both engines produce
byte-identical results and share the same cache entries.

Cache keys for ``App``/``Elim``/``Const`` inputs are *shallow
structural* — class tag plus child identities — so structurally equal
redexes rebuilt outside the hash-consing arena (distinct parent nodes
over the same interned children) still hit.  This is name-safe because
those three classes carry no binder display names: identical children
by identity means identical bytes.  ``Lam``/``Pi`` keep whole-node
identity keys (their names are ignored by ``__eq__``, so structural
keys could rename binders).

Terms nested deeper than Python's recursion limit raise a clean
:class:`ReduceError` instead of ``RecursionError`` (the de Bruijn
operations in :mod:`repro.kernel.term` are explicit-stack and have no
such limit).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from . import machine
from .env import ABSENT, Environment
from .inductive import iota_reduce
from .stats import KERNEL_STATS
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
    mk_app,
    register_term_cache,
    subst,
    term_memo_enabled,
    unfold_app,
)


class ReduceError(TermError):
    """Raised when reduction encounters an ill-formed redex."""


_WHNF_COUNTER = KERNEL_STATS.counter("whnf")
_NF_COUNTER = KERNEL_STATS.counter("nf")

# Key tags keep whnf and nf entries apart in the shared store.
_WHNF_TAG = "whnf"
_NF_TAG = "nf"

_TOO_DEEP = (
    "term is nested too deeply to normalize recursively "
    "(Python recursion limit reached); raise sys.setrecursionlimit "
    "or reduce the term's depth"
)


def _whnf_key(
    term: Term, delta: bool, frozen: FrozenSet[str]
) -> Optional[Tuple]:
    """Shallow structural cache key for whnf, or None for other shapes.

    Only head shapes that whnf can actually act on are worth caching.
    Keys combine the class tag with *child* identities, so structurally
    equal ``App``/``Elim`` nodes rebuilt over the same interned children
    share one entry (the fix for the 0%-hit whnf cache in the ``reduce``
    phases, where redexes are assembled fresh each time).  None of these
    classes carries a binder name, so a hit can never rename binders;
    the input is pinned in the stored value to keep child ids stable.
    """
    cls = term.__class__
    if cls is App:
        return (_WHNF_TAG, 0, id(term.fn), id(term.arg), delta, frozen)
    if cls is Elim:
        return (
            _WHNF_TAG,
            1,
            term.ind,
            id(term.motive),
            tuple(map(id, term.cases)),
            id(term.scrut),
            delta,
            frozen,
        )
    if cls is Const:
        return (_WHNF_TAG, 2, term.name, delta, frozen)
    return None


def whnf(
    env: Environment,
    term: Term,
    delta: bool = True,
    frozen: Optional[FrozenSet[str]] = None,
) -> Term:
    """Weak-head normal form of ``term``.

    ``delta=False`` disables constant unfolding entirely; ``frozen`` names
    constants that must not be unfolded even when delta is enabled.
    """
    frozen = frozen or frozenset()
    try:
        return _whnf_dispatch(env, term, delta, frozen)
    except RecursionError:
        raise ReduceError(_TOO_DEEP) from None


def _whnf_dispatch(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    if machine.nbe_enabled():
        return _whnf_nbe(env, term, delta, frozen)
    return _whnf(env, term, delta, frozen)


def _whnf_nbe(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    # Only App/Elim/Const can reduce at the head; everything else is
    # already weak-head normal (the legacy loop falls through in O(1),
    # the machine would pay a full eval + readback for nothing).
    if not isinstance(term, (App, Elim, Const)):
        return term
    if type(term) is App:
        # An application whose spine head is a variable, inductive, or
        # constructor is neutral: no delta/beta/iota step can fire at the
        # head, so the term is its own whnf — skip the machine round trip
        # (type checking probes types like ``list A`` constantly).
        head = term.fn
        while type(head) is App:
            head = head.fn
        if not isinstance(head, (Lam, Const, Elim)):
            return term
    cache = env.reduction_cache
    key = _whnf_key(term, delta, frozen) if cache.enabled else None
    if key is not None:
        hit = cache.get(key, _WHNF_COUNTER)
        if hit is not ABSENT:
            return hit[1]
    result = machine.whnf_term(env, term, delta, frozen)
    if key is not None:
        cache.put(key, (term, result))
    return result


def _whnf(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    cache = env.reduction_cache
    key = _whnf_key(term, delta, frozen) if cache.enabled else None
    pin = term
    if key is not None:
        hit = cache.get(key, _WHNF_COUNTER)
        if hit is not ABSENT:
            return hit[1]
    args: List[Term] = []
    while True:
        if isinstance(term, App):
            args.append(term.arg)
            term = term.fn
            continue
        if isinstance(term, Lam) and args:
            term = subst(term.body, args.pop())
            continue
        if isinstance(term, Const) and delta and term.name not in frozen:
            decl = env.constant(term.name)
            if decl.unfoldable:
                term = decl.body
                continue
        if isinstance(term, Elim):
            scrut = _whnf(env, term.scrut, delta, frozen)
            head, ctor_args = unfold_app(scrut)
            if isinstance(head, Constr) and head.ind == term.ind:
                decl = env.inductive(term.ind)
                n_params = decl.n_params
                params = ctor_args[:n_params]
                value_args = ctor_args[n_params:]
                term = iota_reduce(
                    decl,
                    term.motive,
                    term.cases,
                    head.index,
                    params,
                    value_args,
                )
                continue
            if scrut is not term.scrut:
                term = Elim(term.ind, term.motive, term.cases, scrut)
        break
    args.reverse()
    result = mk_app(term, args)
    if key is not None:
        cache.put(key, (pin, result))
    return result


def _nf_key(
    term: Term, delta: bool, frozen: FrozenSet[str]
) -> Optional[Tuple]:
    """Cache key for nf: shallow structural where name-safe, else id."""
    cls = term.__class__
    if cls is App:
        return (_NF_TAG, 0, id(term.fn), id(term.arg), delta, frozen)
    if cls is Elim:
        return (
            _NF_TAG,
            1,
            term.ind,
            id(term.motive),
            tuple(map(id, term.cases)),
            id(term.scrut),
            delta,
            frozen,
        )
    if cls is Const:
        return (_NF_TAG, 2, term.name, delta, frozen)
    if cls is Lam or cls is Pi:
        # Lam/Pi carry display names that __eq__ ignores; identity keys
        # keep a hit from renaming binders.
        return (_NF_TAG, 3, id(term), delta, frozen)
    return None


def nf(
    env: Environment,
    term: Term,
    delta: bool = True,
    frozen: Optional[FrozenSet[str]] = None,
) -> Term:
    """Full (strong) normal form of ``term``.

    Structural descent with per-node caching; head reduction dispatches
    to the NbE machine when it is enabled, so beta/iota chains inside
    each weak-head step are environment extensions rather than ``subst``
    traversals while subterm normal forms stay individually cached.
    (:func:`repro.kernel.machine.nf_term` is the machine's monolithic
    evaluate-then-quote normalizer; the differential tests compare it
    against this path.)
    """
    frozen = frozen or frozenset()
    try:
        return _nf(env, term, delta, frozen)
    except RecursionError:
        raise ReduceError(_TOO_DEEP) from None


def _nf(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    if isinstance(term, (Rel, Sort, Ind, Constr)):
        return term
    cache = env.reduction_cache
    key = _nf_key(term, delta, frozen) if cache.enabled else None
    if key is not None:
        hit = cache.get(key, _NF_COUNTER)
        if hit is not ABSENT:
            return hit[1]
    result = _nf_uncached(env, term, delta, frozen)
    if key is not None:
        cache.put(key, (term, result))
    return result


def _nf_uncached(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    term = _whnf_dispatch(env, term, delta, frozen)
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        head, args = unfold_app(term)
        # The head of a whnf application is not a redex; normalize pieces.
        norm_head = _nf_head(env, head, delta, frozen)
        norm_args = [_nf(env, a, delta, frozen) for a in args]
        if norm_head is head and all(a is b for a, b in zip(norm_args, args)):
            return term
        return mk_app(norm_head, norm_args)
    if isinstance(term, Lam):
        domain = _nf(env, term.domain, delta, frozen)
        body = _nf(env, term.body, delta, frozen)
        if domain is term.domain and body is term.body:
            return term
        return Lam(term.name, domain, body)
    if isinstance(term, Pi):
        domain = _nf(env, term.domain, delta, frozen)
        codomain = _nf(env, term.codomain, delta, frozen)
        if domain is term.domain and codomain is term.codomain:
            return term
        return Pi(term.name, domain, codomain)
    if isinstance(term, Elim):
        motive = _nf(env, term.motive, delta, frozen)
        cases = [_nf(env, c, delta, frozen) for c in term.cases]
        scrut = _nf(env, term.scrut, delta, frozen)
        if (
            motive is term.motive
            and scrut is term.scrut
            and all(a is b for a, b in zip(cases, term.cases))
        ):
            return term
        return Elim(term.ind, motive, tuple(cases), scrut)
    raise ReduceError(f"nf: unknown term {term!r}")


def _nf_head(
    env: Environment, head: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    """Normalize the head of a stuck application spine."""
    if isinstance(head, (Rel, Sort, Const, Ind, Constr)):
        return head
    if isinstance(head, Elim):
        motive = _nf(env, head.motive, delta, frozen)
        cases = [_nf(env, c, delta, frozen) for c in head.cases]
        scrut = _nf(env, head.scrut, delta, frozen)
        if (
            motive is head.motive
            and scrut is head.scrut
            and all(a is b for a, b in zip(cases, head.cases))
        ):
            return head
        return Elim(head.ind, motive, tuple(cases), scrut)
    if isinstance(head, (Lam, Pi)):
        # A whnf application cannot have a Lam head with pending args, but a
        # spine can be empty; normalize structurally.
        return _nf(env, head, delta, frozen)
    raise ReduceError(f"nf: unexpected application head {head!r}")


def beta_reduce(term: Term) -> Term:
    """Pure beta reduction to normal form (no environment needed).

    Used by the transformation to clean up configuration-term
    applications without unfolding any globals.  Returns the input
    unchanged when it is already beta-normal.
    """
    try:
        return _beta_reduce(term)
    except RecursionError:
        raise ReduceError(_TOO_DEEP) from None


_BETA_MEMO: dict = register_term_cache({})
_BETA_MEMO_MAX = 1 << 19
_BETA_COUNTER = KERNEL_STATS.counter("beta")


def _beta_reduce(term: Term) -> Term:
    # Pure function of the term alone, so composite nodes are memoized
    # globally; hash consing makes repeated subtrees hit the table.
    # Identity keys (with the node pinned in the value) keep the memo
    # name-faithful: equality ignores binder display names.
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if term_memo_enabled():
        entry = _BETA_MEMO.get(id(term))
        if entry is not None:
            _BETA_COUNTER.hits += 1
            return entry[1]
        _BETA_COUNTER.misses += 1
        result = _beta_reduce_node(term)
        if len(_BETA_MEMO) >= _BETA_MEMO_MAX:
            _BETA_MEMO.clear()
        _BETA_MEMO[id(term)] = (term, result)
        return result
    # beta_reduce stays substitution-based in both engine modes: it is a
    # pure term-level function whose per-node memo (plus hash consing)
    # beats monolithic evaluate-and-quote on the repeated, mostly-normal
    # goals the tactics engine feeds it.  machine.beta_nf_term is the
    # machine equivalent, kept for the differential tests.
    return _beta_reduce_node(term)


def _beta_reduce_node(term: Term) -> Term:
    if isinstance(term, App):
        fn = _beta_reduce(term.fn)
        arg = _beta_reduce(term.arg)
        if isinstance(fn, Lam):
            return _beta_reduce(subst(fn.body, arg))
        if fn is term.fn and arg is term.arg:
            return term
        return App(fn, arg)
    if isinstance(term, Lam):
        domain = _beta_reduce(term.domain)
        body = _beta_reduce(term.body)
        if domain is term.domain and body is term.body:
            return term
        return Lam(term.name, domain, body)
    if isinstance(term, Pi):
        domain = _beta_reduce(term.domain)
        codomain = _beta_reduce(term.codomain)
        if domain is term.domain and codomain is term.codomain:
            return term
        return Pi(term.name, domain, codomain)
    if isinstance(term, Elim):
        motive = _beta_reduce(term.motive)
        cases = [_beta_reduce(c) for c in term.cases]
        scrut = _beta_reduce(term.scrut)
        if (
            motive is term.motive
            and scrut is term.scrut
            and all(a is b for a, b in zip(cases, term.cases))
        ):
            return term
        return Elim(term.ind, motive, tuple(cases), scrut)
    return term


def beta_iota_reduce(env: Environment, term: Term) -> Term:
    """Beta + iota normalization without delta unfolding.

    This is the reduction the proof term transformation applies to its
    output (step 4 in Figure 11): it simplifies applications of the
    configuration terms without unfolding unrelated constants.
    """
    return nf(env, term, delta=False)


def unfold_constant(env: Environment, term: Term, name: str) -> Term:
    """Delta-unfold exactly the constant ``name`` everywhere in ``term``.

    Explicit-stack (no recursion limit on deep terms) with per-node
    memoization and no-change node reuse: subtrees not mentioning the
    constant come back identical (``is``), so unfolding in an
    already-unfolded term allocates nothing.  The body is closed, so it
    substitutes in without lifting.
    """
    decl = env.constant(name)
    body = decl.body
    if body is None:
        raise ReduceError(f"constant {name!r} has no body to unfold")

    # memo: id(node) -> result; shared subtrees rebuild once.  Keys stay
    # valid because every keyed node is alive in the input term.
    memo: dict = {}
    _VISIT, _BUILD = 0, 1
    todo: List[Tuple[int, Term]] = [(_VISIT, term)]
    results: List[Term] = []
    while todo:
        op, t = todo.pop()
        cls = t.__class__
        if op == _VISIT:
            done = memo.get(id(t))
            if done is not None:
                results.append(done)
                continue
            if cls is Const:
                r = body if t.name == name else t
                memo[id(t)] = r
                results.append(r)
            elif cls is App:
                todo.append((_BUILD, t))
                todo.append((_VISIT, t.arg))
                todo.append((_VISIT, t.fn))
            elif cls is Lam:
                todo.append((_BUILD, t))
                todo.append((_VISIT, t.body))
                todo.append((_VISIT, t.domain))
            elif cls is Pi:
                todo.append((_BUILD, t))
                todo.append((_VISIT, t.codomain))
                todo.append((_VISIT, t.domain))
            elif cls is Elim:
                todo.append((_BUILD, t))
                todo.append((_VISIT, t.scrut))
                for c in reversed(t.cases):
                    todo.append((_VISIT, c))
                todo.append((_VISIT, t.motive))
            else:
                memo[id(t)] = t
                results.append(t)
            continue
        if cls is App:
            arg = results.pop()
            fn = results.pop()
            r = t if (fn is t.fn and arg is t.arg) else App(fn, arg)
        elif cls is Lam:
            b = results.pop()
            d = results.pop()
            r = t if (d is t.domain and b is t.body) else Lam(t.name, d, b)
        elif cls is Pi:
            b = results.pop()
            d = results.pop()
            r = t if (d is t.domain and b is t.codomain) else Pi(t.name, d, b)
        else:  # Elim
            scrut = results.pop()
            cases = [results.pop() for _ in t.cases]
            cases.reverse()
            motive = results.pop()
            if (
                motive is t.motive
                and scrut is t.scrut
                and all(a is b for a, b in zip(cases, t.cases))
            ):
                r = t
            else:
                r = Elim(t.ind, motive, tuple(cases), scrut)
        memo[id(t)] = r
        results.append(r)
    return results[0]
