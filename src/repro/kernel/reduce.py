"""Reduction: beta, iota, delta, and normal forms.

Implements weak-head normalization (:func:`whnf`) and full normalization
(:func:`nf`).  Delta unfolding of constants can be restricted via a
``frozen`` set — the implementation analogue of Pumpkin Pi's cache that
tells the tool *not* to delta-reduce certain terms (Section 4.4).

Both normalizers consult the :class:`~repro.kernel.env.ReductionCache`
attached to the environment, keyed by ``(operation, term, delta,
frozen)``.  The transformer, the type checker, and the decompiler all
normalize through the same environment, so a reduction computed once is
shared kernel-wide; hash-consed terms make the keys O(1) to hash and
compare.  The structural rebuilders return their input unchanged when no
child changed, so repeated normalization of an already-normal term
allocates nothing.

Terms nested deeper than Python's recursion limit raise a clean
:class:`ReduceError` instead of ``RecursionError`` (the de Bruijn
operations in :mod:`repro.kernel.term` are explicit-stack and have no
such limit).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional

from .env import ABSENT, Environment
from .inductive import iota_reduce
from .stats import KERNEL_STATS
from .term import (
    App,
    Const,
    Constr,
    Elim,
    Ind,
    Lam,
    Pi,
    Rel,
    Sort,
    Term,
    TermError,
    mk_app,
    register_term_cache,
    subst,
    term_memo_enabled,
    unfold_app,
)


class ReduceError(TermError):
    """Raised when reduction encounters an ill-formed redex."""


_WHNF_COUNTER = KERNEL_STATS.counter("whnf")
_NF_COUNTER = KERNEL_STATS.counter("nf")

# Key tags keep whnf and nf entries apart in the shared store.
_WHNF_TAG = "whnf"
_NF_TAG = "nf"

_TOO_DEEP = (
    "term is nested too deeply to normalize recursively "
    "(Python recursion limit reached); raise sys.setrecursionlimit "
    "or reduce the term's depth"
)


def whnf(
    env: Environment,
    term: Term,
    delta: bool = True,
    frozen: Optional[FrozenSet[str]] = None,
) -> Term:
    """Weak-head normal form of ``term``.

    ``delta=False`` disables constant unfolding entirely; ``frozen`` names
    constants that must not be unfolded even when delta is enabled.
    """
    frozen = frozen or frozenset()
    try:
        return _whnf(env, term, delta, frozen)
    except RecursionError:
        raise ReduceError(_TOO_DEEP) from None


def _whnf(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    # Only head shapes that whnf can actually act on are worth caching.
    # Keys use object identity (the input is pinned in the value) so a
    # hit can never rename binders via an equal-but-differently-named
    # input; see _transform_rels for the full rationale.
    cache = env.reduction_cache
    key = None
    pin = term
    if cache.enabled and isinstance(term, (App, Elim, Const)):
        key = (_WHNF_TAG, id(term), delta, frozen)
        hit = cache.get(key, _WHNF_COUNTER)
        if hit is not ABSENT:
            return hit[1]
    args: List[Term] = []
    while True:
        if isinstance(term, App):
            args.append(term.arg)
            term = term.fn
            continue
        if isinstance(term, Lam) and args:
            term = subst(term.body, args.pop())
            continue
        if isinstance(term, Const) and delta and term.name not in frozen:
            decl = env.constant(term.name)
            if decl.unfoldable:
                term = decl.body
                continue
        if isinstance(term, Elim):
            scrut = _whnf(env, term.scrut, delta, frozen)
            head, ctor_args = unfold_app(scrut)
            if isinstance(head, Constr) and head.ind == term.ind:
                decl = env.inductive(term.ind)
                n_params = decl.n_params
                params = ctor_args[:n_params]
                value_args = ctor_args[n_params:]
                term = iota_reduce(
                    decl,
                    term.motive,
                    term.cases,
                    head.index,
                    params,
                    value_args,
                )
                continue
            if scrut is not term.scrut:
                term = Elim(term.ind, term.motive, term.cases, scrut)
        break
    args.reverse()
    result = mk_app(term, args)
    if key is not None:
        cache.put(key, (pin, result))
    return result


def nf(
    env: Environment,
    term: Term,
    delta: bool = True,
    frozen: Optional[FrozenSet[str]] = None,
) -> Term:
    """Full (strong) normal form of ``term``."""
    frozen = frozen or frozenset()
    try:
        return _nf(env, term, delta, frozen)
    except RecursionError:
        raise ReduceError(_TOO_DEEP) from None


def _nf(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    if isinstance(term, (Rel, Sort, Ind, Constr)):
        return term
    cache = env.reduction_cache
    key = None
    if cache.enabled:
        key = (_NF_TAG, id(term), delta, frozen)
        hit = cache.get(key, _NF_COUNTER)
        if hit is not ABSENT:
            return hit[1]
    result = _nf_uncached(env, term, delta, frozen)
    if key is not None:
        cache.put(key, (term, result))
    return result


def _nf_uncached(
    env: Environment, term: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    term = _whnf(env, term, delta, frozen)
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if isinstance(term, App):
        head, args = unfold_app(term)
        # The head of a whnf application is not a redex; normalize pieces.
        norm_head = _nf_head(env, head, delta, frozen)
        norm_args = [_nf(env, a, delta, frozen) for a in args]
        if norm_head is head and all(a is b for a, b in zip(norm_args, args)):
            return term
        return mk_app(norm_head, norm_args)
    if isinstance(term, Lam):
        domain = _nf(env, term.domain, delta, frozen)
        body = _nf(env, term.body, delta, frozen)
        if domain is term.domain and body is term.body:
            return term
        return Lam(term.name, domain, body)
    if isinstance(term, Pi):
        domain = _nf(env, term.domain, delta, frozen)
        codomain = _nf(env, term.codomain, delta, frozen)
        if domain is term.domain and codomain is term.codomain:
            return term
        return Pi(term.name, domain, codomain)
    if isinstance(term, Elim):
        motive = _nf(env, term.motive, delta, frozen)
        cases = [_nf(env, c, delta, frozen) for c in term.cases]
        scrut = _nf(env, term.scrut, delta, frozen)
        if (
            motive is term.motive
            and scrut is term.scrut
            and all(a is b for a, b in zip(cases, term.cases))
        ):
            return term
        return Elim(term.ind, motive, tuple(cases), scrut)
    raise ReduceError(f"nf: unknown term {term!r}")


def _nf_head(
    env: Environment, head: Term, delta: bool, frozen: FrozenSet[str]
) -> Term:
    """Normalize the head of a stuck application spine."""
    if isinstance(head, (Rel, Sort, Const, Ind, Constr)):
        return head
    if isinstance(head, Elim):
        motive = _nf(env, head.motive, delta, frozen)
        cases = [_nf(env, c, delta, frozen) for c in head.cases]
        scrut = _nf(env, head.scrut, delta, frozen)
        if (
            motive is head.motive
            and scrut is head.scrut
            and all(a is b for a, b in zip(cases, head.cases))
        ):
            return head
        return Elim(head.ind, motive, tuple(cases), scrut)
    if isinstance(head, (Lam, Pi)):
        # A whnf application cannot have a Lam head with pending args, but a
        # spine can be empty; normalize structurally.
        return _nf(env, head, delta, frozen)
    raise ReduceError(f"nf: unexpected application head {head!r}")


def beta_reduce(term: Term) -> Term:
    """Pure beta reduction to normal form (no environment needed).

    Used by the transformation to clean up configuration-term
    applications without unfolding any globals.  Returns the input
    unchanged when it is already beta-normal.
    """
    try:
        return _beta_reduce(term)
    except RecursionError:
        raise ReduceError(_TOO_DEEP) from None


_BETA_MEMO: dict = register_term_cache({})
_BETA_MEMO_MAX = 1 << 19
_BETA_COUNTER = KERNEL_STATS.counter("beta")


def _beta_reduce(term: Term) -> Term:
    # Pure function of the term alone, so composite nodes are memoized
    # globally; hash consing makes repeated subtrees hit the table.
    # Identity keys (with the node pinned in the value) keep the memo
    # name-faithful: equality ignores binder display names.
    if isinstance(term, (Rel, Sort, Const, Ind, Constr)):
        return term
    if term_memo_enabled():
        entry = _BETA_MEMO.get(id(term))
        if entry is not None:
            _BETA_COUNTER.hits += 1
            return entry[1]
        _BETA_COUNTER.misses += 1
        result = _beta_reduce_node(term)
        if len(_BETA_MEMO) >= _BETA_MEMO_MAX:
            _BETA_MEMO.clear()
        _BETA_MEMO[id(term)] = (term, result)
        return result
    return _beta_reduce_node(term)


def _beta_reduce_node(term: Term) -> Term:
    if isinstance(term, App):
        fn = _beta_reduce(term.fn)
        arg = _beta_reduce(term.arg)
        if isinstance(fn, Lam):
            return _beta_reduce(subst(fn.body, arg))
        if fn is term.fn and arg is term.arg:
            return term
        return App(fn, arg)
    if isinstance(term, Lam):
        domain = _beta_reduce(term.domain)
        body = _beta_reduce(term.body)
        if domain is term.domain and body is term.body:
            return term
        return Lam(term.name, domain, body)
    if isinstance(term, Pi):
        domain = _beta_reduce(term.domain)
        codomain = _beta_reduce(term.codomain)
        if domain is term.domain and codomain is term.codomain:
            return term
        return Pi(term.name, domain, codomain)
    if isinstance(term, Elim):
        motive = _beta_reduce(term.motive)
        cases = [_beta_reduce(c) for c in term.cases]
        scrut = _beta_reduce(term.scrut)
        if (
            motive is term.motive
            and scrut is term.scrut
            and all(a is b for a, b in zip(cases, term.cases))
        ):
            return term
        return Elim(term.ind, motive, tuple(cases), scrut)
    return term


def beta_iota_reduce(env: Environment, term: Term) -> Term:
    """Beta + iota normalization without delta unfolding.

    This is the reduction the proof term transformation applies to its
    output (step 4 in Figure 11): it simplifies applications of the
    configuration terms without unfolding unrelated constants.
    """
    return nf(env, term, delta=False)


def unfold_constant(env: Environment, term: Term, name: str) -> Term:
    """Delta-unfold exactly the constant ``name`` everywhere in ``term``."""
    decl = env.constant(name)
    if decl.body is None:
        raise ReduceError(f"constant {name!r} has no body to unfold")

    def go(t: Term) -> Term:
        if isinstance(t, Const) and t.name == name:
            return decl.body
        if isinstance(t, App):
            return App(go(t.fn), go(t.arg))
        if isinstance(t, Lam):
            return Lam(t.name, go(t.domain), go(t.body))
        if isinstance(t, Pi):
            return Pi(t.name, go(t.domain), go(t.codomain))
        if isinstance(t, Elim):
            return Elim(
                t.ind, go(t.motive), tuple(go(c) for c in t.cases), go(t.scrut)
            )
        return t

    return go(term)
