"""Global environments: constants and inductive declarations.

The environment is mutable (declarations are appended as a development is
processed) but individual declarations are immutable.  Declaring a
constant or inductive type checks it first, so a populated environment
only ever contains well-typed globals — the same invariant Coq's kernel
maintains for plugins like Pumpkin Pi.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .inductive import (
    InductiveDecl,
    InductiveError,
    case_type,
    check_positivity,
)
from .stats import CACHES_DISABLED_BY_ENV, KERNEL_STATS, KernelStats
from .term import (
    Elim,
    Ind,
    Pi,
    Rel,
    Term,
    TermError,
    lift,
    mk_app,
    mk_lams,
    mk_pis,
    type_sort,
)


class EnvError(TermError):
    """Raised for missing or duplicate global declarations."""


#: Sentinel for "no entry" in :class:`ReductionCache` (cached values may
#: legitimately be ``False``, e.g. conversion results).
ABSENT = object()

_REDUCTION_CACHE_MAX = 1 << 20

_reduction_cache_default: bool = not CACHES_DISABLED_BY_ENV


def set_reduction_cache_default(enabled: bool) -> bool:
    """Default ``enabled`` state for new environments' reduction caches."""
    global _reduction_cache_default
    previous = _reduction_cache_default
    _reduction_cache_default = enabled
    return previous


class ReductionCache:
    """Environment-scoped memo for reduction and judgement results.

    One store serves every kernel judgement that depends only on the
    environment and its inputs: ``whnf`` and ``nf`` (keyed by
    ``(tag, term, delta, frozen)``), conversion, and type inference.
    The transformer, the type checker, and the decompiler all reduce
    through the same :class:`Environment`, so they share this cache.

    The NbE machine (:mod:`repro.kernel.machine`) keeps its own entry
    families here too — shared closures (``machine_thunk``), evaluated
    constant bodies (``machine_const``), and value-level conversion
    verdicts (``machine_vconv``) — so flipping ``redefine``/``remove``
    invalidates machine state for free along with everything else.

    Entries stay valid under *additive* environment changes (``define``,
    ``assume``, ``declare_inductive``): a term can only mention globals
    that already existed when its entry was stored, because reducing a
    term with an unknown constant raises instead of caching.  Mutating
    changes (``redefine``, ``remove``) clear the store.
    """

    __slots__ = ("enabled", "_store")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._store: Dict[tuple, object] = {}

    def get(self, key: tuple, counter) -> object:
        """The cached value for ``key``, or :data:`ABSENT` (counted)."""
        value = self._store.get(key, ABSENT)
        if value is ABSENT:
            counter.misses += 1
        else:
            counter.hits += 1
        return value

    def put(self, key: tuple, value: object) -> None:
        if len(self._store) >= _REDUCTION_CACHE_MAX:
            self._store.clear()
        self._store[key] = value

    def clear(self) -> None:
        self._store.clear()

    def snapshot_store(self) -> Dict[tuple, object]:
        """A shallow copy of the store (keys/values shared, dict owned).

        Entries are immutable once stored, so a shallow copy is a full
        logical snapshot; :meth:`restore_store` installs one.
        """
        return dict(self._store)

    def restore_store(self, store: Dict[tuple, object]) -> None:
        """Replace the store with a copy of ``store`` (see
        :meth:`snapshot_store`); the argument stays reusable."""
        self._store = dict(store)

    @property
    def size(self) -> int:
        return len(self._store)


@dataclass(frozen=True)
class EnvCheckpoint:
    """An opaque rollback token from :meth:`Environment.checkpoint`.

    Captures how many globals were declared, how many *destructive*
    mutations (``redefine``/``remove``) the environment had seen, and a
    shallow snapshot of the reduction-cache store.  Valid for
    :meth:`Environment.rollback` only while every change since it was
    taken has been additive.
    """

    depth: int
    destructive: int
    cache_store: Dict[tuple, object]


@dataclass(frozen=True)
class ConstantDecl:
    """A global definition: a type and an optional (delta-unfoldable) body."""

    name: str
    type: Term
    body: Optional[Term] = None
    opaque: bool = False

    @property
    def unfoldable(self) -> bool:
        return self.body is not None and not self.opaque


class Environment:
    """A global environment of constants and inductive families."""

    def __init__(self, reduction_cache: Optional[bool] = None) -> None:
        self._constants: Dict[str, ConstantDecl] = {}
        self._inductives: Dict[str, InductiveDecl] = {}
        self._decl_order: List[str] = []
        self._revision: int = 0
        self._destructive: int = 0
        self._refs_memo: Optional[
            Tuple[int, Dict[str, FrozenSet[str]]]
        ] = None
        if reduction_cache is None:
            reduction_cache = _reduction_cache_default
        self.reduction_cache = ReductionCache(enabled=reduction_cache)

    @property
    def revision(self) -> int:
        """Monotone counter bumped by every declaration change.

        Memos keyed on the environment's *shape* (e.g.
        :meth:`declaration_refs`) use this to detect staleness without
        hashing the whole environment.
        """
        return self._revision

    @property
    def kernel_stats(self) -> KernelStats:
        """The process-wide :class:`KernelStats` counters.

        Interning and the de Bruijn memo tables are process-global (the
        term arena is shared by every environment), so the stats object
        is the global singleton; it also carries the hit/miss counters
        for this environment's reduction cache.
        """
        return KERNEL_STATS

    # -- Lookup -------------------------------------------------------------

    def has_constant(self, name: str) -> bool:
        return name in self._constants

    def has_inductive(self, name: str) -> bool:
        return name in self._inductives

    def constant(self, name: str) -> ConstantDecl:
        try:
            return self._constants[name]
        except KeyError:
            raise EnvError(f"unknown constant {name!r}") from None

    def inductive(self, name: str) -> InductiveDecl:
        try:
            return self._inductives[name]
        except KeyError:
            raise EnvError(f"unknown inductive {name!r}") from None

    def constants(self) -> Iterable[ConstantDecl]:
        return list(self._constants.values())

    def inductives(self) -> Iterable[InductiveDecl]:
        return list(self._inductives.values())

    def declaration_order(self) -> Tuple[str, ...]:
        """Names of all globals in declaration order."""
        return tuple(self._decl_order)

    def declaration_refs(self) -> Dict[str, FrozenSet[str]]:
        """Each declared global's directly referenced globals, memoized.

        A constant contributes the references of its type and (if
        present) its body; an inductive family contributes its
        parameter/index telescopes plus every constructor's argument
        types and result indices.  The mapping is recomputed lazily
        whenever :attr:`revision` has moved — a recompute is cheap
        because :func:`~repro.kernel.term.collect_globals` is memoized
        per arena node.  Callers must treat the result as immutable.
        """
        memo = self._refs_memo
        if memo is not None and memo[0] == self._revision:
            return memo[1]
        from .term import collect_globals

        refs: Dict[str, FrozenSet[str]] = {}
        for decl in self._constants.values():
            names = frozenset(collect_globals(decl.type))
            if decl.body is not None:
                names |= collect_globals(decl.body)
            refs[decl.name] = names
        for ind in self._inductives.values():
            acc: set = set()
            for _name, ty in tuple(ind.params) + tuple(ind.indices):
                acc |= collect_globals(ty)
            for ctor in ind.constructors:
                for _name, ty in ctor.args:
                    acc |= collect_globals(ty)
                for idx in ctor.result_indices:
                    acc |= collect_globals(idx)
            refs[ind.name] = frozenset(acc)
        self._refs_memo = (self._revision, refs)
        return refs

    def _mutated(self) -> None:
        """Record a declaration change (invalidates shape-keyed memos)."""
        self._revision += 1
        self._refs_memo = None

    # -- Checkpoint / rollback ----------------------------------------------

    def checkpoint(self) -> EnvCheckpoint:
        """A rollback token for the environment's current state.

        Cheap to take: declarations are counted (not copied) and the
        reduction-cache snapshot shares its keys and values.  Warm
        workers (:mod:`repro.service.worker`) take one per job so a
        long-lived environment can serve many hermetic repairs.
        """
        return EnvCheckpoint(
            depth=len(self._decl_order),
            destructive=self._destructive,
            cache_store=self.reduction_cache.snapshot_store(),
        )

    def rollback(self, mark: EnvCheckpoint) -> Tuple[str, ...]:
        """Undo every declaration made since ``mark``; return their names.

        Sound only for *additive* history: ``define``, ``assume``, and
        ``declare_inductive`` append, so dropping the tail of the
        declaration order restores the exact prior environment, and the
        reduction cache is reset to its snapshot (entries cached since
        the mark may mention the dropped globals).  ``redefine`` or
        ``remove`` since the mark would make the tail-drop unsound, so
        rollback refuses with :class:`EnvError` — callers should discard
        the environment and rebuild instead.
        """
        if mark.destructive != self._destructive:
            raise EnvError(
                "cannot roll back: the environment saw redefine/remove "
                "after the checkpoint"
            )
        if len(self._decl_order) < mark.depth:
            raise EnvError(
                "cannot roll back: the checkpoint is ahead of this "
                "environment"
            )
        added = tuple(self._decl_order[mark.depth:])
        for name in added:
            self._constants.pop(name, None)
            self._inductives.pop(name, None)
        del self._decl_order[mark.depth:]
        self.reduction_cache.restore_store(mark.cache_store)
        self._mutated()
        return added

    # -- Restore ------------------------------------------------------------

    @staticmethod
    def from_parts(
        decls: Iterable[object],
        reduction_cache: Optional[bool] = None,
    ) -> "Environment":
        """Rebuild an environment from already-checked declarations.

        ``decls`` is a sequence of :class:`ConstantDecl` and
        :class:`~repro.kernel.inductive.InductiveDecl` in declaration
        order.  Nothing is re-elaborated: constants are inserted without
        ``infer``/``check`` and inductives without positivity checks or
        recursor derivation (the ``<name>_rect`` constant a
        ``declare_inductive`` would synthesize must appear in ``decls``
        itself, which is how :mod:`repro.kernel.snapshot` serializes
        it).  Callers own the well-typedness invariant — the only
        intended producer is snapshot restore, whose inputs were checked
        when the snapshot was built.
        """
        env = Environment(reduction_cache=reduction_cache)
        for decl in decls:
            if isinstance(decl, ConstantDecl):
                name = decl.name
                if name in env._constants or name in env._inductives:
                    raise EnvError(f"duplicate global {name!r}")
                env._constants[name] = decl
            elif isinstance(decl, InductiveDecl):
                name = decl.name
                if name in env._constants or name in env._inductives:
                    raise EnvError(f"duplicate global {name!r}")
                env._inductives[name] = decl
            else:
                raise EnvError(
                    f"from_parts: expected ConstantDecl or InductiveDecl, "
                    f"got {type(decl).__name__}"
                )
            env._decl_order.append(name)
            env._mutated()
        return env

    # -- Declaration --------------------------------------------------------

    def declare_inductive(
        self, decl: InductiveDecl, check: bool = True
    ) -> InductiveDecl:
        """Declare an inductive family, checking well-formedness.

        Also defines the standard recursor constant ``<name>_rect`` whose
        body delta-unfolds to the primitive eliminator.
        """
        if decl.name in self._inductives or decl.name in self._constants:
            raise EnvError(f"duplicate global {decl.name!r}")
        if check:
            self._check_inductive(decl)
        self._inductives[decl.name] = decl
        self._decl_order.append(decl.name)
        self._mutated()
        self._define_recursor(decl)
        return decl

    def define(
        self,
        name: str,
        body: Term,
        type: Optional[Term] = None,
        opaque: bool = False,
        check: bool = True,
    ) -> ConstantDecl:
        """Define a constant; its type is inferred when not given."""
        from .typecheck import check as check_type
        from .typecheck import infer

        if name in self._constants or name in self._inductives:
            raise EnvError(f"duplicate global {name!r}")
        from .context import Context

        if check:
            inferred = infer(self, Context.empty(), body)
            if type is not None:
                check_type(self, Context.empty(), body, type)
            else:
                type = inferred
        elif type is None:
            raise EnvError(f"define({name!r}): need a type when check=False")
        decl = ConstantDecl(name=name, type=type, body=body, opaque=opaque)
        self._constants[name] = decl
        self._decl_order.append(name)
        self._mutated()
        return decl

    def assume(self, name: str, type: Term, check: bool = True) -> ConstantDecl:
        """Declare an axiom-like constant with no body.

        The library's own developments never use this (the paper's tool is
        axiom free); it exists for tests and for user experimentation.
        """
        from .context import Context
        from .typecheck import infer_sort

        if name in self._constants or name in self._inductives:
            raise EnvError(f"duplicate global {name!r}")
        if check:
            infer_sort(self, Context.empty(), type)
        decl = ConstantDecl(name=name, type=type, body=None)
        self._constants[name] = decl
        self._decl_order.append(name)
        self._mutated()
        return decl

    def redefine(self, name: str, body: Term, type: Term) -> ConstantDecl:
        """Replace an existing constant (used by whole-module repair)."""
        if name not in self._constants:
            raise EnvError(f"cannot redefine unknown constant {name!r}")
        decl = ConstantDecl(name=name, type=type, body=body)
        self._constants[name] = decl
        # The old body may be baked into cached reductions; drop them.
        self.reduction_cache.clear()
        self._destructive += 1
        self._mutated()
        return decl

    def remove(self, name: str) -> None:
        """Remove a global (e.g. the old type after a successful repair)."""
        self._constants.pop(name, None)
        self._inductives.pop(name, None)
        if name in self._decl_order:
            self._decl_order.remove(name)
        self.reduction_cache.clear()
        self._destructive += 1
        self._mutated()

    # -- Internal helpers ---------------------------------------------------

    def _check_inductive(self, decl: InductiveDecl) -> None:
        from .context import Context
        from .typecheck import infer_sort

        check_positivity(decl)
        # Parameters and indices must be well-sorted telescopes.
        ctx = Context.empty()
        for name, ty in list(decl.params) + list(decl.indices):
            infer_sort(self, ctx, ty)
            ctx = ctx.push(name, ty)
        # Constructor argument types are checked in a context where the
        # inductive itself is visible; we add it to the environment
        # temporarily (without recursors) for that purpose.
        self._inductives[decl.name] = decl
        try:
            for j, ctor in enumerate(decl.constructors):
                ctx = Context.empty()
                for name, ty in decl.params:
                    ctx = ctx.push(name, ty)
                for name, ty in ctor.args:
                    infer_sort(self, ctx, ty)
                    ctx = ctx.push(name, ty)
                if len(ctor.result_indices) != decl.n_indices:
                    raise InductiveError(
                        f"{decl.name}.{ctor.name}: expected "
                        f"{decl.n_indices} result indices"
                    )
        except BaseException:
            # Results cached while the inductive was provisionally
            # visible must not outlive a failed check.
            self.reduction_cache.clear()
            raise
        finally:
            del self._inductives[decl.name]

    def _define_recursor(self, decl: InductiveDecl) -> None:
        """Define ``<name>_rect``: the Curry-style recursor constant.

        Its type is::

            Pi params (P : Pi indices, I params indices -> Type2)
               cases... indices... (x : I params indices), P indices x

        and its body wraps the primitive ``Elim``.  The motive sort is a
        fixed large ``Type`` level; cumulativity lets callers use motives
        landing in ``Prop``/``Set``/``Type1`` as well.
        """
        np = decl.n_params
        ni = decl.n_indices
        nc = decl.n_constructors

        # Build everything inside the binder stack:
        #   params (np) , P (1) , cases (nc) , indices (ni) , x (1)
        def param_vars(depth: int) -> Tuple[Term, ...]:
            return tuple(Rel(depth + np - 1 - m) for m in range(np))

        # Motive type, under params:
        #   Pi indices, (I params indices) -> Type2
        index_tele = list(decl.indices)
        ind_applied = mk_app(
            Ind(decl.name),
            param_vars(ni) + tuple(Rel(ni - 1 - k) for k in range(ni)),
        )
        motive_ty = mk_pis(
            index_tele, Pi("_x", ind_applied, type_sort(2))
        )

        binders: List[Tuple[str, Term]] = list(decl.params)
        binders.append(("P", motive_ty))
        # Case types, under params + P.
        params_here = param_vars(1)
        motive_var: Term = Rel(0)
        for j in range(nc):
            ct = case_type(decl, j, params_here, motive_var)
            # Each case binder sits under the previous case binders; the
            # case types only mention params and P, so lift by j.
            binders.append((f"f{j}", lift(ct, j)))
        # Index binders, under params + P + cases: lift index types by 1+nc.
        for k, (name, ty) in enumerate(decl.indices):
            binders.append((name, lift(ty, 1 + nc, k)))
        # Scrutinee binder.
        depth_x = 1 + nc + ni
        scrut_ty = mk_app(
            Ind(decl.name),
            tuple(Rel(depth_x + np - 1 - m) for m in range(np))
            + tuple(Rel(ni - 1 - k) for k in range(ni)),
        )
        binders.append(("x", scrut_ty))

        total = np + 1 + nc + ni + 1
        motive_here = Rel(total - np - 1)
        cases_here = tuple(
            Rel(total - np - 1 - 1 - j) for j in range(nc)
        )
        result_ty = mk_app(
            motive_here,
            tuple(Rel(1 + ni - 1 - k) for k in range(ni)) + (Rel(0),),
        )
        rect_type = mk_pis(binders, result_ty)
        rect_body = mk_lams(
            binders,
            Elim(decl.name, motive_here, cases_here, Rel(0)),
        )
        name = f"{decl.name}_rect"
        if name in self._constants:
            return
        decl_const = ConstantDecl(name=name, type=rect_type, body=rect_body)
        self._constants[name] = decl_const
        self._decl_order.append(name)
        self._mutated()
